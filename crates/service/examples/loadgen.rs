//! Loopback load generator for the placement service, in three modes:
//!
//! ```text
//! cargo run --release -p qplacer-service --example loadgen [threads] [requests]
//! cargo run --release -p qplacer-service --example loadgen -- --connections 10000
//! cargo run --release -p qplacer-service --example loadgen -- --shards 4 [--chaos]
//! ```
//!
//! - **Default**: `threads` blocking clients × `requests` identical
//!   falcon fast-profile jobs (4 × 32 unless overridden) — after the
//!   first completion the cache serves everything, the steady-state
//!   regime the service optimizes.
//! - **`--connections N`**: opens N *simultaneous* nonblocking
//!   connections (client-side mio event loop mirroring the server's
//!   reactor), pipelines `hello` + one cached `place` on each, and
//!   holds every socket open until all N replied — the C10K smoke for
//!   the event-driven wire loop. Prints a greppable
//!   `connections verdict: …` line.
//! - **`--shards K`**: starts K in-process daemons behind a
//!   consistent-hash [`ShardedClient`] and hammers them from 4 client
//!   threads. With `--chaos`, shard 0 is killed mid-run; every
//!   placement must still be acked (retried onto survivors) and the
//!   survivors must serve every key afterwards. Prints a greppable
//!   `chaos verdict: …` line.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mio::{Events, Interest, Poll, Token};
use qplacer_service::{
    ClientBuilder, DeviceSpec, PlaceJob, Request, Server, ServiceConfig, ServiceError,
    ShardedClient, Strategy, PROTOCOL_MINOR_VERSION, PROTOCOL_VERSION,
};

fn falcon_job() -> PlaceJob {
    PlaceJob::fast(DeviceSpec::Falcon27, Strategy::FrequencyAware)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    if args.iter().any(|a| a == "--serve-internal") {
        run_serve_internal();
    } else if let Some(connections) = flag("--connections") {
        run_connections(connections);
    } else if let Some(shards) = flag("--shards") {
        run_sharded(shards, args.iter().any(|a| a == "--chaos"));
    } else {
        let positional: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
        let threads = positional.first().copied().unwrap_or(4);
        let requests = positional.get(1).copied().unwrap_or(32);
        run_threads(threads, requests);
    }
}

/// Default mode: blocking clients, cached steady state.
fn run_threads(threads: usize, requests: usize) {
    let server = Server::start(ServiceConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("server on {addr}; {threads} clients x {requests} requests");

    let job = falcon_job();
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let job = job.clone();
            std::thread::spawn(move || {
                let mut client = ClientBuilder::new(addr).connect().expect("connect");
                let mut cached = 0usize;
                let mut worst_ms = 0.0f64;
                for _ in 0..requests {
                    let reply = client.place(&job).expect("place");
                    cached += usize::from(reply.cached);
                    worst_ms = worst_ms.max(reply.wall_ms);
                }
                (t, cached, worst_ms)
            })
        })
        .collect();
    for handle in handles {
        let (t, cached, worst_ms) = handle.join().expect("client thread");
        println!("client {t}: {cached}/{requests} cached, worst {worst_ms:.2} ms");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = threads * requests;
    println!(
        "{total} requests in {elapsed:.2} s  ->  {:.0} req/s",
        total as f64 / elapsed
    );

    let mut client = ClientBuilder::new(addr)
        .connect()
        .expect("connect for stats");
    let stats = client.stats().expect("stats");
    println!(
        "server: placed {} ({} fresh batches, {} batched jobs), cache {:.0}% hit ({} entries), \
         mean place {:.2} ms",
        stats.placed,
        stats.batches,
        stats.batched_jobs,
        stats.cache_hit_rate * 100.0,
        stats.cache_entries,
        stats.place.mean_ms,
    );
    client.shutdown().expect("shutdown");
    server.join();
    println!("server drained and exited");
}

/// One nonblocking connection's client-side state.
struct LoadConn {
    stream: std::net::TcpStream,
    sent: usize,
    replies: usize,
    draining_writes: bool,
    done: bool,
}

/// Child-process half of `--connections`: one daemon on an ephemeral
/// port, address announced on stdout, alive until a client sends
/// `shutdown`. A separate process because N loopback connections cost
/// 2×N descriptors when client and server share one fd table.
fn run_serve_internal() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("bind loopback");
    println!("ADDR {}", server.local_addr());
    server.join();
}

/// C10K smoke: N simultaneous connections, each pipelining
/// `hello` + one cached `place`, all sockets held open until every
/// reply arrived.
fn run_connections(total: usize) {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(exe)
        .arg("--serve-internal")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn server process");
    let mut child_out = std::io::BufReader::new(child.stdout.take().expect("child stdout"));
    let addr: std::net::SocketAddr = {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut child_out, &mut line).expect("read child addr");
        line.trim()
            .strip_prefix("ADDR ")
            .and_then(|a| a.parse().ok())
            .expect("child announced no address")
    };

    // Prime the cache: every loadgen place below is then a hit the
    // reactor answers inline — no worker, no queue, pure wire loop.
    let job = falcon_job();
    let mut primer = ClientBuilder::new(addr).connect().expect("connect primer");
    primer.place(&job).expect("prime cache");

    let request_bytes: Vec<u8> = {
        let hello = Request::Hello {
            id: 1,
            version: PROTOCOL_VERSION,
            minor: PROTOCOL_MINOR_VERSION,
        };
        let place = Request::Place {
            id: 2,
            job: job.clone(),
            trace_id: None,
        };
        format!("{}\n{}\n", hello.to_line(), place.to_line()).into_bytes()
    };
    const EXPECTED_REPLIES: usize = 2;

    println!("server on {addr}; opening {total} concurrent connections");
    let start = Instant::now();
    let mut poll = Poll::new().expect("client poll");
    let mut conns: Vec<LoadConn> = Vec::with_capacity(total);
    for i in 0..total {
        // Loopback connects succeed as fast as the reactor drains its
        // accept backlog; back off briefly when a burst outruns it.
        let stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        };
        stream.set_nonblocking(true).expect("nonblocking");
        poll.register(&stream, Token(i), Interest::READABLE | Interest::WRITABLE)
            .expect("register");
        conns.push(LoadConn {
            stream,
            sent: 0,
            replies: 0,
            draining_writes: true,
            done: false,
        });
        if (i + 1) % 2500 == 0 {
            println!(
                "  opened {} in {:.2}s",
                i + 1,
                start.elapsed().as_secs_f64()
            );
        }
    }
    let opened = start.elapsed().as_secs_f64();

    let mut events = Events::with_capacity(4096);
    let mut scratch = vec![0u8; 16 * 1024];
    let mut completed = 0usize;
    let mut last_report = Instant::now();
    while completed < total {
        poll.poll(&mut events, Some(Duration::from_millis(200)))
            .expect("client poll");
        if last_report.elapsed() > Duration::from_secs(2) {
            println!(
                "  {completed}/{total} replied after {:.2}s",
                start.elapsed().as_secs_f64()
            );
            last_report = Instant::now();
        }
        for event in &events {
            let Token(i) = event.token();
            let conn = &mut conns[i];
            if conn.done {
                continue;
            }
            if event.is_writable() && conn.draining_writes {
                while conn.sent < request_bytes.len() {
                    match conn.stream.write(&request_bytes[conn.sent..]) {
                        Ok(n) => conn.sent += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => panic!("connection {i} write failed: {e}"),
                    }
                }
                if conn.sent == request_bytes.len() {
                    // Stop asking for WRITABLE or level-triggered
                    // readiness would spin this loop forever.
                    conn.draining_writes = false;
                    poll.reregister(Token(i), Interest::READABLE)
                        .expect("reregister");
                }
            }
            if event.is_readable() {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => panic!("connection {i} closed by server"),
                        Ok(n) => {
                            conn.replies += scratch[..n].iter().filter(|&&b| b == b'\n').count();
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => panic!("connection {i} read failed: {e}"),
                    }
                }
                if conn.replies >= EXPECTED_REPLIES {
                    conn.done = true;
                    completed += 1;
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Every socket is still open: the server must be holding all of
    // them (plus the primer) right now.
    let open_now = primer.stats().expect("stats").open_connections;
    let verdict = if open_now >= total { "PASS" } else { "FAIL" };
    println!(
        "connections verdict: {verdict} (opened={total}, replied={completed}, \
         server_open={open_now}, open_in={opened:.2}s, total={elapsed:.2}s)"
    );
    drop(conns);
    primer.shutdown().expect("shutdown");
    let status = child.wait().expect("server process exit");
    assert!(status.success(), "server process failed: {status}");
    println!("server drained and exited");
    assert_eq!(verdict, "PASS");
}

/// Sharded mode: K daemons behind consistent hashing; with `chaos`,
/// shard 0 dies mid-run and no acked placement may be lost.
fn run_sharded(shards: usize, chaos: bool) {
    const CLIENT_THREADS: usize = 4;
    const ROUNDS: usize = 24;

    let servers: Vec<Server> = (0..shards)
        .map(|shard_id| {
            Server::start(ServiceConfig {
                workers: 1,
                shard_id,
                shards,
                ..ServiceConfig::default()
            })
            .expect("bind shard")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    println!(
        "{shards} shards on {addrs:?}; {CLIENT_THREADS} clients x {ROUNDS} rounds{}",
        if chaos { " with chaos" } else { "" }
    );

    let jobs: Vec<PlaceJob> = (2..10)
        .map(|width| {
            PlaceJob::fast(
                DeviceSpec::Grid { width, height: 2 },
                Strategy::FrequencyAware,
            )
        })
        .collect();
    let submitted = Arc::new(AtomicUsize::new(0));
    let acked = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(CLIENT_THREADS + 1));

    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let addrs = addrs.clone();
            let jobs = jobs.clone();
            let submitted = Arc::clone(&submitted);
            let acked = Arc::clone(&acked);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut fleet = ShardedClient::connect(&addrs);
                // Warm pass: every key placed (and cached) somewhere.
                for job in &jobs {
                    submitted.fetch_add(1, Ordering::Relaxed);
                    place_until_acked(&mut fleet, job);
                    acked.fetch_add(1, Ordering::Relaxed);
                }
                barrier.wait();
                for _ in 0..ROUNDS {
                    for job in &jobs {
                        submitted.fetch_add(1, Ordering::Relaxed);
                        place_until_acked(&mut fleet, job);
                        acked.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    barrier.wait();
    let mut servers = servers;
    if chaos {
        // Kill shard 0 while the hammer threads are mid-flight: its
        // connections drain, then close; clients fail over.
        let victim = servers.remove(0);
        victim.shutdown();
        victim.join();
        println!(
            "chaos: shard 0 killed after {:.2}s",
            start.elapsed().as_secs_f64()
        );
    }
    for handle in handles {
        handle.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Post-run probe: the surviving fleet must still serve every key.
    let mut probe = ShardedClient::connect(&addrs);
    for job in &jobs {
        probe.place(job).expect("survivors must serve every key");
    }
    let survivors = probe.live_shards();

    let submitted = submitted.load(Ordering::Relaxed);
    let acked = acked.load(Ordering::Relaxed);
    let lost = submitted - acked;
    let expected_survivors = if chaos { shards - 1 } else { shards };
    let verdict = if lost == 0 && survivors == expected_survivors {
        "PASS"
    } else {
        "FAIL"
    };
    println!(
        "{} verdict: {verdict} (submitted={submitted}, acked={acked}, lost={lost}, \
         survivors={survivors}/{shards}, {:.0} req/s)",
        if chaos { "chaos" } else { "sharded" },
        acked as f64 / elapsed
    );

    probe.shutdown_all();
    for server in servers {
        server.join();
    }
    println!("fleet drained and exited");
    assert_eq!(verdict, "PASS");
}

/// Places `job`, retrying through shutdown rejections (a draining
/// victim) and transport failover until some shard acks it.
fn place_until_acked(fleet: &mut ShardedClient, job: &PlaceJob) {
    loop {
        match fleet.place(job) {
            Ok(_) => return,
            // The victim acks the shutdown of its queue before its
            // sockets close; retry until failover takes over.
            Err(ServiceError::Remote { .. }) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("unrecoverable placement failure: {e}"),
        }
    }
}
