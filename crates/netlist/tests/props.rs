//! Property-based tests for netlist construction.

use proptest::prelude::*;
use qplacer_freq::FrequencyAssigner;
use qplacer_netlist::{InstanceKind, NetlistConfig, QuantumNetlist};
use qplacer_physics::Resonator;
use qplacer_topology::Topology;

fn arb_device() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..5, 2usize..5).prop_map(|(w, h)| Topology::grid(w, h)),
        (1usize..3, 1usize..4).prop_map(|(r, c)| Topology::aspen(r, c)),
        (2usize..4, 1usize..3, 1usize..3).prop_map(|(r, b, l)| Topology::xtree(r, b, l)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn construction_invariants(device in arb_device(), lb in 0.2f64..0.45) {
        let freqs = FrequencyAssigner::paper_defaults().assign(&device);
        let config = NetlistConfig::with_segment_size(lb);
        let nl = QuantumNetlist::build(&device, &freqs, &config);

        // One instance per qubit plus the partitioned segments.
        prop_assert_eq!(nl.num_qubits(), device.num_qubits());
        prop_assert_eq!(nl.num_resonators(), device.num_edges());
        let seg_total: usize = (0..nl.num_resonators())
            .map(|r| nl.resonator_segments(r).len())
            .sum();
        prop_assert_eq!(nl.num_instances(), device.num_qubits() + seg_total);

        // Segment counts conserve the strip area: n = ceil(L·d_r / l_b²).
        for r in 0..nl.num_resonators() {
            let res = Resonator::new(freqs.resonator(r));
            prop_assert_eq!(nl.resonator_segments(r).len(), res.segment_count(lb));
            let reserved = nl.resonator_segments(r).len() as f64 * lb * lb;
            prop_assert!(reserved + 1e-9 >= res.strip_area_mm2());
            prop_assert!(reserved < res.strip_area_mm2() + lb * lb + 1e-9);
        }

        // Nets form chains: per resonator, segments+1 nets; endpoints match.
        let expected_nets: usize = (0..nl.num_resonators())
            .map(|r| nl.resonator_segments(r).len() + 1)
            .sum();
        prop_assert_eq!(nl.nets().len(), expected_nets);

        // Frequencies: qubit instances carry qubit-band values, segments
        // their resonator's value.
        for inst in nl.instances() {
            match inst.kind() {
                InstanceKind::Qubit(q) => {
                    prop_assert_eq!(inst.frequency(), freqs.qubit(q));
                }
                InstanceKind::ResonatorSegment { resonator, .. } => {
                    prop_assert_eq!(inst.frequency(), freqs.resonator(resonator));
                }
            }
        }

        // Region sized to the target utilization.
        let util = nl.total_padded_area() / nl.region().area();
        prop_assert!((util - config.target_utilization).abs() < 0.02);

        // Initial positions inside the region.
        for inst in nl.instances() {
            prop_assert!(nl.region().contains(nl.position(inst.id())));
        }
    }

    #[test]
    fn collision_map_is_symmetric_and_exclusive(device in arb_device()) {
        let freqs = FrequencyAssigner::paper_defaults().assign(&device);
        let nl = QuantumNetlist::build(&device, &freqs, &NetlistConfig::default());
        let map = nl.collision_map();
        for (i, partners) in map.iter().enumerate() {
            for &j in partners {
                prop_assert!(map[j].contains(&i), "asymmetric ({i},{j})");
                prop_assert!(!nl.instance(i).same_resonator(nl.instance(j)));
                prop_assert!(nl
                    .instance(i)
                    .frequency()
                    .is_resonant_with(nl.instance(j).frequency(), nl.detuning_threshold()));
            }
        }
    }

    #[test]
    fn serde_roundtrip(device in arb_device()) {
        let freqs = FrequencyAssigner::paper_defaults().assign(&device);
        let nl = QuantumNetlist::build(&device, &freqs, &NetlistConfig::default());
        let json = serde_json::to_string(&nl).expect("serialize");
        let back: QuantumNetlist = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(nl, back);
    }
}
