//! The placement netlist: padded instances, nets, and resonator
//! partitioning (paper §IV-B).
//!
//! The netlist is the bridge between the abstract device (a
//! [`qplacer_topology::Topology`] plus a
//! [`qplacer_freq::FrequencyAssignment`]) and the geometric placement
//! problem. Building it applies the paper's two quantum-specific
//! preprocessing steps:
//!
//! 1. **Padding** (§IV-B1): every movable instance is inflated by its
//!    padding distance (`d_q` = 400 µm for qubits, `d_r` = 100 µm for
//!    resonator segments), so that non-overlapping padded footprints imply
//!    the required minimum clearances.
//! 2. **Resonator partitioning** (§IV-B2): each resonator's strip area
//!    `L·d_r` is reshaped and cut into square segments of side `l_b`; the
//!    segments are independent movable instances chained by 2-pin nets so
//!    wirelength keeps them contiguous.
//!
//! For multilevel placement, [`QuantumNetlist::coarsen`] contracts a
//! clustering of the instances into a smaller, area-conserving netlist
//! that the same placement engine can solve directly.
//!
//! # Examples
//!
//! ```
//! use qplacer_freq::FrequencyAssigner;
//! use qplacer_netlist::{NetlistConfig, QuantumNetlist};
//! use qplacer_topology::Topology;
//!
//! let device = Topology::falcon27();
//! let freqs = FrequencyAssigner::paper_defaults().assign(&device);
//! let netlist = QuantumNetlist::build(&device, &freqs, &NetlistConfig::default());
//! // Table II reports 354 cells for Falcon at l_b = 0.3 mm.
//! assert!((340..=370).contains(&netlist.num_instances()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod coarsen;
mod config;
mod instance;
mod net;
mod netlist;

pub use config::{CouplingKind, NetlistConfig};
pub use instance::{Instance, InstanceKind};
pub use net::Net;
pub use netlist::QuantumNetlist;
