//! Movable placement instances.

use serde::{Deserialize, Serialize};

use qplacer_geometry::{Point, Rect};
use qplacer_physics::Frequency;

/// What a placement instance represents on the quantum chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceKind {
    /// The transmon qubit with this device index.
    Qubit(usize),
    /// One square block of a partitioned resonator.
    ResonatorSegment {
        /// Resonator (= device edge) index.
        resonator: usize,
        /// Segment ordinal within the resonator chain, from the endpoint
        /// attached to the edge's lower-indexed qubit.
        segment: usize,
    },
}

impl InstanceKind {
    /// The resonator index if this is a segment.
    #[must_use]
    pub fn resonator(&self) -> Option<usize> {
        match self {
            InstanceKind::ResonatorSegment { resonator, .. } => Some(*resonator),
            InstanceKind::Qubit(_) => None,
        }
    }

    /// `true` for qubit instances.
    #[must_use]
    pub fn is_qubit(&self) -> bool {
        matches!(self, InstanceKind::Qubit(_))
    }
}

/// A movable instance: a padded footprint with a frequency, centered at a
/// position that the placement engine optimizes.
///
/// The **padded** footprint (`width × height`) is what the density and
/// overlap machinery sees; the **core** footprint (`core_mm` square) is the
/// physical metal. Padding halos may legally overlap core-to-halo — only
/// core-vs-core plus the mutual padding requirement defines violations,
/// which is exactly what non-overlapping padded footprints guarantee.
///
/// # Examples
///
/// ```
/// use qplacer_geometry::Point;
/// use qplacer_netlist::{Instance, InstanceKind};
/// use qplacer_physics::Frequency;
///
/// let q = Instance::new(
///     0,
///     InstanceKind::Qubit(3),
///     Frequency::from_ghz(5.0),
///     1.2,
///     0.4,
/// );
/// assert_eq!(q.padded_rect(Point::ORIGIN).width(), 1.2);
/// assert_eq!(q.core_rect(Point::ORIGIN).width(), 0.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    id: usize,
    kind: InstanceKind,
    frequency: Frequency,
    padded_mm: f64,
    core_mm: f64,
}

impl Instance {
    /// Creates an instance with a square padded footprint of side
    /// `padded_mm` and a square core of side `core_mm`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < core_mm ≤ padded_mm`.
    #[must_use]
    pub fn new(
        id: usize,
        kind: InstanceKind,
        frequency: Frequency,
        padded_mm: f64,
        core_mm: f64,
    ) -> Self {
        assert!(
            core_mm > 0.0 && core_mm <= padded_mm,
            "need 0 < core ({core_mm}) <= padded ({padded_mm})"
        );
        Self {
            id,
            kind,
            frequency,
            padded_mm,
            core_mm,
        }
    }

    /// Instance id (index into the netlist).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// What this instance is.
    #[must_use]
    pub fn kind(&self) -> InstanceKind {
        self.kind
    }

    /// Operating frequency (qubit ω₀₁ or resonator fundamental).
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Padded footprint side length (mm).
    #[must_use]
    pub fn padded_mm(&self) -> f64 {
        self.padded_mm
    }

    /// Core (physical metal) side length (mm).
    #[must_use]
    pub fn core_mm(&self) -> f64 {
        self.core_mm
    }

    /// Padded footprint area (mm²).
    #[must_use]
    pub fn padded_area(&self) -> f64 {
        self.padded_mm * self.padded_mm
    }

    /// Core footprint area (mm²).
    #[must_use]
    pub fn core_area(&self) -> f64 {
        self.core_mm * self.core_mm
    }

    /// Padded footprint rectangle when centered at `c`.
    #[must_use]
    pub fn padded_rect(&self, c: Point) -> Rect {
        Rect::from_center(c, self.padded_mm, self.padded_mm)
    }

    /// Core footprint rectangle when centered at `c`.
    #[must_use]
    pub fn core_rect(&self, c: Point) -> Rect {
        Rect::from_center(c, self.core_mm, self.core_mm)
    }

    /// Whether `self` and `other` belong to the same resonator (the
    /// Kronecker-delta exclusion of Eq. 10).
    #[must_use]
    pub fn same_resonator(&self, other: &Instance) -> bool {
        match (self.kind.resonator(), other.kind.resonator()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: usize, r: usize, s: usize) -> Instance {
        Instance::new(
            id,
            InstanceKind::ResonatorSegment {
                resonator: r,
                segment: s,
            },
            Frequency::from_ghz(6.5),
            0.5,
            0.3,
        )
    }

    #[test]
    fn kind_queries() {
        let q = Instance::new(
            0,
            InstanceKind::Qubit(7),
            Frequency::from_ghz(5.0),
            1.2,
            0.4,
        );
        assert!(q.kind().is_qubit());
        assert_eq!(q.kind().resonator(), None);
        let s = seg(1, 3, 0);
        assert!(!s.kind().is_qubit());
        assert_eq!(s.kind().resonator(), Some(3));
    }

    #[test]
    fn same_resonator_rules() {
        let a = seg(0, 2, 0);
        let b = seg(1, 2, 1);
        let c = seg(2, 5, 0);
        let q = Instance::new(
            3,
            InstanceKind::Qubit(0),
            Frequency::from_ghz(5.0),
            1.2,
            0.4,
        );
        assert!(a.same_resonator(&b));
        assert!(!a.same_resonator(&c));
        assert!(!a.same_resonator(&q));
        assert!(!q.same_resonator(&q));
    }

    #[test]
    fn footprints() {
        let s = seg(0, 0, 0);
        assert!((s.padded_area() - 0.25).abs() < 1e-12);
        assert!((s.core_area() - 0.09).abs() < 1e-12);
        let r = s.padded_rect(Point::new(1.0, 1.0));
        assert_eq!(r.center(), Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "core")]
    fn core_larger_than_padded_panics() {
        let _ = Instance::new(
            0,
            InstanceKind::Qubit(0),
            Frequency::from_ghz(5.0),
            0.4,
            1.2,
        );
    }
}
