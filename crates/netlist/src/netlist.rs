//! The assembled placement netlist.

use serde::{Deserialize, Serialize};

use qplacer_geometry::{Point, Rect};
use qplacer_physics::Frequency;

use crate::{Instance, Net};

/// A complete placement problem: instances with positions, nets, the
/// placement region, and the device bookkeeping (which instances belong
/// to which qubit/resonator).
///
/// Positions always refer to instance *centers*. The netlist is built by
/// [`QuantumNetlist::build`](crate::QuantumNetlist::build); the placement
/// engine and legalizers then mutate positions through
/// [`set_position`](QuantumNetlist::set_position) /
/// [`set_positions`](QuantumNetlist::set_positions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumNetlist {
    pub(crate) instances: Vec<Instance>,
    pub(crate) nets: Vec<Net>,
    pub(crate) positions: Vec<Point>,
    pub(crate) region: Rect,
    /// Instance id of each qubit, indexed by device qubit index.
    pub(crate) qubit_instances: Vec<usize>,
    /// Instance ids of each resonator's segments, in chain order.
    pub(crate) resonator_segments: Vec<Vec<usize>>,
    /// Device edge endpoints per resonator.
    pub(crate) resonator_endpoints: Vec<(usize, usize)>,
    pub(crate) detuning_threshold: Frequency,
}

impl QuantumNetlist {
    /// All instances.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Instance by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn instance(&self, id: usize) -> &Instance {
        &self.instances[id]
    }

    /// Number of instances (Table II's `#cells`).
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// All nets.
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The placement region.
    #[must_use]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Overrides the placement region. The incremental (ECO) path uses
    /// this to keep a shrunken device on its previous, larger region so
    /// pinned instances stay in bounds; `region` must contain the
    /// computed one (growing the region only relaxes the density and
    /// clamp constraints).
    pub fn set_region(&mut self, region: Rect) {
        self.region = region;
    }

    /// Number of device qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.qubit_instances.len()
    }

    /// Number of resonators (device edges).
    #[must_use]
    pub fn num_resonators(&self) -> usize {
        self.resonator_segments.len()
    }

    /// Instance id of device qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn qubit_instance(&self, q: usize) -> usize {
        self.qubit_instances[q]
    }

    /// Segment instance ids of resonator `r`, in chain order.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn resonator_segments(&self, r: usize) -> &[usize] {
        &self.resonator_segments[r]
    }

    /// The device qubits resonator `r` couples.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn resonator_endpoints(&self, r: usize) -> (usize, usize) {
        self.resonator_endpoints[r]
    }

    /// The detuning threshold Δc the netlist was built with.
    #[must_use]
    pub fn detuning_threshold(&self) -> Frequency {
        self.detuning_threshold
    }

    /// Current center position of instance `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn position(&self, id: usize) -> Point {
        self.positions[id]
    }

    /// All current positions, indexed by instance id.
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Moves instance `id` to center `p`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_position(&mut self, id: usize, p: Point) {
        self.positions[id] = p;
    }

    /// Replaces all positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len()` differs from the instance count.
    pub fn set_positions(&mut self, positions: &[Point]) {
        assert_eq!(
            positions.len(),
            self.instances.len(),
            "position count mismatch"
        );
        self.positions.copy_from_slice(positions);
    }

    /// Padded footprint of instance `id` at its current position.
    #[must_use]
    pub fn padded_rect(&self, id: usize) -> Rect {
        self.instances[id].padded_rect(self.positions[id])
    }

    /// Core footprint of instance `id` at its current position.
    #[must_use]
    pub fn core_rect(&self, id: usize) -> Rect {
        self.instances[id].core_rect(self.positions[id])
    }

    /// Sum of padded instance areas (the density mass).
    #[must_use]
    pub fn total_padded_area(&self) -> f64 {
        self.instances.iter().map(Instance::padded_area).sum()
    }

    /// Sum of core instance areas (`A_poly` numerator of Eq. 17).
    #[must_use]
    pub fn total_core_area(&self) -> f64 {
        self.instances.iter().map(Instance::core_area).sum()
    }

    /// Builds each instance's *frequency collision map*: the other
    /// instances within Δc of its frequency, excluding members of the same
    /// resonator (Eq. 10's Kronecker-delta exclusion). The placement
    /// engine iterates these lists instead of all pairs (§IV-C1).
    #[must_use]
    pub fn collision_map(&self) -> Vec<Vec<usize>> {
        let n = self.instances.len();
        let dc = self.detuning_threshold * 0.999;
        let mut map = vec![Vec::new(); n];
        // Bucket instances by frequency slot for near-linear construction.
        let mut by_freq: Vec<(f64, usize)> = self
            .instances
            .iter()
            .map(|inst| (inst.frequency().ghz(), inst.id()))
            .collect();
        by_freq.sort_by(|a, b| a.0.total_cmp(&b.0));
        for i in 0..n {
            let (fi, id_i) = by_freq[i];
            for &(fj, id_j) in by_freq[i + 1..].iter() {
                if fj - fi > dc.ghz() {
                    break;
                }
                let a = &self.instances[id_i];
                let b = &self.instances[id_j];
                if a.same_resonator(b) {
                    continue;
                }
                map[id_i].push(id_j);
                map[id_j].push(id_i);
            }
        }
        for lst in &mut map {
            lst.sort_unstable();
        }
        map
    }

    /// Pairs of instances whose padded footprints overlap at the current
    /// positions (spatial violations before/after legalization).
    #[must_use]
    pub fn overlapping_pairs(&self) -> Vec<(usize, usize)> {
        let mut grid = qplacer_geometry::SpatialGrid::new(
            self.region.inflated(self.region.width().max(1.0)),
            self.max_padded_side().max(0.1),
        );
        for inst in &self.instances {
            grid.insert(inst.id(), &self.padded_rect(inst.id()));
        }
        let mut out = Vec::new();
        for inst in &self.instances {
            let id = inst.id();
            let r = self.padded_rect(id);
            for other in grid.query(&r) {
                if other > id && r.overlaps(&self.padded_rect(other)) {
                    out.push((id, other));
                }
            }
        }
        out
    }

    /// Largest padded footprint side among all instances.
    #[must_use]
    pub fn max_padded_side(&self) -> f64 {
        self.instances
            .iter()
            .map(Instance::padded_mm)
            .fold(0.0, f64::max)
    }
}
