//! Two-pin nets chaining qubits through resonator segments.

use serde::{Deserialize, Serialize};

/// A 2-pin net between two instances. Each device coupling
/// `(q_a — resonator — q_b)` becomes the chain
/// `q_a–s₀, s₀–s₁, …, s_{n−1}–q_b`, so wirelength optimization pulls the
/// segments into a contiguous snake between their qubits (which is what
/// the integration legalizer later requires).
///
/// # Examples
///
/// ```
/// use qplacer_netlist::Net;
/// let net = Net::new(3, 7, 0.5);
/// assert_eq!(net.endpoints(), (3, 7));
/// assert_eq!(net.weight(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Net {
    a: usize,
    b: usize,
    weight: f64,
}

impl Net {
    /// Creates a net between instances `a` and `b` with the given
    /// wirelength weight.
    ///
    /// # Panics
    ///
    /// Panics on a self-net or non-positive weight.
    #[must_use]
    pub fn new(a: usize, b: usize, weight: f64) -> Self {
        assert!(a != b, "self-net on instance {a}");
        assert!(weight > 0.0, "net weight must be positive");
        Self { a, b, weight }
    }

    /// The two instance ids.
    #[must_use]
    pub fn endpoints(&self) -> (usize, usize) {
        (self.a, self.b)
    }

    /// Wirelength weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic() {
        let n = Net::new(0, 1, 1.0);
        assert_eq!(n.endpoints(), (0, 1));
    }

    #[test]
    #[should_panic(expected = "self-net")]
    fn self_net_panics() {
        let _ = Net::new(2, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_panics() {
        let _ = Net::new(0, 1, 0.0);
    }
}
