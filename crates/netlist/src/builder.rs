//! Netlist construction from a device topology and frequency assignment.

use qplacer_freq::FrequencyAssignment;
use qplacer_geometry::{Point, Rect};
use qplacer_physics::Resonator;
use qplacer_topology::Topology;

use crate::{CouplingKind, Instance, InstanceKind, Net, NetlistConfig, QuantumNetlist};

impl QuantumNetlist {
    /// Builds the placement netlist for `topology` with the given
    /// frequencies and geometry configuration.
    ///
    /// Construction applies padding and resonator partitioning (§IV-B):
    /// qubits become `(L_q + 2d_q)`-sized movable squares, each resonator
    /// becomes `⌈L·d_r/l_b²⌉` segments of padded side `l_b + 2d_r`, and
    /// every coupling is expanded into a chain of 2-pin nets. The
    /// placement region is a square sized so total padded area hits the
    /// configured target utilization, and all instances start at jittered
    /// positions near the region center (the electrostatic engine spreads
    /// them).
    ///
    /// # Panics
    ///
    /// Panics if the assignment's qubit/resonator counts do not match the
    /// topology.
    #[must_use]
    pub fn build(
        topology: &Topology,
        frequencies: &FrequencyAssignment,
        config: &NetlistConfig,
    ) -> QuantumNetlist {
        assert_eq!(
            frequencies.qubit_frequencies().len(),
            topology.num_qubits(),
            "assignment covers a different qubit count"
        );
        assert_eq!(
            frequencies.resonator_frequencies().len(),
            topology.num_edges(),
            "assignment covers a different resonator count"
        );

        let mut instances = Vec::new();
        let mut nets = Vec::new();

        // Qubit instances.
        let mut qubit_instances = Vec::with_capacity(topology.num_qubits());
        for q in 0..topology.num_qubits() {
            let id = instances.len();
            instances.push(Instance::new(
                id,
                InstanceKind::Qubit(q),
                frequencies.qubit(q),
                config.padded_qubit_mm(),
                config.qubit_size_mm,
            ));
            qubit_instances.push(id);
        }

        // Resonator segments + chain nets.
        let mut resonator_segments = Vec::with_capacity(topology.num_edges());
        let mut resonator_endpoints = Vec::with_capacity(topology.num_edges());
        for (r, &(qa, qb)) in topology.edges().iter().enumerate() {
            let freq = frequencies.resonator(r);
            let (n_seg, core_mm) = match config.coupling {
                CouplingKind::BusResonator => (
                    Resonator::new(freq).segment_count(config.segment_size_mm),
                    config.segment_size_mm,
                ),
                // A tunable coupler is a single compact element.
                CouplingKind::TunableCoupler { size_mm } => (1, size_mm),
            };
            let mut segs = Vec::with_capacity(n_seg);
            for s in 0..n_seg {
                let id = instances.len();
                instances.push(Instance::new(
                    id,
                    InstanceKind::ResonatorSegment {
                        resonator: r,
                        segment: s,
                    },
                    freq,
                    core_mm + config.resonator_padding_mm,
                    core_mm,
                ));
                segs.push(id);
            }
            // Chain: qa – s0 – s1 – … – s(n-1) – qb. Qubit attachments get
            // a slightly higher weight so chains stay anchored at pads.
            let mut prev = qubit_instances[qa];
            for &s in &segs {
                nets.push(Net::new(prev, s, 1.0));
                prev = s;
            }
            nets.push(Net::new(prev, qubit_instances[qb], 1.0));
            resonator_segments.push(segs);
            resonator_endpoints.push((qa, qb));
        }

        // Region: square canvas at the target utilization.
        let total_padded: f64 = instances.iter().map(Instance::padded_area).sum();
        let side = (total_padded / config.target_utilization).sqrt();
        let region = Rect::from_center(Point::ORIGIN, side, side);

        // Initial positions: deterministic jitter around the center.
        // (A splitmix-style hash keeps builds reproducible without an RNG
        // dependency on the hot path.)
        let jitter = 0.05 * side;
        let positions: Vec<Point> = instances
            .iter()
            .map(|inst| {
                let h = splitmix(inst.id() as u64);
                let ux = (h & 0xffff_ffff) as f64 / u32::MAX as f64 - 0.5;
                let uy = (h >> 32) as f64 / u32::MAX as f64 - 0.5;
                Point::new(ux * jitter, uy * jitter)
            })
            .collect();

        QuantumNetlist {
            instances,
            nets,
            positions,
            region,
            qubit_instances,
            resonator_segments,
            resonator_endpoints,
            detuning_threshold: frequencies.detuning_threshold(),
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qplacer_freq::FrequencyAssigner;

    fn build(topology: &Topology, lb: f64) -> QuantumNetlist {
        let freqs = FrequencyAssigner::paper_defaults().assign(topology);
        QuantumNetlist::build(topology, &freqs, &NetlistConfig::with_segment_size(lb))
    }

    #[test]
    fn cell_counts_reproduce_table_ii() {
        // Table II: #cells at l_b ∈ {0.2, 0.3, 0.4} per topology. Our
        // segment counts depend on assigned resonator frequencies, so allow
        // a small tolerance around the published numbers.
        let cases = [
            ("grid", Topology::grid(5, 5), [1050, 490, 299]),
            ("falcon", Topology::falcon27(), [744, 354, 218]),
            ("eagle", Topology::eagle127(), [3810, 1801, 1104]),
            ("aspen11", Topology::aspen(1, 5), [1272, 598, 369]),
            ("aspenM", Topology::aspen(2, 5), [2787, 1310, 799]),
            ("xtree", Topology::xtree(4, 3, 3), [1393, 660, 410]),
        ];
        for (name, topo, expected) in cases {
            for (lb, &exp) in [0.2, 0.3, 0.4].iter().zip(&expected) {
                let n = build(&topo, *lb).num_instances() as f64;
                let ratio = n / exp as f64;
                assert!(
                    (0.85..=1.15).contains(&ratio),
                    "{name} lb={lb}: {n} cells vs paper {exp}"
                );
            }
        }
    }

    #[test]
    fn qubits_then_segments_indexing() {
        let t = Topology::grid(3, 3);
        let nl = build(&t, 0.3);
        assert_eq!(nl.num_qubits(), 9);
        assert_eq!(nl.num_resonators(), 12);
        for q in 0..9 {
            let inst = nl.instance(nl.qubit_instance(q));
            assert_eq!(inst.kind(), InstanceKind::Qubit(q));
        }
        for r in 0..nl.num_resonators() {
            for (s, &id) in nl.resonator_segments(r).iter().enumerate() {
                assert_eq!(
                    nl.instance(id).kind(),
                    InstanceKind::ResonatorSegment {
                        resonator: r,
                        segment: s
                    }
                );
            }
        }
    }

    #[test]
    fn nets_chain_qubits_through_segments() {
        let t = Topology::from_edges("pair", 2, [(0, 1)]).unwrap();
        let nl = build(&t, 0.3);
        let n_seg = nl.resonator_segments(0).len();
        assert_eq!(nl.nets().len(), n_seg + 1);
        // First net starts at qubit 0, last net ends at qubit 1.
        let (a, _) = nl.nets()[0].endpoints();
        assert_eq!(a, nl.qubit_instance(0));
        let (_, b) = nl.nets()[nl.nets().len() - 1].endpoints();
        assert_eq!(b, nl.qubit_instance(1));
    }

    #[test]
    fn region_hits_target_utilization() {
        let t = Topology::falcon27();
        let nl = build(&t, 0.3);
        let util = nl.total_padded_area() / nl.region().area();
        assert!((util - NetlistConfig::default().target_utilization).abs() < 0.01);
    }

    #[test]
    fn initial_positions_are_near_center_and_inside() {
        let t = Topology::falcon27();
        let nl = build(&t, 0.3);
        for inst in nl.instances() {
            let p = nl.position(inst.id());
            assert!(nl.region().contains(p));
            assert!(p.distance(Point::ORIGIN) < 0.1 * nl.region().width());
        }
    }

    #[test]
    fn collision_map_respects_resonator_exclusion() {
        let t = Topology::grid(3, 3);
        let nl = build(&t, 0.3);
        let map = nl.collision_map();
        for inst in nl.instances() {
            for &other in &map[inst.id()] {
                let o = nl.instance(other);
                assert!(!inst.same_resonator(o), "same-resonator pair in map");
                assert!(inst
                    .frequency()
                    .is_resonant_with(o.frequency(), nl.detuning_threshold()));
            }
        }
    }

    #[test]
    fn collision_map_is_symmetric() {
        let t = Topology::falcon27();
        let nl = build(&t, 0.4);
        let map = nl.collision_map();
        for (i, lst) in map.iter().enumerate() {
            for &j in lst {
                assert!(map[j].contains(&i), "asymmetric pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let t = Topology::aspen(1, 5);
        let a = build(&t, 0.3);
        let b = build(&t, 0.3);
        assert_eq!(a, b);
    }
}
