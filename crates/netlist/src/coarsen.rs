//! Netlist coarsening for multilevel placement.
//!
//! [`QuantumNetlist::coarsen`] contracts a clustering of the instances
//! into a smaller netlist with the same region, detuning threshold, and
//! conserved padded/core **area** — the quantities the electrostatic
//! density model and the frequency force actually consume. The coarse
//! netlist is a placement problem in its own right: the multilevel
//! engine places it, projects the solution back, and refines.

use std::collections::BTreeMap;

use qplacer_geometry::Point;

use crate::{Instance, Net, QuantumNetlist};

impl QuantumNetlist {
    /// Contracts the netlist according to `cluster_of`, which maps every
    /// instance id to a cluster id in `0..num_clusters`.
    ///
    /// Per cluster, the coarse instance:
    ///
    /// * carries the **kind and frequency of its representative** — the
    ///   member with the largest padded footprint (ties: lowest id) —
    ///   so the collision map of the coarse netlist approximates the
    ///   dominant member's collision behaviour,
    /// * **conserves area**: `padded_mm = √Σ padded areas` and
    ///   `core_mm = min(√Σ core areas, padded_mm)`,
    /// * starts at the padded-area-weighted **centroid** of its members'
    ///   current positions.
    ///
    /// Nets are remapped onto clusters; self-loops are dropped and
    /// parallel nets are merged with summed weights, in deterministic
    /// (sorted endpoint) order. The qubit/resonator bookkeeping is
    /// carried over best-effort — a device qubit maps to the cluster
    /// containing it (several qubits may share one cluster), and a
    /// resonator's segment list dedups to the clusters its segments
    /// landed in, chain order preserved.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_of` does not cover every instance, references
    /// a cluster id `>= num_clusters`, or leaves a cluster empty.
    #[must_use]
    pub fn coarsen(&self, cluster_of: &[usize], num_clusters: usize) -> QuantumNetlist {
        let n = self.instances.len();
        assert_eq!(cluster_of.len(), n, "cluster map must cover every instance");
        assert!(num_clusters > 0, "need at least one cluster");

        // Representative (max padded area, tie lowest id), conserved
        // areas, and weighted centroid per cluster, in one id-order scan.
        let mut representative: Vec<Option<usize>> = vec![None; num_clusters];
        let mut padded_area = vec![0.0f64; num_clusters];
        let mut core_area = vec![0.0f64; num_clusters];
        let mut moment = vec![(0.0f64, 0.0f64); num_clusters];
        for inst in &self.instances {
            let c = cluster_of[inst.id()];
            assert!(c < num_clusters, "cluster id {c} out of range");
            let rep = &mut representative[c];
            if rep.is_none_or(|r| inst.padded_area() > self.instances[r].padded_area()) {
                *rep = Some(inst.id());
            }
            padded_area[c] += inst.padded_area();
            core_area[c] += inst.core_area();
            let p = self.positions[inst.id()];
            moment[c].0 += inst.padded_area() * p.x;
            moment[c].1 += inst.padded_area() * p.y;
        }

        let mut instances = Vec::with_capacity(num_clusters);
        let mut positions = Vec::with_capacity(num_clusters);
        for c in 0..num_clusters {
            let rep = representative[c].unwrap_or_else(|| panic!("cluster {c} is empty"));
            let rep = &self.instances[rep];
            let padded = padded_area[c].sqrt();
            let core = core_area[c].sqrt().min(padded);
            instances.push(Instance::new(c, rep.kind(), rep.frequency(), padded, core));
            positions.push(Point::new(
                moment[c].0 / padded_area[c],
                moment[c].1 / padded_area[c],
            ));
        }

        // Remap nets: drop self-loops, merge parallel edges. BTreeMap
        // keys give a deterministic (sorted-endpoint) net order.
        let mut merged: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for net in &self.nets {
            let (a, b) = net.endpoints();
            let (ca, cb) = (cluster_of[a], cluster_of[b]);
            if ca != cb {
                *merged.entry((ca.min(cb), ca.max(cb))).or_insert(0.0) += net.weight();
            }
        }
        let nets = merged
            .into_iter()
            .map(|((a, b), w)| Net::new(a, b, w))
            .collect();

        let qubit_instances = self
            .qubit_instances
            .iter()
            .map(|&inst| cluster_of[inst])
            .collect();
        let resonator_segments = self
            .resonator_segments
            .iter()
            .map(|segments| {
                let mut clusters: Vec<usize> = Vec::with_capacity(segments.len());
                for &inst in segments {
                    let c = cluster_of[inst];
                    if !clusters.contains(&c) {
                        clusters.push(c);
                    }
                }
                clusters
            })
            .collect();

        QuantumNetlist {
            instances,
            nets,
            positions,
            region: self.region,
            qubit_instances,
            resonator_segments,
            resonator_endpoints: self.resonator_endpoints.clone(),
            detuning_threshold: self.detuning_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use qplacer_freq::FrequencyAssigner;
    use qplacer_topology::Topology;

    use crate::{NetlistConfig, QuantumNetlist};

    fn build() -> QuantumNetlist {
        let t = Topology::grid(2, 2);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        QuantumNetlist::build(&t, &freqs, &NetlistConfig::with_segment_size(0.4))
    }

    #[test]
    fn identity_coarsening_preserves_everything() {
        let nl = build();
        let n = nl.num_instances();
        let identity: Vec<usize> = (0..n).collect();
        let coarse = nl.coarsen(&identity, n);
        assert_eq!(coarse.num_instances(), n);
        assert_eq!(coarse.nets().len(), nl.nets().len());
        for (a, b) in nl.instances().iter().zip(coarse.instances()) {
            assert_eq!(a.kind(), b.kind());
            assert!((a.padded_mm() - b.padded_mm()).abs() < 1e-12);
            assert!((a.core_mm() - b.core_mm()).abs() < 1e-12);
        }
        for (a, b) in nl.positions().iter().zip(coarse.positions()) {
            assert!((a.x - b.x).abs() < 1e-12 && (a.y - b.y).abs() < 1e-12);
        }
    }

    #[test]
    fn pairing_conserves_area_and_drops_self_loops() {
        let nl = build();
        let n = nl.num_instances();
        // Pair consecutive instances: (0,1) -> 0, (2,3) -> 1, ...
        let cluster_of: Vec<usize> = (0..n).map(|i| i / 2).collect();
        let k = n.div_ceil(2);
        let coarse = nl.coarsen(&cluster_of, k);
        assert_eq!(coarse.num_instances(), k);
        assert!(
            (coarse.total_padded_area() - nl.total_padded_area()).abs()
                < 1e-9 * nl.total_padded_area()
        );
        assert!(
            (coarse.total_core_area() - nl.total_core_area()).abs() < 1e-9 * nl.total_core_area()
        );
        // Nets between members of one cluster vanished; none reference a
        // cluster twice, and every weight is positive.
        assert!(coarse.nets().len() < nl.nets().len());
        for net in coarse.nets() {
            let (a, b) = net.endpoints();
            assert_ne!(a, b);
            assert!(a < k && b < k);
            assert!(net.weight() > 0.0);
        }
        assert_eq!(coarse.region(), nl.region());
        assert_eq!(coarse.detuning_threshold(), nl.detuning_threshold());
    }

    #[test]
    fn parallel_nets_merge_with_summed_weight() {
        let nl = build();
        let n = nl.num_instances();
        // Two clusters: instance 0 alone, everything else together. All
        // surviving nets connect cluster 0 and cluster 1, so their
        // weights must sum to the total weight of nets touching 0.
        let cluster_of: Vec<usize> = (0..n).map(|i| usize::from(i != 0)).collect();
        let coarse = nl.coarsen(&cluster_of, 2);
        let expected: f64 = nl
            .nets()
            .iter()
            .filter(|net| {
                let (a, b) = net.endpoints();
                a == 0 || b == 0
            })
            .map(|net| net.weight())
            .sum();
        assert_eq!(coarse.nets().len(), 1);
        assert!((coarse.nets()[0].weight() - expected).abs() < 1e-12);
    }

    #[test]
    fn coarsening_is_deterministic() {
        let nl = build();
        let n = nl.num_instances();
        let cluster_of: Vec<usize> = (0..n).map(|i| i / 3).collect();
        let k = n.div_ceil(3);
        let a = nl.coarsen(&cluster_of, k);
        let b = nl.coarsen(&cluster_of, k);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cluster map")]
    fn wrong_length_panics() {
        let nl = build();
        let _ = nl.coarsen(&[0, 1], 2);
    }
}
