//! Netlist construction parameters.

use serde::{Deserialize, Serialize};

use qplacer_physics::constants;

/// How device couplings are physically realized (the paper's primary
/// architecture uses bus resonators; its conclusion notes the framework
/// "is suitable for a wide array of quantum architectures, including
/// those with tunable elements which often share similar geometrical
/// configurations" — this enum is that extension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CouplingKind {
    /// A λ/2 bus resonator, partitioned into movable segments (§IV-B2).
    BusResonator,
    /// A compact tunable coupler: one fixed-size instance per coupling,
    /// with an idle frequency from the resonator band.
    TunableCoupler {
        /// Coupler pocket side length (mm).
        size_mm: f64,
    },
}

/// Geometry parameters for netlist construction (paper §V-C defaults).
///
/// # Examples
///
/// ```
/// use qplacer_netlist::NetlistConfig;
/// let cfg = NetlistConfig::default();
/// assert_eq!(cfg.segment_size_mm, 0.3);
/// assert_eq!(cfg.qubit_padding_mm, 0.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetlistConfig {
    /// Resonator segment block size `l_b` (mm). The paper sweeps
    /// {0.2, 0.3, 0.4} and finds 0.3 optimal (§VI-D).
    pub segment_size_mm: f64,
    /// Qubit padding `d_q` (mm).
    pub qubit_padding_mm: f64,
    /// Resonator padding `d_r` (mm).
    pub resonator_padding_mm: f64,
    /// Bare qubit pocket side length (mm).
    pub qubit_size_mm: f64,
    /// Target substrate utilization used to size the placement region
    /// (total padded instance area / region area).
    pub target_utilization: f64,
    /// Physical realization of the device couplings.
    pub coupling: CouplingKind,
}

impl NetlistConfig {
    /// The paper's configuration with a non-default segment size.
    ///
    /// # Panics
    ///
    /// Panics if `segment_size_mm` is not positive.
    #[must_use]
    pub fn with_segment_size(segment_size_mm: f64) -> Self {
        assert!(segment_size_mm > 0.0, "segment size must be positive");
        Self {
            segment_size_mm,
            ..Self::default()
        }
    }

    /// Padded qubit footprint side: `L_q + d_q` (a halo of `d_q/2` per
    /// side, so two abutting qubits keep the required `d_q` clearance —
    /// "the minimum distance between two adjacent components \[is\] the sum
    /// of their paddings", §V-C).
    #[must_use]
    pub fn padded_qubit_mm(&self) -> f64 {
        self.qubit_size_mm + self.qubit_padding_mm
    }

    /// Padded segment footprint side: `l_b + d_r` (halo `d_r/2` per side).
    #[must_use]
    pub fn padded_segment_mm(&self) -> f64 {
        self.segment_size_mm + self.resonator_padding_mm
    }
}

impl NetlistConfig {
    /// A tunable-coupler architecture with the given coupler pocket size.
    ///
    /// # Panics
    ///
    /// Panics if `size_mm` is not positive.
    #[must_use]
    pub fn tunable_coupler(size_mm: f64) -> Self {
        assert!(size_mm > 0.0, "coupler size must be positive");
        Self {
            coupling: CouplingKind::TunableCoupler { size_mm },
            ..Self::default()
        }
    }
}

impl Default for NetlistConfig {
    fn default() -> Self {
        Self {
            segment_size_mm: constants::DEFAULT_SEGMENT_MM,
            qubit_padding_mm: constants::QUBIT_PADDING_MM,
            resonator_padding_mm: constants::RESONATOR_PADDING_MM,
            qubit_size_mm: constants::QUBIT_SIZE_MM,
            target_utilization: 0.7,
            coupling: CouplingKind::BusResonator,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = NetlistConfig::default();
        assert!((c.padded_qubit_mm() - 0.8).abs() < 1e-12);
        assert!((c.padded_segment_mm() - 0.4).abs() < 1e-12);
        // Two abutting padded qubits leave exactly d_q between pockets.
        let clearance = c.padded_qubit_mm() - c.qubit_size_mm;
        assert!((clearance - c.qubit_padding_mm).abs() < 1e-12);
    }

    #[test]
    fn segment_size_override() {
        let c = NetlistConfig::with_segment_size(0.2);
        assert!((c.padded_segment_mm() - 0.3).abs() < 1e-12);
        assert_eq!(c.qubit_padding_mm, 0.4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_segment_rejected() {
        let _ = NetlistConfig::with_segment_size(0.0);
    }
}
