//! Coupling-strength models from the Jaynes–Cummings analysis (§III).
//!
//! Three regimes matter to the placer:
//!
//! * **Resonant** (`Δ = |ω₁ − ω₂| ≲ g`): full vacuum-Rabi coupling `g`
//!   (Eq. 4) — energy swaps freely between the components.
//! * **Dispersive** (`Δ ≫ g`): effective ZZ coupling `g_eff = g²/Δ`
//!   (Eq. 5) — exponentially weaker, the safe operating point.
//! * The smooth crossover between them, plotted in Fig. 4, is modeled as
//!   `g_eff(Δ) = g²/√(Δ² + g²)`, which reproduces both limits.

use crate::{Capacitance, Frequency};

/// Capacitive coupling strength between two oscillators (Eq. 6):
///
/// ```text
/// g = ½·√(ω₁ω₂) · C_p / √((C₁+C_p)(C₂+C_p))
/// ```
///
/// # Examples
///
/// ```
/// use qplacer_physics::{coupling::capacitive_coupling, Capacitance, Frequency};
/// let g = capacitive_coupling(
///     Frequency::from_ghz(5.0),
///     Frequency::from_ghz(5.0),
///     Capacitance::from_ff(0.65),
///     Capacitance::from_ff(65.0),
///     Capacitance::from_ff(65.0),
/// );
/// // An engineered ~0.65 fF coupler yields the paper's 20–30 MHz scale.
/// assert!(g.mhz() > 20.0 && g.mhz() < 30.0);
/// ```
#[must_use]
pub fn capacitive_coupling(
    w1: Frequency,
    w2: Frequency,
    cp: Capacitance,
    c1: Capacitance,
    c2: Capacitance,
) -> Frequency {
    let geom = (w1.ghz() * w2.ghz()).sqrt();
    let denom = ((c1 + cp).ff() * (c2 + cp).ff()).sqrt();
    Frequency::from_ghz(0.5 * geom * cp.ff() / denom)
}

/// Effective coupling across the resonant–dispersive crossover (Fig. 4):
/// `g_eff(Δ) = g²/√(Δ² + g²)`. Equals `g` on resonance and `g²/Δ` when
/// far detuned.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{coupling::effective_coupling, Frequency};
/// let g = Frequency::from_mhz(25.0);
/// let delta = Frequency::from_ghz(0.25);
/// let geff = effective_coupling(g, delta);
/// let dispersive = Frequency::from_ghz(g.ghz() * g.ghz() / delta.ghz());
/// assert!((geff.ghz() - dispersive.ghz()).abs() / dispersive.ghz() < 0.01);
/// ```
#[must_use]
pub fn effective_coupling(g: Frequency, detuning: Frequency) -> Frequency {
    let g2 = g.ghz() * g.ghz();
    if g2 == 0.0 {
        return Frequency::ZERO;
    }
    Frequency::from_ghz(g2 / (detuning.ghz() * detuning.ghz() + g2).sqrt())
}

/// Dispersive shift `χ = g²/Δ` of a qubit–resonator pair (Eq. 8).
/// Returns `None` when the pair is *not* dispersive (Δ ≤ 2g), where the
/// perturbative expression is meaningless.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{coupling::dispersive_shift, Frequency};
/// let chi = dispersive_shift(Frequency::from_mhz(50.0), Frequency::from_ghz(1.5));
/// assert!(chi.is_some());
/// let invalid = dispersive_shift(Frequency::from_mhz(50.0), Frequency::from_mhz(60.0));
/// assert!(invalid.is_none());
/// ```
#[must_use]
pub fn dispersive_shift(g: Frequency, detuning: Frequency) -> Option<Frequency> {
    if detuning.ghz() <= 2.0 * g.ghz() {
        return None;
    }
    Some(Frequency::from_ghz(g.ghz() * g.ghz() / detuning.ghz()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_grows_with_cp() {
        let w = Frequency::from_ghz(5.0);
        let c = Capacitance::from_ff(65.0);
        let g_small = capacitive_coupling(w, w, Capacitance::from_ff(0.1), c, c);
        let g_big = capacitive_coupling(w, w, Capacitance::from_ff(1.0), c, c);
        assert!(g_big > g_small);
    }

    #[test]
    fn coupling_is_symmetric_in_components() {
        let w1 = Frequency::from_ghz(5.0);
        let w2 = Frequency::from_ghz(5.2);
        let cp = Capacitance::from_ff(0.5);
        let c1 = Capacitance::from_ff(60.0);
        let c2 = Capacitance::from_ff(70.0);
        let a = capacitive_coupling(w1, w2, cp, c1, c2);
        let b = capacitive_coupling(w2, w1, cp, c2, c1);
        assert!((a.ghz() - b.ghz()).abs() < 1e-15);
    }

    #[test]
    fn effective_coupling_limits() {
        let g = Frequency::from_mhz(25.0);
        // On resonance: g_eff == g.
        assert!((effective_coupling(g, Frequency::ZERO).ghz() - g.ghz()).abs() < 1e-15);
        // Far detuned: g_eff -> g²/Δ within 0.1%.
        let delta = Frequency::from_ghz(1.0);
        let expect = g.ghz() * g.ghz() / delta.ghz();
        let got = effective_coupling(g, delta).ghz();
        assert!((got - expect).abs() / expect < 1e-3);
        // Zero coupling stays zero.
        assert_eq!(effective_coupling(Frequency::ZERO, delta), Frequency::ZERO);
    }

    #[test]
    fn effective_coupling_is_monotone_in_detuning() {
        let g = Frequency::from_mhz(30.0);
        let mut prev = f64::INFINITY;
        for i in 0..50 {
            let delta = Frequency::from_mhz(i as f64 * 10.0);
            let geff = effective_coupling(g, delta).ghz();
            assert!(geff <= prev + 1e-15);
            prev = geff;
        }
    }

    #[test]
    fn dispersive_shift_requires_dispersive_regime() {
        let g = Frequency::from_mhz(50.0);
        assert!(dispersive_shift(g, Frequency::from_ghz(1.0)).is_some());
        assert!(dispersive_shift(g, Frequency::from_mhz(90.0)).is_none());
        let chi = dispersive_shift(g, Frequency::from_ghz(1.0)).unwrap();
        assert!((chi.mhz() - 2.5).abs() < 1e-9);
    }
}
