//! Small-system Schrödinger dynamics — the numerical ground truth behind
//! the crosstalk error model.
//!
//! The fidelity metric's Rabi formula `Pr[t] = sin²(g_eff·t)` (§V-C) is a
//! closed-form result for a resonant two-level exchange. This module
//! integrates the actual Schrödinger equation `i·dψ/dt = H·ψ` (ħ = 1,
//! energies in rad/ns) for small dense Hamiltonians with a classic RK4
//! stepper, so tests can confirm that
//!
//! * on resonance, the excitation swaps fully at rate `g` (vacuum Rabi),
//! * detuned by Δ, the maximum transfer drops to `g²/(g²+Δ²)` and the
//!   oscillation speeds up to `Ω = √(g²+Δ²)` (generalized Rabi), and
//! * the placer's `effective_coupling` surrogate bounds the true
//!   transfer behaviour it stands in for.

use qplacer_numeric::Complex64;

use crate::{Duration, Frequency};

/// A pure quantum state over a small Hilbert space.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    amplitudes: Vec<Complex64>,
}

impl State {
    /// Basis state `|k⟩` in a `dim`-dimensional space.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ dim` or `dim == 0`.
    #[must_use]
    pub fn basis(dim: usize, k: usize) -> Self {
        assert!(dim > 0, "empty Hilbert space");
        assert!(k < dim, "basis index out of range");
        let mut amplitudes = vec![Complex64::ZERO; dim];
        amplitudes[k] = Complex64::ONE;
        Self { amplitudes }
    }

    /// Dimension of the Hilbert space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amplitudes.len()
    }

    /// Occupation probability of basis state `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn population(&self, k: usize) -> f64 {
        self.amplitudes[k].norm_sq()
    }

    /// Total norm (should stay 1 under unitary evolution).
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amplitudes
            .iter()
            .map(|a| a.norm_sq())
            .sum::<f64>()
            .sqrt()
    }
}

/// A dense Hermitian Hamiltonian over a small Hilbert space, entries in
/// rad/ns.
#[derive(Debug, Clone, PartialEq)]
pub struct Hamiltonian {
    dim: usize,
    elements: Vec<Complex64>,
}

impl Hamiltonian {
    /// Zero Hamiltonian of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "empty Hilbert space");
        Self {
            dim,
            elements: vec![Complex64::ZERO; dim * dim],
        }
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Sets element `(row, col)` and its Hermitian conjugate.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, row: usize, col: usize, value: Complex64) {
        assert!(row < self.dim && col < self.dim, "index out of range");
        self.elements[row * self.dim + col] = value;
        self.elements[col * self.dim + row] = value.conj();
    }

    fn apply(&self, state: &[Complex64], out: &mut [Complex64]) {
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (c, &s) in state.iter().enumerate().take(self.dim) {
                acc += self.elements[r * self.dim + c] * s;
            }
            *o = acc;
        }
    }

    /// The resonant/detuned exchange Hamiltonian of two coupled modes in
    /// the rotating frame of mode 0:
    ///
    /// ```text
    /// H = | 0   g |
    ///     | g   Δ |   (angular units)
    /// ```
    #[must_use]
    pub fn exchange(g: Frequency, detuning: Frequency) -> Self {
        let mut h = Self::zeros(2);
        h.set(0, 1, Complex64::new(g.rad_per_ns(), 0.0));
        h.set(1, 1, Complex64::new(detuning.rad_per_ns(), 0.0));
        h
    }
}

/// Evolves `state` under `hamiltonian` for `duration` with fixed-step RK4
/// on `i·dψ/dt = H·ψ`, returning the final state. The step count adapts
/// to the Hamiltonian's magnitude so phase errors stay far below the
/// populations the tests compare.
///
/// # Panics
///
/// Panics if state and Hamiltonian dimensions differ.
#[must_use]
pub fn evolve(state: &State, hamiltonian: &Hamiltonian, duration: Duration) -> State {
    assert_eq!(state.dim(), hamiltonian.dim(), "dimension mismatch");
    let dim = state.dim();
    // Resolve the fastest scale: ‖H‖_max per step below ~0.05 rad.
    let hmax = hamiltonian
        .elements
        .iter()
        .map(|e| e.norm())
        .fold(0.0_f64, f64::max)
        .max(1e-6);
    let steps = ((duration.ns() * hmax / 0.05).ceil() as usize).clamp(1, 2_000_000);
    let dt = duration.ns() / steps as f64;

    let deriv = |psi: &[Complex64], out: &mut [Complex64]| {
        // dψ/dt = -i H ψ.
        hamiltonian.apply(psi, out);
        for v in out.iter_mut() {
            *v = Complex64::new(v.im, -v.re); // multiply by -i
        }
    };

    let mut psi = state.amplitudes.clone();
    let mut k1 = vec![Complex64::ZERO; dim];
    let mut k2 = vec![Complex64::ZERO; dim];
    let mut k3 = vec![Complex64::ZERO; dim];
    let mut k4 = vec![Complex64::ZERO; dim];
    let mut tmp = vec![Complex64::ZERO; dim];

    for _ in 0..steps {
        deriv(&psi, &mut k1);
        for i in 0..dim {
            tmp[i] = psi[i] + k1[i].scale(0.5 * dt);
        }
        deriv(&tmp, &mut k2);
        for i in 0..dim {
            tmp[i] = psi[i] + k2[i].scale(0.5 * dt);
        }
        deriv(&tmp, &mut k3);
        for i in 0..dim {
            tmp[i] = psi[i] + k3[i].scale(dt);
        }
        deriv(&tmp, &mut k4);
        for i in 0..dim {
            let incr = k1[i] + k2[i].scale(2.0) + k3[i].scale(2.0) + k4[i];
            psi[i] += incr.scale(dt / 6.0);
        }
    }
    State { amplitudes: psi }
}

/// Exact generalized-Rabi transfer probability after time `t` for two
/// coupled modes: `P = g²/(g²+Δ²) · sin²(Ω·t/2)` with `Ω = √(4g²+Δ²)`…
/// in the angular convention used here: `P = (g_a²/Ω²)·sin²(Ω·t)` with
/// `Ω = √(g_a² + (Δ_a/2)²)`, `g_a`, `Δ_a` angular.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{dynamics::rabi_transfer, Duration, Frequency};
/// // On resonance the transfer reaches 1 at a quarter period.
/// let g = Frequency::from_mhz(2.0);
/// let quarter = Duration::from_ns(125.0); // 2π·0.002·125 = π/2
/// assert!((rabi_transfer(g, Frequency::ZERO, quarter) - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn rabi_transfer(g: Frequency, detuning: Frequency, t: Duration) -> f64 {
    let ga = g.rad_per_ns();
    let da = detuning.rad_per_ns();
    let omega = (ga * ga + 0.25 * da * da).sqrt();
    if omega < 1e-15 {
        return 0.0;
    }
    let amp = ga * ga / (omega * omega);
    let s = (omega * t.ns()).sin();
    amp * s * s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_is_conserved() {
        let h = Hamiltonian::exchange(Frequency::from_mhz(5.0), Frequency::from_mhz(37.0));
        let psi = evolve(&State::basis(2, 0), &h, Duration::from_ns(500.0));
        assert!((psi.norm() - 1.0).abs() < 1e-7, "norm {}", psi.norm());
    }

    #[test]
    fn resonant_exchange_matches_analytics() {
        let g = Frequency::from_mhz(3.0);
        let h = Hamiltonian::exchange(g, Frequency::ZERO);
        for &t_ns in &[10.0, 40.0, 90.0, 170.0] {
            let t = Duration::from_ns(t_ns);
            let psi = evolve(&State::basis(2, 0), &h, t);
            let expected = rabi_transfer(g, Frequency::ZERO, t);
            assert!(
                (psi.population(1) - expected).abs() < 1e-6,
                "t={t_ns}: sim {} vs exact {expected}",
                psi.population(1)
            );
        }
    }

    #[test]
    fn detuned_exchange_matches_generalized_rabi() {
        let g = Frequency::from_mhz(3.0);
        let delta = Frequency::from_mhz(12.0);
        let h = Hamiltonian::exchange(g, delta);
        for &t_ns in &[15.0, 55.0, 140.0] {
            let t = Duration::from_ns(t_ns);
            let psi = evolve(&State::basis(2, 0), &h, t);
            let expected = rabi_transfer(g, delta, t);
            assert!(
                (psi.population(1) - expected).abs() < 1e-5,
                "t={t_ns}: sim {} vs exact {expected}",
                psi.population(1)
            );
        }
    }

    #[test]
    fn detuning_suppresses_maximum_transfer() {
        // Peak transfer g²/(g²+Δ²/4) — confirm numerically by scanning.
        let g = Frequency::from_mhz(2.0);
        let delta = Frequency::from_mhz(10.0);
        let h = Hamiltonian::exchange(g, delta);
        let mut peak = 0.0_f64;
        for i in 1..200 {
            let t = Duration::from_ns(i as f64 * 2.0);
            peak = peak.max(evolve(&State::basis(2, 0), &h, t).population(1));
        }
        let ga = g.rad_per_ns();
        let da = delta.rad_per_ns();
        let bound = ga * ga / (ga * ga + 0.25 * da * da);
        assert!(peak <= bound + 1e-4, "peak {peak} exceeds bound {bound}");
        assert!(peak > 0.8 * bound, "peak {peak} far below bound {bound}");
    }

    #[test]
    fn surrogate_error_model_tracks_true_average() {
        // The fidelity model uses averaged_rabi_error(effective_coupling).
        // Compare against the time-averaged exact transfer over the same
        // window: the surrogate must be within a small factor.
        use crate::{coupling, error};
        let g = Frequency::from_mhz(2.0);
        let delta = Frequency::from_mhz(6.0);
        let window = Duration::from_us(2.0);
        // True average by sampling the exact formula.
        let samples = 400;
        let mut acc = 0.0;
        for i in 0..samples {
            let t = Duration::from_ns(window.ns() * (i as f64 + 0.5) / samples as f64);
            acc += rabi_transfer(g, delta, t);
        }
        let true_avg = acc / samples as f64;
        let surrogate = error::averaged_rabi_error(coupling::effective_coupling(g, delta), window);
        // The fidelity metric is explicitly *worst-case* (§V-C): the
        // surrogate must never under-estimate the exact average, and
        // should stay within an order of magnitude of it.
        let ratio = surrogate / true_avg;
        assert!(
            ratio >= 1.0,
            "surrogate {surrogate} under-estimates true {true_avg}"
        );
        assert!(
            ratio <= 10.0,
            "surrogate {surrogate} wildly over-estimates true {true_avg}"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let h = Hamiltonian::zeros(3);
        let _ = evolve(&State::basis(2, 0), &h, Duration::from_ns(1.0));
    }
}
