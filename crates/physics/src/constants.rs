//! Architectural constants from the paper's experiment setup (§V-C).
//!
//! All values mirror the paper's "Architectural Features" paragraph, which
//! itself cites IBM device data and Qiskit-Metal reference designs.

use crate::{Capacitance, Duration, Frequency};

/// Side length of a (pocket) transmon qubit footprint: 400 µm = 0.4 mm.
pub const QUBIT_SIZE_MM: f64 = 0.4;

/// Qubit padding distance `d_q` = 400 µm.
pub const QUBIT_PADDING_MM: f64 = 0.4;

/// Resonator padding distance `d_r` = 100 µm.
pub const RESONATOR_PADDING_MM: f64 = 0.1;

/// Default resonator segment block size `l_b` = 0.3 mm (found optimal in
/// §VI-D).
pub const DEFAULT_SEGMENT_MM: f64 = 0.3;

/// Effective resonator strip width used when reshaping the meander into a
/// compact rectangle for partitioning; the paper's human-baseline formula
/// `D = L·d_r / (L_q + 2d_q)` implies the strip area is `L · d_r`.
pub const RESONATOR_STRIP_WIDTH_MM: f64 = RESONATOR_PADDING_MM;

/// Lower edge of the qubit frequency spectrum Ω: 4.8 GHz.
pub const QUBIT_FREQ_MIN: Frequency = Frequency::from_ghz(4.8);

/// Upper edge of the qubit frequency spectrum Ω: 5.2 GHz.
pub const QUBIT_FREQ_MAX: Frequency = Frequency::from_ghz(5.2);

/// Lower edge of the resonator frequency spectrum Ω_r: 6.0 GHz.
pub const RESONATOR_FREQ_MIN: Frequency = Frequency::from_ghz(6.0);

/// Upper edge of the resonator frequency spectrum Ω_r: 7.0 GHz.
pub const RESONATOR_FREQ_MAX: Frequency = Frequency::from_ghz(7.0);

/// Detuning threshold Δc below which two components count as resonant.
pub const DETUNING_THRESHOLD: Frequency = Frequency::from_ghz(0.1);

/// Transmon anharmonicity α/2π ≈ 310 MHz (IBM Falcon-class devices).
pub const ANHARMONICITY: Frequency = Frequency::from_ghz(0.310);

/// Speed of light in the coplanar waveguide, `v₀ ≈ 1.3 × 10⁸ m/s`,
/// expressed in mm/ns (1e8 m/s = 100 mm/ns).
pub const WAVE_SPEED_MM_PER_NS: f64 = 130.0;

/// Typical transmon self-capacitance (sets E_C ≈ 300 MHz).
pub const QUBIT_CAPACITANCE: Capacitance = Capacitance::from_ff(65.0);

/// Typical λ/2 coplanar resonator capacitance.
pub const RESONATOR_CAPACITANCE: Capacitance = Capacitance::from_ff(500.0);

/// Designed (intentional) qubit–qubit coupling strength scale; the paper
/// quotes g ≈ 20–30 MHz for directly connected transmons (Fig. 4).
pub const DESIGN_COUPLING: Frequency = Frequency::from_ghz(0.025);

/// Relaxation time T1 = 100 µs (paper's decoherence model input).
pub const T1: Duration = Duration::from_ns(100_000.0);

/// Dephasing time T2 = 100 µs.
pub const T2: Duration = Duration::from_ns(100_000.0);

/// Single-qubit gate duration (IBM basis-gate scale).
pub const SINGLE_QUBIT_GATE_TIME: Duration = Duration::from_ns(35.0);

/// Two-qubit (RIP CZ) gate duration.
pub const TWO_QUBIT_GATE_TIME: Duration = Duration::from_ns(300.0);

/// Base single-qubit gate error (excluding decoherence), IBM-class.
pub const SINGLE_QUBIT_GATE_ERROR: f64 = 3e-4;

/// Base two-qubit gate error (excluding decoherence and crosstalk).
pub const TWO_QUBIT_GATE_ERROR: f64 = 6e-3;

/// Readout error per measured qubit.
pub const READOUT_ERROR: f64 = 1e-2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectra_are_well_ordered() {
        assert!(QUBIT_FREQ_MIN < QUBIT_FREQ_MAX);
        assert!(RESONATOR_FREQ_MIN < RESONATOR_FREQ_MAX);
        // Qubit and resonator bands must not overlap (dispersive regime).
        assert!(QUBIT_FREQ_MAX < RESONATOR_FREQ_MIN);
    }

    #[test]
    fn resonator_lengths_match_paper_range() {
        // f = v0 / 2L  =>  L = v0 / 2f; the paper quotes 10.8–9.2 mm.
        let l_low = WAVE_SPEED_MM_PER_NS / (2.0 * RESONATOR_FREQ_MIN.ghz());
        let l_high = WAVE_SPEED_MM_PER_NS / (2.0 * RESONATOR_FREQ_MAX.ghz());
        assert!((l_low - 10.8).abs() < 0.1, "L(6 GHz) = {l_low}");
        assert!((l_high - 9.3).abs() < 0.1, "L(7 GHz) = {l_high}");
    }

    #[test]
    fn slot_counts_match_design() {
        let qubit_slots =
            ((QUBIT_FREQ_MAX - QUBIT_FREQ_MIN) / DETUNING_THRESHOLD).round() as usize + 1;
        let res_slots =
            ((RESONATOR_FREQ_MAX - RESONATOR_FREQ_MIN) / DETUNING_THRESHOLD).round() as usize + 1;
        assert_eq!(qubit_slots, 5);
        assert_eq!(res_slots, 11);
    }
}
