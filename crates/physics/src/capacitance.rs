//! Distance-dependent parasitic capacitance (the Qiskit-Metal substitute).
//!
//! The paper extracts `C_p(d)` between adjacent components from Qiskit
//! Metal's electromagnetic solver (Fig. 5-b and Fig. 6-c) and only uses the
//! resulting monotone decay. We replace the EM solver with a calibrated
//! coplanar-coupling model
//!
//! ```text
//! C_p(d) = C₀ / (1 + (d/d₀)²)
//! ```
//!
//! which has the right near-field (≈C₀) and far-field (∝ 1/d²) behaviour
//! for co-planar pads over a ground-free dielectric. Constants are chosen
//! so that the induced parasitic coupling reproduces the paper's
//! qualitative magnitudes: a few MHz for components at sub-padding
//! distances, negligible (≪ 1 MHz) at legal separations.

use crate::{constants, coupling, Capacitance, Frequency};

/// Near-contact parasitic capacitance between two adjacent transmon pads.
pub const QUBIT_CP0: Capacitance = Capacitance::from_ff(2.0);

/// Characteristic decay distance for qubit–qubit parasitics (mm).
pub const QUBIT_D0_MM: f64 = 0.08;

/// Near-contact parasitic capacitance per mm of adjacent resonator trace.
pub const RESONATOR_CP0_PER_MM: Capacitance = Capacitance::from_ff(8.0);

/// Characteristic decay distance for resonator–resonator parasitics (mm).
pub const RESONATOR_D0_MM: f64 = 0.06;

/// Parasitic capacitance between two qubit pads separated by `d_mm`
/// (edge-to-edge clearance, millimeters). Clamped at the near-contact
/// value for `d ≤ 0`.
///
/// # Examples
///
/// ```
/// use qplacer_physics::capacitance::qubit_parasitic;
/// // Monotone decay with distance.
/// assert!(qubit_parasitic(0.1).ff() > qubit_parasitic(0.4).ff());
/// assert!(qubit_parasitic(0.4).ff() > qubit_parasitic(1.2).ff());
/// ```
#[must_use]
pub fn qubit_parasitic(d_mm: f64) -> Capacitance {
    let d = d_mm.max(0.0);
    let ratio = d / QUBIT_D0_MM;
    QUBIT_CP0 * (1.0 / (1.0 + ratio * ratio))
}

/// Parasitic capacitance between two resonator traces with `adjacent_mm`
/// of trace running `d_mm` apart. The per-length density follows the same
/// coplanar decay as [`qubit_parasitic`]; total capacitance scales with
/// the adjacent length (§V-C: "the parasitic capacitance depends on the
/// adjacent length").
///
/// # Examples
///
/// ```
/// use qplacer_physics::capacitance::resonator_parasitic;
/// let short = resonator_parasitic(0.1, 0.3);
/// let long = resonator_parasitic(0.1, 0.9);
/// assert!((long.ff() / short.ff() - 3.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn resonator_parasitic(d_mm: f64, adjacent_mm: f64) -> Capacitance {
    let d = d_mm.max(0.0);
    let ratio = d / RESONATOR_D0_MM;
    RESONATOR_CP0_PER_MM * (adjacent_mm.max(0.0) / (1.0 + ratio * ratio))
}

/// Parasitic qubit–qubit coupling strength at separation `d_mm` for qubits
/// at `w1`, `w2` (Eq. 6 with the modeled `C_p`).
///
/// # Examples
///
/// ```
/// use qplacer_physics::capacitance::parasitic_qubit_coupling;
/// use qplacer_physics::Frequency;
/// let w = Frequency::from_ghz(5.0);
/// let near = parasitic_qubit_coupling(0.2, w, w);
/// let far = parasitic_qubit_coupling(1.2, w, w);
/// assert!(near.mhz() > 10.0 * far.mhz());
/// ```
#[must_use]
pub fn parasitic_qubit_coupling(d_mm: f64, w1: Frequency, w2: Frequency) -> Frequency {
    coupling::capacitive_coupling(
        w1,
        w2,
        qubit_parasitic(d_mm),
        constants::QUBIT_CAPACITANCE,
        constants::QUBIT_CAPACITANCE,
    )
}

/// Parasitic resonator–resonator coupling at separation `d_mm` with
/// `adjacent_mm` of parallel trace (§III-B: `g ∝ C_p/√(C_r1·C_r2)`).
#[must_use]
pub fn parasitic_resonator_coupling(
    d_mm: f64,
    adjacent_mm: f64,
    w1: Frequency,
    w2: Frequency,
) -> Frequency {
    coupling::capacitive_coupling(
        w1,
        w2,
        resonator_parasitic(d_mm, adjacent_mm),
        constants::RESONATOR_CAPACITANCE,
        constants::RESONATOR_CAPACITANCE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_cp_decays_monotonically() {
        let mut prev = f64::INFINITY;
        for i in 0..30 {
            let d = i as f64 * 0.1;
            let c = qubit_parasitic(d).ff();
            assert!(c < prev || i == 0, "not monotone at d={d}");
            assert!(c > 0.0);
            prev = c;
        }
    }

    #[test]
    fn negative_distance_clamps_to_contact() {
        assert_eq!(qubit_parasitic(-1.0), qubit_parasitic(0.0));
        assert_eq!(qubit_parasitic(0.0), QUBIT_CP0);
    }

    #[test]
    fn coupling_scale_is_realistic() {
        // At sub-padding distance (0.2 mm) the parasitic coupling should be
        // in the single-MHz range; at safe distance (1.2 mm) well below.
        let w = Frequency::from_ghz(5.0);
        let near = parasitic_qubit_coupling(0.2, w, w);
        let far = parasitic_qubit_coupling(1.2, w, w);
        assert!(
            near.mhz() > 1.0 && near.mhz() < 20.0,
            "near coupling {near}"
        );
        assert!(far.mhz() < 0.5, "far coupling {far}");
    }

    #[test]
    fn resonator_cp_scales_with_adjacency() {
        let base = resonator_parasitic(0.1, 1.0).ff();
        assert!((resonator_parasitic(0.1, 2.0).ff() - 2.0 * base).abs() < 1e-12);
        assert_eq!(resonator_parasitic(0.1, 0.0).ff(), 0.0);
    }

    #[test]
    fn resonator_coupling_decays_with_distance() {
        let w = Frequency::from_ghz(6.5);
        let near = parasitic_resonator_coupling(0.05, 0.3, w, w);
        let far = parasitic_resonator_coupling(0.6, 0.3, w, w);
        assert!(near.ghz() > 10.0 * far.ghz());
    }
}
