//! Error channels feeding the fidelity metric (Eq. 15–16).
//!
//! * **Crosstalk**: spatially-violating component pairs exchange energy at
//!   their effective coupling rate; the transition probability is the Rabi
//!   formula `Pr[t] = sin²(g_eff·t)` (§V-C). The paper's Eq. 16 prints
//!   `ε = 1 − sin(gt)²`, which is 1 at `t = 0` and contradicts the stated
//!   transition probability; we implement the physical form
//!   `ε = sin²(g_eff·t)` (see `DESIGN.md`).
//! * **Decoherence**: amplitude/phase damping over a duration `t`:
//!   `ε = 1 − exp(-t/T1)·exp(-t/T2)` folded into per-gate and idle errors.

use crate::{Duration, Frequency};

/// Rabi-oscillation crosstalk error after `t` of exposure at effective
/// coupling `g_eff`: `ε = sin²(g_eff·t)` with `g_eff·t` taken as the
/// accumulated angle `2π·f·t`.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{error::rabi_error, Duration, Frequency};
/// // A quarter Rabi period gives unit error probability.
/// let g = Frequency::from_mhz(1.0);
/// let quarter = Duration::from_ns(250.0); // 2π·0.001·250 = π/2
/// assert!((rabi_error(g, quarter) - 1.0).abs() < 1e-9);
/// assert_eq!(rabi_error(g, Duration::ZERO), 0.0);
/// ```
#[must_use]
pub fn rabi_error(g_eff: Frequency, t: Duration) -> f64 {
    let angle = g_eff.rad_per_ns() * t.ns();
    let s = angle.sin();
    s * s
}

/// Time-averaged Rabi crosstalk error over a long, dephased exposure.
///
/// When the exposure is much longer than the Rabi period, the phase of the
/// oscillation is effectively random across program executions; the
/// expected error is the average of `sin²`, i.e. ½·(1 − sinc-like decay).
/// For short exposures this reduces smoothly to the instantaneous
/// [`rabi_error`].
///
/// # Examples
///
/// ```
/// use qplacer_physics::{error::averaged_rabi_error, Duration, Frequency};
/// // Long resonant exposure saturates at 1/2.
/// let e = averaged_rabi_error(Frequency::from_mhz(5.0), Duration::from_us(10.0));
/// assert!((e - 0.5).abs() < 0.01);
/// // Weak coupling over a short window stays tiny.
/// let tiny = averaged_rabi_error(Frequency::from_mhz(0.01), Duration::from_ns(100.0));
/// assert!(tiny < 1e-4);
/// ```
#[must_use]
pub fn averaged_rabi_error(g_eff: Frequency, t: Duration) -> f64 {
    let angle = g_eff.rad_per_ns() * t.ns();
    // E[sin²(θ)] over θ ∈ [0, angle] = ½ − sin(2·angle)/(4·angle).
    if angle < 1e-9 {
        return 0.0;
    }
    0.5 - (2.0 * angle).sin() / (4.0 * angle)
}

/// Decoherence error over duration `t` with relaxation `t1` and dephasing
/// `t2`: `ε = 1 − e^{-t/T1}·e^{-t/T2}`.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{error::decoherence_error, Duration};
/// let t1 = Duration::from_us(100.0);
/// let e = decoherence_error(Duration::from_ns(300.0), t1, t1);
/// assert!(e > 0.0 && e < 0.01);
/// ```
///
/// # Panics
///
/// Panics if `t1` or `t2` is not positive.
#[must_use]
pub fn decoherence_error(t: Duration, t1: Duration, t2: Duration) -> f64 {
    assert!(t1.ns() > 0.0 && t2.ns() > 0.0, "T1/T2 must be positive");
    1.0 - (-(t.ns() / t1.ns())).exp() * (-(t.ns() / t2.ns())).exp()
}

/// Combines independent error probabilities: `1 − Π(1 − εᵢ)`.
///
/// # Examples
///
/// ```
/// use qplacer_physics::error::combine_errors;
/// let e = combine_errors(&[0.1, 0.2]);
/// assert!((e - 0.28).abs() < 1e-12);
/// assert_eq!(combine_errors(&[]), 0.0);
/// ```
#[must_use]
pub fn combine_errors(errors: &[f64]) -> f64 {
    1.0 - errors
        .iter()
        .fold(1.0, |acc, &e| acc * (1.0 - e.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rabi_error_oscillates() {
        let g = Frequency::from_mhz(1.0);
        // Half Rabi period: angle = π, error back to 0.
        let half = Duration::from_ns(500.0);
        assert!(rabi_error(g, half) < 1e-9);
        // Stronger coupling reaches the first maximum sooner.
        let strong_first_max = 1.0 / (4.0 * Frequency::from_mhz(2.0).ghz() * 2.0);
        assert!(strong_first_max < 1.0 / (4.0 * g.ghz() * 2.0));
    }

    #[test]
    fn averaged_error_is_bounded() {
        for mhz in [0.01, 0.1, 1.0, 10.0] {
            for ns in [1.0, 10.0, 100.0, 10_000.0] {
                let e = averaged_rabi_error(Frequency::from_mhz(mhz), Duration::from_ns(ns));
                assert!((0.0..=1.0).contains(&e), "e = {e} at {mhz} MHz, {ns} ns");
            }
        }
    }

    #[test]
    fn averaged_error_grows_with_coupling() {
        let t = Duration::from_ns(200.0);
        let weak = averaged_rabi_error(Frequency::from_mhz(0.1), t);
        let strong = averaged_rabi_error(Frequency::from_mhz(2.0), t);
        assert!(strong > weak);
    }

    #[test]
    fn decoherence_limits() {
        let t1 = Duration::from_us(100.0);
        assert_eq!(decoherence_error(Duration::ZERO, t1, t1), 0.0);
        let long = decoherence_error(Duration::from_us(10_000.0), t1, t1);
        assert!(long > 0.999999);
        // Monotone in duration.
        let a = decoherence_error(Duration::from_ns(100.0), t1, t1);
        let b = decoherence_error(Duration::from_ns(200.0), t1, t1);
        assert!(b > a);
    }

    #[test]
    fn combine_errors_clamps_and_composes() {
        assert_eq!(combine_errors(&[1.0, 0.5]), 1.0);
        assert_eq!(combine_errors(&[0.0, 0.0]), 0.0);
        let e = combine_errors(&[2.0]); // clamped to 1
        assert_eq!(e, 1.0);
    }
}
