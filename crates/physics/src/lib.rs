//! Superconducting-circuit physics models for QPlacer.
//!
//! This crate is the quantitative substrate behind the paper's §II–III:
//! fixed-frequency transmon qubits, coplanar-waveguide resonators, their
//! couplings, and the error channels that the fidelity metric (Eq. 15)
//! integrates. The paper derives these from the Jaynes–Cummings
//! Hamiltonian and Qiskit-Metal EM simulation; here every relationship is
//! an explicit, documented analytic model (see `DESIGN.md` for the
//! substitution rationale).
//!
//! * [`Frequency`] — strongly-typed GHz values with detuning helpers.
//! * [`Transmon`] / [`Resonator`] — component models (geometry,
//!   capacitance, frequency).
//! * [`capacitance`] — the distance-dependent parasitic capacitance
//!   `C_p(d)` replacing Qiskit-Metal extraction (Fig. 5-b, 6-c).
//! * [`coupling`] — resonant coupling `g`, dispersive `g²/Δ`, the smooth
//!   crossover `g_eff(Δ)` (Fig. 4), and qubit/resonator variants.
//! * [`error`] — Rabi crosstalk error (Eq. 16), T1/T2 decoherence, and
//!   base gate errors.
//! * [`rip`] — resonator-induced-phase gate rate (Eq. 2) and CZ gate time.
//!
//! # Examples
//!
//! ```
//! use qplacer_physics::{coupling, Frequency};
//!
//! let g = Frequency::from_mhz(25.0);
//! // On resonance the full coupling acts; far detuned it collapses to g²/Δ.
//! let resonant = coupling::effective_coupling(g, Frequency::from_ghz(0.0));
//! let detuned = coupling::effective_coupling(g, Frequency::from_ghz(0.5));
//! assert!((resonant.ghz() - g.ghz()).abs() < 1e-12);
//! assert!(detuned.ghz() < 0.1 * g.ghz());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacitance;
pub mod constants;
pub mod coupling;
pub mod dynamics;
pub mod error;
pub mod rip;
pub mod substrate;

mod resonator;
mod transmon;
mod units;

pub use resonator::Resonator;
pub use transmon::Transmon;
pub use units::{Capacitance, Duration, Frequency};
