//! Coplanar-waveguide resonator model (§II-A, §III-B).

use serde::{Deserialize, Serialize};

use crate::{constants, Capacitance, Frequency};

/// A λ/2 coplanar-waveguide bus resonator.
///
/// The fundamental frequency fixes the physical trace length through
/// `f = v₀ / 2L` (§V-C), which in turn fixes the substrate area the
/// resonator's meander occupies — the quantity the partitioning strategy
/// (§IV-B2) divides into segments.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{Frequency, Resonator};
/// let r = Resonator::new(Frequency::from_ghz(6.5));
/// assert!((r.length_mm() - 10.0).abs() < 0.01);
/// let n = r.segment_count(0.3);
/// assert_eq!(n, 12); // ceil(10.0 · 0.1 / 0.09)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resonator {
    frequency: Frequency,
    capacitance: Capacitance,
}

impl Resonator {
    /// Creates a resonator at the given fundamental frequency.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not positive.
    #[must_use]
    pub fn new(frequency: Frequency) -> Self {
        assert!(
            frequency.ghz() > 0.0,
            "resonator frequency must be positive"
        );
        Self {
            frequency,
            capacitance: constants::RESONATOR_CAPACITANCE,
        }
    }

    /// Fundamental frequency.
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Total capacitance of the distributed resonator.
    #[must_use]
    pub fn capacitance(&self) -> Capacitance {
        self.capacitance
    }

    /// Physical trace length `L = v₀ / 2f` in millimeters.
    #[must_use]
    pub fn length_mm(&self) -> f64 {
        constants::WAVE_SPEED_MM_PER_NS / (2.0 * self.frequency.ghz())
    }

    /// Substrate strip area the meander occupies: `L · d_r` (mm²), per the
    /// human-baseline geometry of §V-B.
    #[must_use]
    pub fn strip_area_mm2(&self) -> f64 {
        self.length_mm() * constants::RESONATOR_STRIP_WIDTH_MM
    }

    /// Number of square segments of side `lb_mm` needed to reserve this
    /// resonator's strip area (§IV-B2): `⌈L·d_r / l_b²⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `lb_mm` is not positive.
    #[must_use]
    pub fn segment_count(&self, lb_mm: f64) -> usize {
        assert!(lb_mm > 0.0, "segment size must be positive");
        (self.strip_area_mm2() / (lb_mm * lb_mm)).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_matches_paper_range() {
        // Paper: 6.0–7.0 GHz corresponds to 10.8–9.2 mm.
        let low = Resonator::new(constants::RESONATOR_FREQ_MIN);
        let high = Resonator::new(constants::RESONATOR_FREQ_MAX);
        assert!((low.length_mm() - 10.83).abs() < 0.01);
        assert!((high.length_mm() - 9.29).abs() < 0.01);
    }

    #[test]
    fn segment_counts_reproduce_table_ii_scale() {
        // Table II implies ≈11–12 segments per resonator at l_b = 0.3 mm,
        // ≈26 at 0.2 mm and ≈7 at 0.4 mm.
        let r = Resonator::new(Frequency::from_ghz(6.5));
        assert_eq!(r.segment_count(0.3), 12);
        assert_eq!(r.segment_count(0.2), 25);
        assert_eq!(r.segment_count(0.4), 7);
    }

    #[test]
    fn higher_frequency_means_shorter_resonator() {
        let a = Resonator::new(Frequency::from_ghz(6.0));
        let b = Resonator::new(Frequency::from_ghz(7.0));
        assert!(a.length_mm() > b.length_mm());
        assert!(a.segment_count(0.3) >= b.segment_count(0.3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_segment_size_panics() {
        let r = Resonator::new(Frequency::from_ghz(6.5));
        let _ = r.segment_count(0.0);
    }
}
