//! Strongly-typed physical quantities.
//!
//! Frequencies in GHz, durations in nanoseconds, capacitances in
//! femtofarads — the natural scales of superconducting quantum hardware.
//! Keeping them as newtypes prevents the classic mistake of mixing a
//! 5 GHz qubit frequency with a 25 MHz coupling strength or a 0.1 GHz
//! detuning threshold.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A frequency (or frequency-like quantity such as a coupling strength or
/// detuning), stored in GHz.
///
/// # Examples
///
/// ```
/// use qplacer_physics::Frequency;
/// let q = Frequency::from_ghz(5.0);
/// let r = Frequency::from_mhz(4900.0);
/// assert!((q.detuning(r).mhz() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Zero frequency.
    pub const ZERO: Frequency = Frequency(0.0);

    /// Creates a frequency from a GHz value.
    #[must_use]
    pub const fn from_ghz(ghz: f64) -> Self {
        Self(ghz)
    }

    /// Creates a frequency from a MHz value.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e-3)
    }

    /// Value in GHz.
    #[must_use]
    pub const fn ghz(self) -> f64 {
        self.0
    }

    /// Value in MHz.
    #[must_use]
    pub fn mhz(self) -> f64 {
        self.0 * 1e3
    }

    /// Angular frequency in radians per nanosecond (`2π · f`).
    ///
    /// 1 GHz = 1 cycle/ns, so multiplying by 2π yields rad/ns directly;
    /// this is the rate at which Rabi phases accumulate in [`crate::error`].
    #[must_use]
    pub fn rad_per_ns(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }

    /// Absolute detuning `|f₁ − f₂|`.
    #[must_use]
    pub fn detuning(self, other: Frequency) -> Frequency {
        Frequency((self.0 - other.0).abs())
    }

    /// `true` when the detuning to `other` is at most `threshold` — the
    /// paper's resonance indicator τ(ω_i, ω_j, Δc).
    #[must_use]
    pub fn is_resonant_with(self, other: Frequency, threshold: Frequency) -> bool {
        self.detuning(other) <= threshold
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Frequency {
        Frequency(self.0.abs())
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() < 1.0 {
            write!(f, "{:.3} MHz", self.mhz())
        } else {
            write!(f, "{:.4} GHz", self.0)
        }
    }
}

impl Add for Frequency {
    type Output = Frequency;
    fn add(self, rhs: Frequency) -> Frequency {
        Frequency(self.0 + rhs.0)
    }
}

impl Sub for Frequency {
    type Output = Frequency;
    fn sub(self, rhs: Frequency) -> Frequency {
        Frequency(self.0 - rhs.0)
    }
}

impl Neg for Frequency {
    type Output = Frequency;
    fn neg(self) -> Frequency {
        Frequency(-self.0)
    }
}

impl Mul<f64> for Frequency {
    type Output = Frequency;
    fn mul(self, rhs: f64) -> Frequency {
        Frequency(self.0 * rhs)
    }
}

impl Div<f64> for Frequency {
    type Output = Frequency;
    fn div(self, rhs: f64) -> Frequency {
        Frequency(self.0 / rhs)
    }
}

impl Div for Frequency {
    type Output = f64;
    fn div(self, rhs: Frequency) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Frequency {
    fn sum<I: Iterator<Item = Frequency>>(iter: I) -> Frequency {
        Frequency(iter.map(|f| f.0).sum())
    }
}

/// A time duration, stored in nanoseconds.
///
/// # Examples
///
/// ```
/// use qplacer_physics::Duration;
/// let gate = Duration::from_ns(300.0);
/// assert_eq!(gate.us(), 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// Zero duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: f64) -> Self {
        Self(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        Self(us * 1e3)
    }

    /// Value in nanoseconds.
    #[must_use]
    pub const fn ns(self) -> f64 {
        self.0
    }

    /// Value in microseconds.
    #[must_use]
    pub fn us(self) -> f64 {
        self.0 * 1e-3
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ns", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div for Duration {
    type Output = f64;
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

/// A capacitance, stored in femtofarads.
///
/// # Examples
///
/// ```
/// use qplacer_physics::Capacitance;
/// let c = Capacitance::from_ff(65.0);
/// assert_eq!(c.ff(), 65.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Capacitance(f64);

impl Capacitance {
    /// Zero capacitance.
    pub const ZERO: Capacitance = Capacitance(0.0);

    /// Creates a capacitance from femtofarads.
    #[must_use]
    pub const fn from_ff(ff: f64) -> Self {
        Self(ff)
    }

    /// Value in femtofarads.
    #[must_use]
    pub const fn ff(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Capacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} fF", self.0)
    }
}

impl Add for Capacitance {
    type Output = Capacitance;
    fn add(self, rhs: Capacitance) -> Capacitance {
        Capacitance(self.0 + rhs.0)
    }
}

impl Mul<f64> for Capacitance {
    type Output = Capacitance;
    fn mul(self, rhs: f64) -> Capacitance {
        Capacitance(self.0 * rhs)
    }
}

impl Div for Capacitance {
    type Output = f64;
    fn div(self, rhs: Capacitance) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_mhz(250.0);
        assert!((f.ghz() - 0.25).abs() < 1e-12);
        assert!((f.mhz() - 250.0).abs() < 1e-9);
        assert!((Frequency::from_ghz(1.0).rad_per_ns() - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn detuning_is_symmetric_and_nonnegative() {
        let a = Frequency::from_ghz(5.1);
        let b = Frequency::from_ghz(4.9);
        assert_eq!(a.detuning(b), b.detuning(a));
        assert!((a.detuning(b).ghz() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn resonance_indicator_matches_threshold() {
        let dc = Frequency::from_ghz(0.1);
        let a = Frequency::from_ghz(5.0);
        assert!(a.is_resonant_with(Frequency::from_ghz(5.1), dc));
        assert!(a.is_resonant_with(Frequency::from_ghz(5.05), dc));
        assert!(!a.is_resonant_with(Frequency::from_ghz(5.11), dc));
    }

    #[test]
    fn arithmetic() {
        let f = Frequency::from_ghz(2.0) + Frequency::from_ghz(3.0);
        assert_eq!(f, Frequency::from_ghz(5.0));
        assert_eq!(f * 2.0, Frequency::from_ghz(10.0));
        assert_eq!(f / Frequency::from_ghz(2.5), 2.0);
        let d = Duration::from_us(1.0) + Duration::from_ns(500.0);
        assert_eq!(d.ns(), 1500.0);
        let c = Capacitance::from_ff(10.0) + Capacitance::from_ff(5.0);
        assert_eq!(c.ff(), 15.0);
    }

    #[test]
    fn display_picks_natural_units() {
        assert_eq!(format!("{}", Frequency::from_ghz(5.05)), "5.0500 GHz");
        assert_eq!(format!("{}", Frequency::from_mhz(25.0)), "25.000 MHz");
    }
}
