//! Substrate spurious electromagnetic modes (§III-C).
//!
//! A dielectric substrate of size `a × b` inside its enclosure behaves as
//! a resonant cavity whose transverse-magnetic box modes sit at
//!
//! ```text
//! f_mn = (c / 2√ε_r) · √((m/a)² + (n/b)²)
//! ```
//!
//! The first mode TM₁₁₀ caps every on-chip component frequency: a
//! component at or above the mode hybridizes with it, radiating energy
//! and opening a decoherence channel. The paper quotes TM₁₁₀ dropping
//! from 12.41 GHz on a 5×5 mm² silicon chip to 6.20 GHz on 10×10 mm² —
//! which this model reproduces — and uses it to argue that compact
//! placement *is* a coherence optimization.

use crate::{constants, Frequency};

/// Speed of light in vacuum, mm/ns.
const C_MM_PER_NS: f64 = 299.792_458;

/// Relative permittivity of high-resistivity silicon.
pub const SILICON_EPS_R: f64 = 11.68;

/// The TM_mn0 box-mode frequency of an `a × b` mm substrate with relative
/// permittivity `eps_r`.
///
/// # Panics
///
/// Panics if any argument is not positive or both mode indices are zero.
///
/// # Examples
///
/// ```
/// use qplacer_physics::substrate::{box_mode, SILICON_EPS_R};
/// let tm110 = box_mode(5.0, 5.0, SILICON_EPS_R, 1, 1);
/// assert!((tm110.ghz() - 12.4).abs() < 0.2); // the paper's 12.41 GHz
/// ```
#[must_use]
pub fn box_mode(a_mm: f64, b_mm: f64, eps_r: f64, m: u32, n: u32) -> Frequency {
    assert!(a_mm > 0.0 && b_mm > 0.0, "substrate dims must be positive");
    assert!(eps_r > 0.0, "permittivity must be positive");
    assert!(m + n > 0, "at least one mode index must be non-zero");
    let term = (m as f64 / a_mm).powi(2) + (n as f64 / b_mm).powi(2);
    Frequency::from_ghz(C_MM_PER_NS / (2.0 * eps_r.sqrt()) * term.sqrt())
}

/// The lowest spurious mode TM₁₁₀ of an `a × b` silicon substrate.
///
/// # Examples
///
/// ```
/// use qplacer_physics::substrate::tm110;
/// // Doubling the substrate halves the mode frequency.
/// let small = tm110(5.0, 5.0);
/// let large = tm110(10.0, 10.0);
/// assert!((small.ghz() / large.ghz() - 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn tm110(a_mm: f64, b_mm: f64) -> Frequency {
    box_mode(a_mm, b_mm, SILICON_EPS_R, 1, 1)
}

/// Frequency headroom of a layout: TM₁₁₀ of its substrate minus the top
/// of the resonator band. Positive headroom means no on-chip component
/// can resonate with the box mode; negative headroom is the §III-C
/// failure scenario that motivates compact placement.
///
/// # Examples
///
/// ```
/// use qplacer_physics::substrate::mode_headroom;
/// assert!(mode_headroom(8.0, 8.0).ghz() > 0.0);   // compact: safe
/// assert!(mode_headroom(16.0, 16.0).ghz() < 0.0); // sprawling: unsafe
/// ```
#[must_use]
pub fn mode_headroom(a_mm: f64, b_mm: f64) -> Frequency {
    tm110(a_mm, b_mm) - constants::RESONATOR_FREQ_MAX
}

/// The largest square substrate side (mm) that keeps TM₁₁₀ above the
/// component band by `margin` — the hard area budget the paper's §III-C
/// implies.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{substrate::max_safe_square_mm, Frequency};
/// let side = max_safe_square_mm(Frequency::from_ghz(1.0));
/// // ~10x10 mm, the practical chip-size limit the paper cites.
/// assert!(side > 7.0 && side < 12.0);
/// ```
#[must_use]
pub fn max_safe_square_mm(margin: Frequency) -> f64 {
    // For a square: f = c/(2√ε)·√2/a  =>  a = c·√2 / (2√ε·f).
    let f_min = (constants::RESONATOR_FREQ_MAX + margin).ghz();
    C_MM_PER_NS * 2.0_f64.sqrt() / (2.0 * SILICON_EPS_R.sqrt() * f_min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_values() {
        // §III-C: "TM110 drops from 12.41 GHz to 6.20 GHz when increasing
        // from 5×5 mm² to 10×10 mm²".
        let small = tm110(5.0, 5.0);
        let large = tm110(10.0, 10.0);
        assert!((small.ghz() - 12.41).abs() < 0.05, "got {small}");
        assert!((large.ghz() - 6.20).abs() < 0.05, "got {large}");
    }

    #[test]
    fn mode_frequency_decreases_with_size() {
        let mut prev = f64::INFINITY;
        for side in [4.0, 6.0, 8.0, 12.0, 16.0] {
            let f = tm110(side, side).ghz();
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn higher_modes_are_higher() {
        let f11 = box_mode(8.0, 8.0, SILICON_EPS_R, 1, 1);
        let f21 = box_mode(8.0, 8.0, SILICON_EPS_R, 2, 1);
        let f22 = box_mode(8.0, 8.0, SILICON_EPS_R, 2, 2);
        assert!(f21 > f11);
        assert!(f22 > f21);
        // TM22 of a square is exactly 2× TM11.
        assert!((f22.ghz() - 2.0 * f11.ghz()).abs() < 1e-9);
    }

    #[test]
    fn rectangular_substrates() {
        // A long, thin substrate keeps the mode higher than a square of
        // equal area (the short axis dominates).
        let square = tm110(8.0, 8.0);
        let rect = tm110(16.0, 4.0);
        assert!(rect > square);
    }

    #[test]
    fn safe_square_is_consistent_with_headroom() {
        let margin = Frequency::from_ghz(0.5);
        let side = max_safe_square_mm(margin);
        let head = mode_headroom(side, side);
        assert!((head.ghz() - margin.ghz()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_mode_panics() {
        let _ = box_mode(5.0, 5.0, SILICON_EPS_R, 0, 0);
    }
}
