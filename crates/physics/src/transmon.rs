//! Fixed-frequency transmon qubit model (§II-A).

use serde::{Deserialize, Serialize};

use crate::{constants, Capacitance, Frequency};

/// A fixed-frequency pocket transmon: a square footprint with a designed
/// qubit frequency ω₀₁ and anharmonicity α.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{Frequency, Transmon};
/// let q = Transmon::new(Frequency::from_ghz(5.0));
/// assert_eq!(q.size_mm(), 0.4);
/// assert!(q.f12() < q.frequency()); // negative anharmonicity
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transmon {
    frequency: Frequency,
    anharmonicity: Frequency,
    capacitance: Capacitance,
    size_mm: f64,
}

impl Transmon {
    /// Creates a transmon with the architecture's default geometry and
    /// anharmonicity at the given |0⟩→|1⟩ frequency.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not positive.
    #[must_use]
    pub fn new(frequency: Frequency) -> Self {
        assert!(frequency.ghz() > 0.0, "qubit frequency must be positive");
        Self {
            frequency,
            anharmonicity: constants::ANHARMONICITY,
            capacitance: constants::QUBIT_CAPACITANCE,
            size_mm: constants::QUBIT_SIZE_MM,
        }
    }

    /// The |0⟩→|1⟩ transition frequency ω₀₁.
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The |1⟩→|2⟩ transition frequency ω₁₂ = ω₀₁ − α (transmons have
    /// negative anharmonicity: levels compress going up).
    #[must_use]
    pub fn f12(&self) -> Frequency {
        self.frequency - self.anharmonicity
    }

    /// Anharmonicity α = ω₀₁ − ω₁₂.
    #[must_use]
    pub fn anharmonicity(&self) -> Frequency {
        self.anharmonicity
    }

    /// Shunt capacitance.
    #[must_use]
    pub fn capacitance(&self) -> Capacitance {
        self.capacitance
    }

    /// Footprint side length in millimeters.
    #[must_use]
    pub fn size_mm(&self) -> f64 {
        self.size_mm
    }

    /// Whether the |1⟩→|2⟩ transition of `self` collides with the
    /// |0⟩→|1⟩ transition of `other` within `threshold` — the "11 ↔ 20"
    /// leakage channel the fidelity model tracks.
    #[must_use]
    pub fn leakage_collision(&self, other: &Transmon, threshold: Frequency) -> bool {
        self.f12().is_resonant_with(other.frequency(), threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let q = Transmon::new(Frequency::from_ghz(5.0));
        assert_eq!(q.size_mm(), constants::QUBIT_SIZE_MM);
        assert_eq!(q.capacitance(), constants::QUBIT_CAPACITANCE);
        assert!((q.anharmonicity().mhz() - 310.0).abs() < 1e-9);
    }

    #[test]
    fn level_structure_compresses() {
        let q = Transmon::new(Frequency::from_ghz(5.0));
        assert!((q.f12().ghz() - 4.69).abs() < 1e-9);
    }

    #[test]
    fn leakage_collision_detection() {
        let dc = Frequency::from_ghz(0.1);
        let a = Transmon::new(Frequency::from_ghz(5.2));
        // a.f12 = 4.89; collides with a 4.9 GHz qubit.
        let b = Transmon::new(Frequency::from_ghz(4.9));
        assert!(a.leakage_collision(&b, dc));
        let c = Transmon::new(Frequency::from_ghz(5.1));
        assert!(!a.leakage_collision(&c, dc));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = Transmon::new(Frequency::ZERO);
    }
}
