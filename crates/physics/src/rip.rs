//! Resonator-induced-phase (RIP) gate model (§II-B, Eq. 1–2).
//!
//! The RIP gate drives a detuned bus resonator with an off-resonant pulse;
//! the qubits acquire a conditional phase at rate
//!
//! ```text
//! θ̇ ∝ n̄ · χ / Δ_cd,   n̄ = |Ω·V_d / 2Δ_cd|²
//! ```
//!
//! A CZ gate completes when `θ̇·t = π/4`. The fidelity model only needs
//! the gate *time* scale; this module exposes the rate and duration so the
//! RIP analysis of the paper (faster gates at larger χ / smaller drive
//! detuning) is reproducible.

use crate::{coupling, Duration, Frequency};

/// Conditional-phase accumulation rate of a RIP gate.
///
/// * `g` — qubit–resonator coupling.
/// * `qubit_resonator_detuning` — Δ = |ω_r − ω_q| (sets χ = g²/Δ).
/// * `drive_detuning` — Δ_cd between drive and resonator.
/// * `photons` — mean drive photon number n̄.
///
/// Returns `None` outside the dispersive regime, where the perturbative
/// rate formula does not apply.
///
/// # Examples
///
/// ```
/// use qplacer_physics::{rip::phase_rate, Frequency};
/// let rate = phase_rate(
///     Frequency::from_mhz(70.0),
///     Frequency::from_ghz(1.5),
///     Frequency::from_mhz(50.0),
///     3.0,
/// ).unwrap();
/// assert!(rate.mhz() > 0.0);
/// ```
#[must_use]
pub fn phase_rate(
    g: Frequency,
    qubit_resonator_detuning: Frequency,
    drive_detuning: Frequency,
    photons: f64,
) -> Option<Frequency> {
    if drive_detuning.ghz() <= 0.0 || photons <= 0.0 {
        return None;
    }
    let chi = coupling::dispersive_shift(g, qubit_resonator_detuning)?;
    Some(Frequency::from_ghz(
        photons * chi.ghz() * chi.ghz() / drive_detuning.ghz(),
    ))
}

/// Duration of a CZ gate at rate `rate`: `t = π / (4·θ̇)` with θ̇ taken as
/// an angular rate (Eq. 1–2).
///
/// # Examples
///
/// ```
/// use qplacer_physics::{rip::cz_gate_time, Frequency};
/// let fast = cz_gate_time(Frequency::from_mhz(2.0));
/// let slow = cz_gate_time(Frequency::from_mhz(0.5));
/// assert!(fast.ns() < slow.ns());
/// ```
///
/// # Panics
///
/// Panics if `rate` is not positive.
#[must_use]
pub fn cz_gate_time(rate: Frequency) -> Duration {
    assert!(rate.ghz() > 0.0, "phase rate must be positive");
    Duration::from_ns(std::f64::consts::PI / (4.0 * rate.rad_per_ns()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_increases_with_photons() {
        let base = |n| {
            phase_rate(
                Frequency::from_mhz(70.0),
                Frequency::from_ghz(1.5),
                Frequency::from_mhz(50.0),
                n,
            )
            .unwrap()
        };
        assert!(base(4.0).ghz() > base(1.0).ghz());
    }

    #[test]
    fn rate_requires_dispersive_regime() {
        // Detuning below 2g: no valid rate.
        assert!(phase_rate(
            Frequency::from_mhz(70.0),
            Frequency::from_mhz(100.0),
            Frequency::from_mhz(50.0),
            3.0
        )
        .is_none());
        assert!(phase_rate(
            Frequency::from_mhz(70.0),
            Frequency::from_ghz(1.5),
            Frequency::ZERO,
            3.0
        )
        .is_none());
    }

    #[test]
    fn cz_time_is_quarter_period() {
        let rate = Frequency::from_mhz(1.0);
        let t = cz_gate_time(rate);
        // θ = 2π·f·t should equal π/4.
        let theta = rate.rad_per_ns() * t.ns();
        assert!((theta - std::f64::consts::PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn realistic_parameters_give_sub_microsecond_gates() {
        let rate = phase_rate(
            Frequency::from_mhz(70.0),
            Frequency::from_ghz(1.2),
            Frequency::from_mhz(40.0),
            5.0,
        )
        .unwrap();
        let t = cz_gate_time(rate);
        assert!(t.ns() > 10.0 && t.ns() < 5000.0, "gate time {t}");
    }
}
