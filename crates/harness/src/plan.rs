//! Declarative experiment plans: what to run, not how to run it.
//!
//! An [`ExperimentPlan`] is a serde-round-trippable list of [`JobSpec`]s,
//! usually built as a device × strategy × benchmark × seed grid via
//! [`ExperimentPlan::grid`]. Plans carry everything needed to reproduce a
//! run — the [`Runner`](crate::Runner) derives all randomness from the
//! specs, never from global state.

use serde::{Deserialize, Serialize};

use qplacer_topology::Topology;

use crate::pipeline::{PipelineConfig, Strategy};
use qplacer_netlist::NetlistConfig;
use qplacer_place::PlacerConfig;

/// A device topology as declarative data (rather than a built
/// [`Topology`]), so plans stay compact and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceSpec {
    /// Regular `width` × `height` lattice.
    Grid {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// IBM Falcon r5.11 heavy-hex (27 qubits).
    Falcon27,
    /// IBM Eagle r1 heavy-hex (127 qubits).
    Eagle127,
    /// Rigetti Aspen octagon lattice.
    Aspen {
        /// Octagon rows.
        rows: usize,
        /// Octagon columns.
        cols: usize,
    },
    /// Pauli-string-efficient X-tree.
    Xtree {
        /// Children of the root.
        root: usize,
        /// Branching factor below the root.
        branch: usize,
        /// Tree depth.
        levels: usize,
    },
}

impl DeviceSpec {
    /// Materializes the topology.
    #[must_use]
    pub fn build(&self) -> Topology {
        match *self {
            DeviceSpec::Grid { width, height } => Topology::grid(width, height),
            DeviceSpec::Falcon27 => Topology::falcon27(),
            DeviceSpec::Eagle127 => Topology::eagle127(),
            DeviceSpec::Aspen { rows, cols } => Topology::aspen(rows, cols),
            DeviceSpec::Xtree {
                root,
                branch,
                levels,
            } => Topology::xtree(root, branch, levels),
        }
    }

    /// The device's display name (matches [`Topology::name`]).
    ///
    /// Computed without materializing the topology, so it stays usable
    /// for labeling records of specs whose construction panics.
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            DeviceSpec::Grid { width, height } => format!("Grid-{width}x{height}"),
            DeviceSpec::Falcon27 => "Falcon".to_string(),
            DeviceSpec::Eagle127 => "Eagle".to_string(),
            DeviceSpec::Aspen { rows: 1, cols: 5 } => "Aspen-11".to_string(),
            DeviceSpec::Aspen { rows: 2, cols: 5 } => "Aspen-M".to_string(),
            DeviceSpec::Aspen { rows, cols } => format!("Octagon-{rows}x{cols}"),
            DeviceSpec::Xtree {
                root,
                branch,
                levels,
            } => {
                // Node count: 1 + root·(1 + b + b² + … + b^{levels-1}).
                let mut nodes = 1usize;
                let mut level_width = root;
                for _ in 0..levels {
                    nodes += level_width;
                    level_width = level_width.saturating_mul(branch);
                }
                format!("Xtree-{nodes}")
            }
        }
    }

    /// The paper's six-device suite (§VI-A), in Table II order.
    #[must_use]
    pub fn paper_suite() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::Grid {
                width: 5,
                height: 5,
            },
            DeviceSpec::Falcon27,
            DeviceSpec::Eagle127,
            DeviceSpec::Aspen { rows: 1, cols: 5 },
            DeviceSpec::Aspen { rows: 2, cols: 5 },
            DeviceSpec::Xtree {
                root: 4,
                branch: 3,
                levels: 3,
            },
        ]
    }

    /// Parses the CLI topology names (`grid`, `falcon`, `eagle`,
    /// `aspen11`, `aspenm`, `xtree`).
    pub fn parse(name: &str) -> Result<DeviceSpec, String> {
        Ok(match name {
            "grid" => DeviceSpec::Grid {
                width: 5,
                height: 5,
            },
            "falcon" => DeviceSpec::Falcon27,
            "eagle" => DeviceSpec::Eagle127,
            "aspen11" => DeviceSpec::Aspen { rows: 1, cols: 5 },
            "aspenm" => DeviceSpec::Aspen { rows: 2, cols: 5 },
            "xtree" => DeviceSpec::Xtree {
                root: 4,
                branch: 3,
                levels: 3,
            },
            other => return Err(format!("unknown topology `{other}`")),
        })
    }
}

/// Pipeline budget profile for a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Profile {
    /// The paper's full iteration budgets.
    #[default]
    Paper,
    /// Reduced budgets for tests, docs, and smoke runs.
    Fast,
}

impl Profile {
    /// The corresponding pipeline configuration.
    #[must_use]
    pub fn pipeline_config(&self) -> PipelineConfig {
        match self {
            Profile::Paper => PipelineConfig::paper(),
            Profile::Fast => PipelineConfig::fast(),
        }
    }
}

/// One unit of work: place a device with a strategy and (optionally)
/// evaluate one benchmark on the placed layout.
///
/// A job is self-contained: two jobs with equal specs produce identical
/// records (modulo wall-time fields) no matter which thread runs them or
/// in which order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The device to lay out.
    pub device: DeviceSpec,
    /// The placement arm.
    pub strategy: Strategy,
    /// Benchmark name from [`qplacer_circuits::paper_suite`] (e.g.
    /// `"bv-4"`), or `None` for a placement-only job.
    pub benchmark: Option<String>,
    /// Random connected subsets to evaluate (ignored without benchmark).
    pub subsets: usize,
    /// Seed for subset sampling; the sole source of randomness.
    pub seed: u64,
    /// Resonator segment size `l_b` override (mm); `None` = paper default.
    pub segment_size_mm: Option<f64>,
}

impl JobSpec {
    /// Resolves the benchmark name against the paper suite.
    pub fn resolve_benchmark(&self) -> Result<Option<qplacer_circuits::Benchmark>, String> {
        match &self.benchmark {
            None => Ok(None),
            Some(name) => qplacer_circuits::paper_suite()
                .into_iter()
                .find(|b| &b.name == name)
                .map(Some)
                .ok_or_else(|| format!("unknown benchmark `{name}`")),
        }
    }

    /// The pipeline configuration this job runs under.
    #[must_use]
    pub fn pipeline_config(&self, profile: Profile) -> PipelineConfig {
        let mut config = profile.pipeline_config();
        if let Some(lb) = self.segment_size_mm {
            config.netlist = NetlistConfig::with_segment_size(lb);
        }
        config
    }
}

/// A named batch of jobs plus shared execution settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPlan {
    /// Plan name, stamped into every record.
    pub name: String,
    /// Pipeline budget profile.
    pub profile: Profile,
    /// The jobs, in deterministic emission order.
    pub jobs: Vec<JobSpec>,
}

impl ExperimentPlan {
    /// An empty plan.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentPlan {
            name: name.into(),
            profile: Profile::Paper,
            jobs: Vec::new(),
        }
    }

    /// Switches the plan to reduced (test/docs) budgets.
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Builds the full device × strategy × benchmark × seed grid, the
    /// Fig. 11/12 evaluation shape.
    ///
    /// Job order is the nesting order of the arguments, so records are
    /// emitted grouped by device, then strategy, then benchmark, then
    /// seed.
    #[must_use]
    pub fn grid(
        name: impl Into<String>,
        devices: &[DeviceSpec],
        strategies: &[Strategy],
        benchmarks: &[&str],
        subsets: usize,
        seeds: &[u64],
    ) -> Self {
        let mut plan = ExperimentPlan::new(name);
        for &device in devices {
            for &strategy in strategies {
                for benchmark in benchmarks {
                    for &seed in seeds {
                        plan.jobs.push(JobSpec {
                            device,
                            strategy,
                            benchmark: Some((*benchmark).to_string()),
                            subsets,
                            seed,
                            segment_size_mm: None,
                        });
                    }
                }
            }
        }
        plan
    }

    /// Builds a placement-only grid (no benchmark evaluation): the
    /// Fig. 13 / Table II shape, optionally sweeping segment sizes.
    #[must_use]
    pub fn placement_grid(
        name: impl Into<String>,
        devices: &[DeviceSpec],
        strategies: &[Strategy],
        segment_sizes: &[Option<f64>],
    ) -> Self {
        let mut plan = ExperimentPlan::new(name);
        for &device in devices {
            for &strategy in strategies {
                for &segment_size_mm in segment_sizes {
                    plan.jobs.push(JobSpec {
                        device,
                        strategy,
                        benchmark: None,
                        subsets: 0,
                        seed: 0,
                        segment_size_mm,
                    });
                }
            }
        }
        plan
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// The placer configuration a profile implies — exposed for callers that
/// bypass the runner but want matching budgets.
#[must_use]
pub fn placer_config(profile: Profile) -> PlacerConfig {
    profile.pipeline_config().placer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_cartesian_size_and_order() {
        let plan = ExperimentPlan::grid(
            "t",
            &DeviceSpec::paper_suite()[..2],
            &[Strategy::FrequencyAware, Strategy::Classic],
            &["bv-4", "qaoa-4", "ising-4"],
            10,
            &[1, 2],
        );
        assert_eq!(plan.len(), 2 * 2 * 3 * 2);
        assert_eq!(plan.jobs[0].device, plan.jobs[1].device);
        assert_eq!(plan.jobs[0].benchmark.as_deref(), Some("bv-4"));
        assert_eq!(plan.jobs[1].seed, 2);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = ExperimentPlan::grid(
            "round-trip",
            &[DeviceSpec::Falcon27],
            &[Strategy::Human],
            &["bv-4"],
            5,
            &[7],
        )
        .with_profile(Profile::Fast);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ExperimentPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn device_specs_match_paper_suite() {
        let specs = DeviceSpec::paper_suite();
        let built = Topology::paper_suite();
        assert_eq!(specs.len(), built.len());
        for (spec, topo) in specs.iter().zip(&built) {
            assert_eq!(spec.name(), topo.name());
            assert_eq!(spec.build().num_qubits(), topo.num_qubits());
        }
    }

    #[test]
    fn unknown_benchmark_is_rejected() {
        let job = JobSpec {
            device: DeviceSpec::Falcon27,
            strategy: Strategy::FrequencyAware,
            benchmark: Some("nope-9".to_string()),
            subsets: 1,
            seed: 0,
            segment_size_mm: None,
        };
        assert!(job.resolve_benchmark().is_err());
    }
}
