//! Declarative experiment plans: what to run, not how to run it.
//!
//! An [`ExperimentPlan`] is a serde-round-trippable list of [`JobSpec`]s,
//! usually built as a device × strategy × benchmark × seed grid via
//! [`ExperimentPlan::grid`]. Plans carry everything needed to reproduce a
//! run — the [`Runner`](crate::Runner) derives all randomness from the
//! specs, never from global state.

use serde::{Deserialize, Serialize};

use qplacer_topology::Topology;

use crate::pipeline::{PipelineConfig, Strategy};
use qplacer_netlist::NetlistConfig;
use qplacer_place::PlacerConfig;

/// A device topology as declarative data (rather than a built
/// [`Topology`]), so plans stay compact and serializable.
///
/// Beyond the paper's fixed devices, the zoo adds parametric families
/// ([`DeviceSpec::HeavyHex`], [`DeviceSpec::Ring`],
/// [`DeviceSpec::Ladder`]), a seeded fabrication-yield wrapper
/// ([`DeviceSpec::Defective`]) around any base spec, and calibration
/// import from a JSON file ([`DeviceSpec::FromJson`]). Use
/// [`DeviceSpec::try_build`] to materialize with typed errors;
/// [`DeviceSpec::build`] panics on invalid specs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceSpec {
    /// Regular `width` × `height` lattice.
    Grid {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// IBM Falcon r5.11 heavy-hex (27 qubits).
    Falcon27,
    /// IBM Eagle r1 heavy-hex (127 qubits).
    Eagle127,
    /// Parametric heavy-hex lattice ([`Topology::heavy_hex`]):
    /// `distance` 5 is the Eagle graph; 10 and 16 reach Osprey-433 and
    /// Condor-1121 scale.
    HeavyHex {
        /// Lattice distance (≥ 2).
        distance: usize,
    },
    /// Cycle of `qubits` qubits ([`Topology::ring`]).
    Ring {
        /// Ring length (≥ 3).
        qubits: usize,
    },
    /// Two rails of `rungs` qubits each ([`Topology::ladder`]).
    Ladder {
        /// Rung count (≥ 2).
        rungs: usize,
    },
    /// Rigetti Aspen octagon lattice.
    Aspen {
        /// Octagon rows.
        rows: usize,
        /// Octagon columns.
        cols: usize,
    },
    /// Pauli-string-efficient X-tree.
    Xtree {
        /// Children of the root.
        root: usize,
        /// Branching factor below the root.
        branch: usize,
        /// Tree depth.
        levels: usize,
    },
    /// `base` after a seeded Bernoulli yield model kills qubits and
    /// couplers, trimmed to the largest connected component
    /// ([`Topology::with_yield`]).
    Defective {
        /// The pristine device.
        base: Box<DeviceSpec>,
        /// Per-component survival probability, percent (clamped 0–100).
        yield_pct: u32,
        /// Defect-sampling seed.
        seed: u64,
    },
    /// A device imported from a JSON calibration file
    /// ([`Topology::from_json_file`]).
    FromJson {
        /// Path to the JSON device description.
        path: String,
    },
}

/// Why a [`DeviceSpec`] could not be materialized into a placeable
/// device. Surfaced as a typed job failure by the harness runner and as
/// an `invalid-device` protocol error by `qplacer-service` — never as a
/// panic into the placement engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A structural parameter is outside the family's domain
    /// (zero-sized grid, ring shorter than 3, heavy-hex distance < 2…).
    BadParameter {
        /// The offending spec's display name.
        device: String,
        /// What was wrong.
        reason: String,
    },
    /// A JSON device file could not be read or parsed.
    BadImport {
        /// The import path.
        path: String,
        /// The underlying error.
        reason: String,
    },
    /// The materialized device is not one connected component — some
    /// qubit is isolated from the rest, so placement (and the spiral
    /// searches inside legalization) cannot meaningfully run.
    Disconnected {
        /// The device's display name.
        device: String,
        /// Total qubits.
        qubits: usize,
        /// Qubits in the largest connected component.
        largest_component: usize,
    },
    /// The device has fewer than two qubits — nothing to couple, place,
    /// or legalize.
    TooSmall {
        /// The device's display name.
        device: String,
        /// Total qubits.
        qubits: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::BadParameter { device, reason } => {
                write!(f, "invalid device `{device}`: {reason}")
            }
            DeviceError::BadImport { path, reason } => {
                write!(f, "invalid device import `{path}`: {reason}")
            }
            DeviceError::Disconnected {
                device,
                qubits,
                largest_component,
            } => write!(
                f,
                "device `{device}` is disconnected: largest component holds \
                 {largest_component} of {qubits} qubits"
            ),
            DeviceError::TooSmall { device, qubits } => {
                write!(f, "device `{device}` has only {qubits} qubit(s)")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

impl DeviceSpec {
    /// Materializes the topology, panicking on invalid specs.
    ///
    /// Prefer [`DeviceSpec::try_build`] anywhere a bad spec can come
    /// from user input (plans, CLI, wire requests).
    ///
    /// # Panics
    ///
    /// Panics whenever [`DeviceSpec::try_build`] would return an error.
    #[must_use]
    pub fn build(&self) -> Topology {
        match self.try_build() {
            Ok(topology) => topology,
            Err(e) => panic!("{e}"),
        }
    }

    /// Materializes the topology, validating that the result is a
    /// placeable device: structural parameters in-domain, at least two
    /// qubits, and one connected component.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] describing the first violation found.
    pub fn try_build(&self) -> Result<Topology, DeviceError> {
        let bad = |reason: &str| DeviceError::BadParameter {
            device: self.name(),
            reason: reason.to_string(),
        };
        let topology = match self {
            DeviceSpec::Grid { width, height } => {
                if *width == 0 || *height == 0 {
                    return Err(bad("grid dims must be positive"));
                }
                Topology::grid(*width, *height)
            }
            DeviceSpec::Falcon27 => Topology::falcon27(),
            DeviceSpec::Eagle127 => Topology::eagle127(),
            DeviceSpec::HeavyHex { distance } => {
                if *distance < 2 {
                    return Err(bad("heavy-hex distance must be at least 2"));
                }
                Topology::heavy_hex(*distance)
            }
            DeviceSpec::Ring { qubits } => {
                if *qubits < 3 {
                    return Err(bad("a ring needs at least 3 qubits"));
                }
                Topology::ring(*qubits)
            }
            DeviceSpec::Ladder { rungs } => {
                if *rungs < 2 {
                    return Err(bad("a ladder needs at least 2 rungs"));
                }
                Topology::ladder(*rungs)
            }
            DeviceSpec::Aspen { rows, cols } => {
                if *rows == 0 || *cols == 0 {
                    return Err(bad("octagon lattice dims must be positive"));
                }
                Topology::aspen(*rows, *cols)
            }
            DeviceSpec::Xtree {
                root,
                branch,
                levels,
            } => {
                if *root == 0 {
                    return Err(bad("root branch factor must be positive"));
                }
                if *levels == 0 || (*levels > 1 && *branch == 0) {
                    return Err(bad("xtree needs at least one level of children"));
                }
                Topology::xtree(*root, *branch, *levels)
            }
            DeviceSpec::Defective {
                base,
                yield_pct,
                seed,
            } => base.try_build()?.with_yield(*yield_pct, *seed),
            DeviceSpec::FromJson { path } => {
                Topology::from_json_file(path).map_err(|e| DeviceError::BadImport {
                    path: path.clone(),
                    reason: e.to_string(),
                })?
            }
        };
        Self::validate_topology(&topology)?;
        Ok(topology)
    }

    /// The placeability gate [`DeviceSpec::try_build`] applies after
    /// construction: at least two qubits, one connected component.
    /// Exposed so callers that materialized the topology themselves
    /// (e.g. service admission parsing a JSON import it already read)
    /// can apply the identical checks without building twice.
    ///
    /// # Errors
    ///
    /// [`DeviceError::TooSmall`] or [`DeviceError::Disconnected`].
    pub fn validate_topology(topology: &Topology) -> Result<(), DeviceError> {
        if topology.num_qubits() < 2 {
            return Err(DeviceError::TooSmall {
                device: topology.name().to_string(),
                qubits: topology.num_qubits(),
            });
        }
        if !topology.is_connected() {
            let largest = topology.largest_connected_component().num_qubits();
            return Err(DeviceError::Disconnected {
                device: topology.name().to_string(),
                qubits: topology.num_qubits(),
                largest_component: largest,
            });
        }
        Ok(())
    }

    /// The device's display name (matches [`Topology::name`]).
    ///
    /// Computed without materializing the topology (and without I/O for
    /// [`DeviceSpec::FromJson`]), so it stays usable for labeling
    /// records of specs that fail to build.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            DeviceSpec::Grid { width, height } => format!("Grid-{width}x{height}"),
            DeviceSpec::Falcon27 => "Falcon".to_string(),
            DeviceSpec::Eagle127 => "Eagle".to_string(),
            DeviceSpec::HeavyHex { distance } => format!("HeavyHex-d{distance}"),
            DeviceSpec::Ring { qubits } => format!("Ring-{qubits}"),
            DeviceSpec::Ladder { rungs } => format!("Ladder-{rungs}"),
            DeviceSpec::Aspen { rows: 1, cols: 5 } => "Aspen-11".to_string(),
            DeviceSpec::Aspen { rows: 2, cols: 5 } => "Aspen-M".to_string(),
            DeviceSpec::Aspen { rows, cols } => format!("Octagon-{rows}x{cols}"),
            DeviceSpec::Xtree {
                root,
                branch,
                levels,
            } => {
                // Node count: 1 + root·(1 + b + b² + … + b^{levels-1}).
                let mut nodes = 1usize;
                let mut level_width = *root;
                for _ in 0..*levels {
                    nodes += level_width;
                    level_width = level_width.saturating_mul(*branch);
                }
                format!("Xtree-{nodes}")
            }
            DeviceSpec::Defective {
                base,
                yield_pct,
                seed,
            } => format!("{}-y{}-s{}", base.name(), (*yield_pct).min(100), seed),
            DeviceSpec::FromJson { path } => {
                let stem = std::path::Path::new(path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(path.as_str());
                format!("Json-{stem}")
            }
        }
    }

    /// The paper's six-device suite (§VI-A), in Table II order.
    #[must_use]
    pub fn paper_suite() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::Grid {
                width: 5,
                height: 5,
            },
            DeviceSpec::Falcon27,
            DeviceSpec::Eagle127,
            DeviceSpec::Aspen { rows: 1, cols: 5 },
            DeviceSpec::Aspen { rows: 2, cols: 5 },
            DeviceSpec::Xtree {
                root: 4,
                branch: 3,
                levels: 3,
            },
        ]
    }

    /// Parses the CLI device spellings:
    ///
    /// - paper devices: `grid`, `falcon`, `eagle`, `aspen11`, `aspenm`,
    ///   `xtree`;
    /// - parametric zoo: `grid-WxH`, `heavy-hex-dN` (also `heavyhex-dN`),
    ///   `ring-N`, `ladder-N`;
    /// - defect wrapper: `defective-<base>[-yP][-sS]` (yield percent `P`
    ///   defaults to 90, seed `S` to 0; e.g. `defective-eagle`,
    ///   `defective-heavy-hex-d7-y85-s3`);
    /// - JSON import: any spelling ending in `.json`, or `json:<path>`.
    pub fn parse(name: &str) -> Result<DeviceSpec, String> {
        if let Some(path) = name.strip_prefix("json:") {
            return Ok(DeviceSpec::FromJson {
                path: path.to_string(),
            });
        }
        if name.ends_with(".json") {
            return Ok(DeviceSpec::FromJson {
                path: name.to_string(),
            });
        }
        if let Some(rest) = name.strip_prefix("defective-") {
            return Self::parse_defective(rest);
        }
        Ok(match name {
            "grid" => DeviceSpec::Grid {
                width: 5,
                height: 5,
            },
            "falcon" => DeviceSpec::Falcon27,
            "eagle" => DeviceSpec::Eagle127,
            "aspen11" => DeviceSpec::Aspen { rows: 1, cols: 5 },
            "aspenm" => DeviceSpec::Aspen { rows: 2, cols: 5 },
            "xtree" => DeviceSpec::Xtree {
                root: 4,
                branch: 3,
                levels: 3,
            },
            other => return Self::parse_parametric(other),
        })
    }

    /// Parses the `heavy-hex-dN` / `ring-N` / `ladder-N` / `grid-WxH`
    /// spellings.
    fn parse_parametric(name: &str) -> Result<DeviceSpec, String> {
        let unknown = || format!("unknown topology `{name}`");
        let parse_n = |s: &str| s.parse::<usize>().map_err(|_| unknown());
        if let Some(d) = name
            .strip_prefix("heavy-hex-d")
            .or_else(|| name.strip_prefix("heavyhex-d"))
        {
            return Ok(DeviceSpec::HeavyHex {
                distance: parse_n(d)?,
            });
        }
        if let Some(n) = name.strip_prefix("ring-") {
            return Ok(DeviceSpec::Ring {
                qubits: parse_n(n)?,
            });
        }
        if let Some(n) = name.strip_prefix("ladder-") {
            return Ok(DeviceSpec::Ladder { rungs: parse_n(n)? });
        }
        if let Some(dims) = name.strip_prefix("grid-") {
            let (w, h) = dims.split_once('x').ok_or_else(unknown)?;
            return Ok(DeviceSpec::Grid {
                width: parse_n(w)?,
                height: parse_n(h)?,
            });
        }
        Err(unknown())
    }

    /// Parses a device spelling that may expand to several specs: the
    /// seed-range defect wrapper `defective-<base>[-yP]-s<A>..<B>`
    /// yields one [`DeviceSpec::Defective`] per seed in the inclusive
    /// range `A..B` (e.g. `defective-eagle-y90-s0..4` is five devices);
    /// every other spelling parses to a single [`DeviceSpec::parse`]
    /// spec.
    ///
    /// # Errors
    ///
    /// Everything [`DeviceSpec::parse`] rejects, plus empty (`B < A`)
    /// and oversized (more than 10 000 seeds) ranges.
    pub fn parse_multi(name: &str) -> Result<Vec<DeviceSpec>, String> {
        if let Some(rest) = name.strip_prefix("defective-") {
            if let Some((prefix, range)) = rest.rsplit_once("-s") {
                if let Some((lo, hi)) = range.split_once("..") {
                    if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                        if hi < lo {
                            return Err(format!("empty seed range `{lo}..{hi}` in `{name}`"));
                        }
                        if hi - lo >= 10_000 {
                            return Err(format!(
                                "seed range `{lo}..{hi}` in `{name}` expands to more \
                                 than 10000 devices"
                            ));
                        }
                        return (lo..=hi)
                            .map(|seed| Self::parse(&format!("defective-{prefix}-s{seed}")))
                            .collect();
                    }
                }
            }
        }
        Self::parse(name).map(|spec| vec![spec])
    }

    /// Parses the defect wrapper: `<base>[-yP][-sS]` where the optional
    /// suffixes (in that order) override yield percent and seed.
    fn parse_defective(rest: &str) -> Result<DeviceSpec, String> {
        let mut base = rest;
        let mut yield_pct = 90u32;
        let mut seed = 0u64;
        if let Some((prefix, s)) = base.rsplit_once("-s") {
            if let Ok(v) = s.parse::<u64>() {
                seed = v;
                base = prefix;
            }
        }
        if let Some((prefix, y)) = base.rsplit_once("-y") {
            if let Ok(v) = y.parse::<u32>() {
                yield_pct = v;
                base = prefix;
            }
        }
        let base = Self::parse(base)
            .map_err(|e| format!("bad defective base in `defective-{rest}`: {e}"))?;
        Ok(DeviceSpec::Defective {
            base: Box::new(base),
            yield_pct,
            seed,
        })
    }
}

/// Pipeline budget profile for a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Profile {
    /// The paper's full iteration budgets.
    #[default]
    Paper,
    /// Reduced budgets for tests, docs, and smoke runs.
    Fast,
}

impl Profile {
    /// The corresponding pipeline configuration.
    #[must_use]
    pub fn pipeline_config(&self) -> PipelineConfig {
        match self {
            Profile::Paper => PipelineConfig::paper(),
            Profile::Fast => PipelineConfig::fast(),
        }
    }
}

/// One unit of work: place a device with a strategy and (optionally)
/// evaluate one benchmark on the placed layout.
///
/// A job is self-contained: two jobs with equal specs produce identical
/// records (modulo wall-time fields) no matter which thread runs them or
/// in which order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The device to lay out.
    pub device: DeviceSpec,
    /// The placement arm.
    pub strategy: Strategy,
    /// Workload name resolvable by
    /// [`qplacer_circuits::benchmark_by_name`] (e.g. `"bv-4"`,
    /// `"ghz-20"`, `"qv-8"`), or `None` for a placement-only job.
    pub benchmark: Option<String>,
    /// Random connected subsets to evaluate (ignored without benchmark).
    pub subsets: usize,
    /// Seed for subset sampling; the sole source of randomness.
    pub seed: u64,
    /// Resonator segment size `l_b` override (mm); `None` = paper default.
    pub segment_size_mm: Option<f64>,
    /// Multilevel V-cycle depth override (see
    /// [`PlacerConfig::levels`](qplacer_place::PlacerConfig::levels));
    /// `None` = the profile's default (flat placement).
    pub levels: Option<usize>,
}

impl JobSpec {
    /// Resolves the benchmark name: the paper suite's fixed circuits
    /// plus every parametric `<family>-<qubits>` workload
    /// [`qplacer_circuits::benchmark_by_name`] understands (`bv-N`,
    /// `qaoa-N`, `ising-N`, `qgan-N`, `ghz-N`, `qv-N`).
    pub fn resolve_benchmark(&self) -> Result<Option<qplacer_circuits::Benchmark>, String> {
        match &self.benchmark {
            None => Ok(None),
            Some(name) => qplacer_circuits::benchmark_by_name(name)
                .map(Some)
                .ok_or_else(|| format!("unknown benchmark `{name}`")),
        }
    }

    /// The pipeline configuration this job runs under.
    #[must_use]
    pub fn pipeline_config(&self, profile: Profile) -> PipelineConfig {
        let mut config = profile.pipeline_config();
        if let Some(lb) = self.segment_size_mm {
            config.netlist = NetlistConfig::with_segment_size(lb);
        }
        if let Some(levels) = self.levels {
            config.placer.levels = levels.max(1);
        }
        config
    }
}

/// A named batch of jobs plus shared execution settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPlan {
    /// Plan name, stamped into every record.
    pub name: String,
    /// Pipeline budget profile.
    pub profile: Profile,
    /// The jobs, in deterministic emission order.
    pub jobs: Vec<JobSpec>,
}

impl ExperimentPlan {
    /// An empty plan.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentPlan {
            name: name.into(),
            profile: Profile::Paper,
            jobs: Vec::new(),
        }
    }

    /// Switches the plan to reduced (test/docs) budgets.
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the multilevel V-cycle depth on every job in the plan
    /// (see [`PlacerConfig::levels`](qplacer_place::PlacerConfig::levels)).
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> Self {
        for job in &mut self.jobs {
            job.levels = Some(levels);
        }
        self
    }

    /// Builds the full device × strategy × benchmark × seed grid, the
    /// Fig. 11/12 evaluation shape.
    ///
    /// Job order is the nesting order of the arguments, so records are
    /// emitted grouped by device, then strategy, then benchmark, then
    /// seed.
    #[must_use]
    pub fn grid(
        name: impl Into<String>,
        devices: &[DeviceSpec],
        strategies: &[Strategy],
        benchmarks: &[&str],
        subsets: usize,
        seeds: &[u64],
    ) -> Self {
        let mut plan = ExperimentPlan::new(name);
        for device in devices {
            for &strategy in strategies {
                for benchmark in benchmarks {
                    for &seed in seeds {
                        plan.jobs.push(JobSpec {
                            device: device.clone(),
                            strategy,
                            benchmark: Some((*benchmark).to_string()),
                            subsets,
                            seed,
                            segment_size_mm: None,
                            levels: None,
                        });
                    }
                }
            }
        }
        plan
    }

    /// Builds a placement-only grid (no benchmark evaluation): the
    /// Fig. 13 / Table II shape, optionally sweeping segment sizes.
    #[must_use]
    pub fn placement_grid(
        name: impl Into<String>,
        devices: &[DeviceSpec],
        strategies: &[Strategy],
        segment_sizes: &[Option<f64>],
    ) -> Self {
        let mut plan = ExperimentPlan::new(name);
        for device in devices {
            for &strategy in strategies {
                for &segment_size_mm in segment_sizes {
                    plan.jobs.push(JobSpec {
                        device: device.clone(),
                        strategy,
                        benchmark: None,
                        subsets: 0,
                        seed: 0,
                        segment_size_mm,
                        levels: None,
                    });
                }
            }
        }
        plan
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// The placer configuration a profile implies — exposed for callers that
/// bypass the runner but want matching budgets.
#[must_use]
pub fn placer_config(profile: Profile) -> PlacerConfig {
    profile.pipeline_config().placer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_cartesian_size_and_order() {
        let plan = ExperimentPlan::grid(
            "t",
            &DeviceSpec::paper_suite()[..2],
            &[Strategy::FrequencyAware, Strategy::Classic],
            &["bv-4", "qaoa-4", "ising-4"],
            10,
            &[1, 2],
        );
        assert_eq!(plan.len(), 2 * 2 * 3 * 2);
        assert_eq!(plan.jobs[0].device, plan.jobs[1].device);
        assert_eq!(plan.jobs[0].benchmark.as_deref(), Some("bv-4"));
        assert_eq!(plan.jobs[1].seed, 2);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = ExperimentPlan::grid(
            "round-trip",
            &[DeviceSpec::Falcon27],
            &[Strategy::Human],
            &["bv-4"],
            5,
            &[7],
        )
        .with_profile(Profile::Fast);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ExperimentPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn device_specs_match_paper_suite() {
        let specs = DeviceSpec::paper_suite();
        let built = Topology::paper_suite();
        assert_eq!(specs.len(), built.len());
        for (spec, topo) in specs.iter().zip(&built) {
            assert_eq!(spec.name(), topo.name());
            assert_eq!(spec.build().num_qubits(), topo.num_qubits());
        }
    }

    #[test]
    fn unknown_benchmark_is_rejected() {
        let job = JobSpec {
            device: DeviceSpec::Falcon27,
            strategy: Strategy::FrequencyAware,
            benchmark: Some("nope-9".to_string()),
            subsets: 1,
            seed: 0,
            segment_size_mm: None,
            levels: None,
        };
        assert!(job.resolve_benchmark().is_err());
        // Parametric zoo workloads resolve at any size.
        let mut ghz = job.clone();
        ghz.benchmark = Some("ghz-20".to_string());
        let resolved = ghz.resolve_benchmark().unwrap().unwrap();
        assert_eq!(resolved.circuit.num_qubits(), 20);
    }

    #[test]
    fn zoo_spellings_parse_and_build() {
        for (spelling, name, qubits) in [
            ("heavy-hex-d3", "HeavyHex-d3", 52),
            ("heavyhex-d5", "HeavyHex-d5", 127),
            ("ring-12", "Ring-12", 12),
            ("ladder-6", "Ladder-6", 12),
            ("grid-4x3", "Grid-4x3", 12),
        ] {
            let spec = DeviceSpec::parse(spelling).unwrap();
            assert_eq!(spec.name(), name, "{spelling}");
            let topology = spec.try_build().unwrap();
            assert_eq!(topology.num_qubits(), qubits, "{spelling}");
            assert_eq!(topology.name(), name, "{spelling}");
        }
        assert!(DeviceSpec::parse("heavy-hex-dx").is_err());
        assert!(DeviceSpec::parse("ring-").is_err());
        assert!(DeviceSpec::parse("mystery").is_err());
    }

    #[test]
    fn defective_spellings_parse_with_defaults_and_overrides() {
        let spec = DeviceSpec::parse("defective-eagle").unwrap();
        assert_eq!(
            spec,
            DeviceSpec::Defective {
                base: Box::new(DeviceSpec::Eagle127),
                yield_pct: 90,
                seed: 0,
            }
        );
        assert_eq!(spec.name(), "Eagle-y90-s0");
        let built = spec.try_build().unwrap();
        assert!(built.is_connected());
        assert!(built.num_qubits() < 127);

        let custom = DeviceSpec::parse("defective-heavy-hex-d3-y85-s7").unwrap();
        assert_eq!(
            custom,
            DeviceSpec::Defective {
                base: Box::new(DeviceSpec::HeavyHex { distance: 3 }),
                yield_pct: 85,
                seed: 7,
            }
        );
        assert!(DeviceSpec::parse("defective-nothing").is_err());
    }

    #[test]
    fn seed_range_spelling_expands_to_one_spec_per_seed() {
        let specs = DeviceSpec::parse_multi("defective-eagle-y85-s2..5").unwrap();
        assert_eq!(specs.len(), 4);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(
                *spec,
                DeviceSpec::Defective {
                    base: Box::new(DeviceSpec::Eagle127),
                    yield_pct: 85,
                    seed: 2 + i as u64,
                }
            );
        }
        // Without a -y suffix the default yield applies to every seed.
        let specs = DeviceSpec::parse_multi("defective-falcon-s0..0").unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name(), "Falcon-y90-s0");

        // Non-range spellings pass through parse() unchanged.
        assert_eq!(
            DeviceSpec::parse_multi("defective-eagle-s3").unwrap(),
            vec![DeviceSpec::parse("defective-eagle-s3").unwrap()]
        );
        assert_eq!(
            DeviceSpec::parse_multi("grid-4x4").unwrap(),
            vec![DeviceSpec::parse("grid-4x4").unwrap()]
        );

        // Empty and oversized ranges are rejected, as are bad bases.
        assert!(DeviceSpec::parse_multi("defective-eagle-s5..2").is_err());
        assert!(DeviceSpec::parse_multi("defective-eagle-s0..99999").is_err());
        assert!(DeviceSpec::parse_multi("defective-nothing-s0..2").is_err());
        assert!(DeviceSpec::parse_multi("mystery").is_err());
    }

    #[test]
    fn json_spellings_parse_and_round_trip_through_files() {
        let spec = DeviceSpec::parse("json:/tmp/dev.json").unwrap();
        assert_eq!(
            spec,
            DeviceSpec::FromJson {
                path: "/tmp/dev.json".to_string()
            }
        );
        assert_eq!(spec.name(), "Json-dev");
        assert_eq!(
            DeviceSpec::parse("devices/eagle.json").unwrap(),
            DeviceSpec::FromJson {
                path: "devices/eagle.json".to_string()
            }
        );

        // A real export → import → build loop.
        let dir = std::env::temp_dir().join("qplacer-plan-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("falcon.json");
        std::fs::write(&path, Topology::falcon27().to_json()).unwrap();
        let spec = DeviceSpec::FromJson {
            path: path.to_string_lossy().into_owned(),
        };
        let built = spec.try_build().unwrap();
        assert_eq!(built.num_qubits(), 27);
        assert_eq!(built, Topology::falcon27());
    }

    #[test]
    fn try_build_returns_typed_errors() {
        use crate::plan::DeviceError;
        assert!(matches!(
            DeviceSpec::Grid {
                width: 0,
                height: 3
            }
            .try_build(),
            Err(DeviceError::BadParameter { .. })
        ));
        assert!(matches!(
            DeviceSpec::FromJson {
                path: "/nonexistent/dev.json".to_string()
            }
            .try_build(),
            Err(DeviceError::BadImport { .. })
        ));
        // Total yield loss leaves fewer than 2 qubits.
        assert!(matches!(
            DeviceSpec::Defective {
                base: Box::new(DeviceSpec::Falcon27),
                yield_pct: 0,
                seed: 3,
            }
            .try_build(),
            Err(DeviceError::TooSmall { .. })
        ));

        // A JSON device with an isolated qubit is rejected as
        // disconnected — with the component size in the message.
        let dir = std::env::temp_dir().join("qplacer-plan-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disconnected.json");
        std::fs::write(
            &path,
            r#"{"name": "islanded", "qubits": 4, "couplers": [[0, 1], [1, 2]]}"#,
        )
        .unwrap();
        let spec = DeviceSpec::FromJson {
            path: path.to_string_lossy().into_owned(),
        };
        match spec.try_build() {
            Err(DeviceError::Disconnected {
                qubits,
                largest_component,
                ..
            }) => {
                assert_eq!((qubits, largest_component), (4, 3));
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
        let message = spec.try_build().unwrap_err().to_string();
        assert!(message.contains("disconnected"), "{message}");
    }
}
