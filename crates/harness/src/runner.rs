//! The parallel experiment runner: fans [`JobSpec`]s across a thread
//! pool with deterministic per-job seeding and panic isolation.

use std::panic::AssertUnwindSafe;
use std::time::Instant;

use qplacer_obs::{JsonlTraceSink, NullTraceSink, RingTraceSink, TraceSink};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::pipeline::Qplacer;
use crate::plan::{ExperimentPlan, JobSpec};
use crate::sink::Sink;
use crate::summary::{ArmSummary, Summary};

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// The job ran to completion.
    Ok,
    /// The job spec could not be executed (e.g. unknown benchmark).
    Failed {
        /// Why.
        error: String,
    },
    /// The pipeline panicked; the panic was contained to this job.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl JobStatus {
    /// Whether the job completed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }
}

/// One job's structured outcome — the stable record schema every sink
/// receives.
///
/// All fields are deterministic functions of the [`JobSpec`] except the
/// `wall_*` fields, which carry wall-clock timings. Consumers comparing
/// records across runs should ignore the `wall_` prefix (the harness
/// determinism tests do exactly that).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Plan name.
    pub plan: String,
    /// Index of the job within the plan.
    pub job_index: usize,
    /// Device display name.
    pub device: String,
    /// Strategy display name (`Qplacer` / `Classic` / `Human`).
    pub strategy: String,
    /// Benchmark name, or `None` for placement-only jobs.
    pub benchmark: Option<String>,
    /// Subset-sampling seed.
    pub seed: u64,
    /// Segment-size override, if any.
    pub segment_size_mm: Option<f64>,
    /// Terminal status.
    pub status: JobStatus,
    /// Movable instances in the netlist (qubits + segments).
    pub instances: usize,
    /// Global-placement iterations (0 for the Human arm).
    pub place_iterations: usize,
    /// Final half-perimeter wirelength (mm).
    pub hpwl_mm: f64,
    /// Minimum-enclosing-rectangle area (mm²), Eq. 17.
    pub mer_area_mm2: f64,
    /// Area utilization in the MER.
    pub utilization: f64,
    /// Hotspot proportion P_h, Eq. 18.
    pub ph: f64,
    /// Qubits inside at least one violating pair.
    pub impacted_qubits: usize,
    /// Resonant-pair violations in the final layout.
    pub violations: usize,
    /// Subsets requested for evaluation.
    pub subsets_requested: usize,
    /// Subsets that produced a fidelity sample.
    pub subsets_evaluated: usize,
    /// Subsets skipped because the circuit exceeds the device.
    pub subsets_skipped_too_large: usize,
    /// Subsets skipped because routing failed.
    pub subsets_skipped_unroutable: usize,
    /// Mean fidelity over evaluated subsets.
    pub mean_fidelity: f64,
    /// Worst fidelity over evaluated subsets.
    pub min_fidelity: f64,
    /// Mean crosstalk-contributing violations per subset.
    pub mean_active_violations: f64,
    /// Total job wall time (ms). Non-deterministic.
    pub wall_ms: f64,
    /// Placement-stage wall time (ms). Non-deterministic.
    pub wall_place_ms: f64,
    /// Global-placement iterations per second of placement wall time
    /// (0 for the Human arm). Non-deterministic.
    pub wall_place_iters_per_sec: f64,
    /// Legalization-stage wall time (ms; 0 for the Human arm).
    /// Non-deterministic.
    pub wall_legalize_ms: f64,
    /// Frequency-assignment wall time (ms). Non-deterministic.
    pub wall_assign_ms: f64,
}

impl JobRecord {
    fn blank(plan: &str, job_index: usize, spec: &JobSpec) -> JobRecord {
        JobRecord {
            plan: plan.to_string(),
            job_index,
            device: spec.device.name(),
            strategy: spec.strategy.to_string(),
            benchmark: spec.benchmark.clone(),
            seed: spec.seed,
            segment_size_mm: spec.segment_size_mm,
            status: JobStatus::Ok,
            instances: 0,
            place_iterations: 0,
            hpwl_mm: 0.0,
            mer_area_mm2: 0.0,
            utilization: 0.0,
            ph: 0.0,
            impacted_qubits: 0,
            violations: 0,
            subsets_requested: 0,
            subsets_evaluated: 0,
            subsets_skipped_too_large: 0,
            subsets_skipped_unroutable: 0,
            mean_fidelity: 0.0,
            min_fidelity: 0.0,
            mean_active_violations: 0.0,
            wall_ms: 0.0,
            wall_place_ms: 0.0,
            wall_place_iters_per_sec: 0.0,
            wall_legalize_ms: 0.0,
            wall_assign_ms: 0.0,
        }
    }

    /// The CSV column names, in emission order.
    #[must_use]
    pub fn csv_header() -> &'static str {
        "plan,job_index,device,strategy,benchmark,seed,segment_size_mm,status,\
         instances,place_iterations,hpwl_mm,mer_area_mm2,utilization,ph,\
         impacted_qubits,violations,subsets_requested,subsets_evaluated,\
         subsets_skipped_too_large,subsets_skipped_unroutable,mean_fidelity,\
         min_fidelity,mean_active_violations,wall_ms,wall_place_ms,\
         wall_place_iters_per_sec,wall_legalize_ms,wall_assign_ms"
    }

    /// One CSV row matching [`JobRecord::csv_header`].
    #[must_use]
    pub fn csv_row(&self) -> String {
        let status = match &self.status {
            JobStatus::Ok => "ok".to_string(),
            JobStatus::Failed { error } => format!("failed: {error}"),
            JobStatus::Panicked { message } => format!("panicked: {message}"),
        };
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_escape(&self.plan),
            self.job_index,
            csv_escape(&self.device),
            csv_escape(&self.strategy),
            self.benchmark
                .as_deref()
                .map(csv_escape)
                .unwrap_or_default(),
            self.seed,
            self.segment_size_mm
                .map(|v| format!("{v:?}"))
                .unwrap_or_default(),
            csv_escape(&status),
            self.instances,
            self.place_iterations,
            self.hpwl_mm,
            self.mer_area_mm2,
            self.utilization,
            self.ph,
            self.impacted_qubits,
            self.violations,
            self.subsets_requested,
            self.subsets_evaluated,
            self.subsets_skipped_too_large,
            self.subsets_skipped_unroutable,
            self.mean_fidelity,
            self.min_fidelity,
            self.mean_active_violations,
            self.wall_ms,
            self.wall_place_ms,
            self.wall_place_iters_per_sec,
            self.wall_legalize_ms,
            self.wall_assign_ms,
        )
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Everything a completed run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Plan name.
    pub plan: String,
    /// Thread count the runner used.
    pub threads: usize,
    /// Total wall time of the run (ms).
    pub wall_ms: f64,
    /// Per-job records, in plan order.
    pub records: Vec<JobRecord>,
}

impl RunReport {
    /// Jobs that did not complete.
    #[must_use]
    pub fn failures(&self) -> Vec<&JobRecord> {
        self.records.iter().filter(|r| !r.status.is_ok()).collect()
    }

    /// Aggregates the records per (device, strategy, benchmark) arm.
    #[must_use]
    pub fn summaries(&self) -> Vec<ArmSummary> {
        Summary::from_records(&self.records)
    }
}

/// Fans an [`ExperimentPlan`]'s jobs across a thread pool.
///
/// Guarantees:
///
/// - **Determinism** — all randomness derives from each job's
///   [`JobSpec::seed`]; records (minus `wall_*` fields) are identical for
///   any thread count and any scheduling order. Sinks always receive
///   records in plan order.
/// - **Panic isolation** — a panicking job yields a
///   [`JobStatus::Panicked`] record; sibling jobs are unaffected.
/// - **Depth-1 nesting** — per-subset parallelism inside
///   [`qplacer_metrics::evaluate_benchmark`] shares the same pool, so
///   job- and subset-level fan-out never oversubscribe the machine.
#[derive(Debug)]
pub struct Runner {
    pool: rayon::ThreadPool,
    threads: usize,
}

impl Runner {
    /// A runner over `threads` workers (`0` = one per available core).
    ///
    /// # Panics
    ///
    /// Panics if the thread pool cannot be built (never happens with the
    /// vendored rayon stand-in).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("building thread pool");
        let threads = pool.current_num_threads();
        Runner { pool, threads }
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the plan, returning records in plan order. Zero-options
    /// convenience for [`Runner::execute`] — equivalent to
    /// `execute(plan, RunOptions::default())`, which performs no I/O
    /// and therefore cannot fail.
    #[must_use]
    pub fn run(&self, plan: &ExperimentPlan) -> RunReport {
        self.execute(plan, RunOptions::default())
            .expect("a run with no sinks and no trace file performs no I/O")
            .report
    }

    /// Runs the plan with the given [`RunOptions`] — the single entry
    /// point that replaced the `run_with_sinks` / `run_with_trace` /
    /// `run_with_events` method family; sinks, convergence-trace
    /// capture, and timeline-event capture compose freely.
    ///
    /// Records land in plan order no matter the scheduling; sink and
    /// trace-file writing happens after the whole run, so file output
    /// is deterministic in everything but the timing values themselves
    /// (the trade-off: a run killed midway leaves file sinks empty —
    /// split very long sweeps into chunked plans for incremental
    /// persistence).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from sinks and the trace file; a run with
    /// neither cannot fail.
    pub fn execute(
        &self,
        plan: &ExperimentPlan,
        opts: RunOptions<'_>,
    ) -> std::io::Result<RunOutcome> {
        let RunOptions {
            mut sinks,
            trace_path,
            capture_events,
        } = opts;

        // Event capture brackets the run: gates on, buffers cleared,
        // previous state restored afterwards. The gate and buffers are
        // process-global — concurrent runs interleave into the same
        // timeline, distinguishable by trace id.
        let saved_gates = capture_events.then(|| {
            let prev = (qplacer_obs::spans_enabled(), qplacer_obs::event_mode());
            qplacer_obs::set_spans_enabled(true);
            qplacer_obs::set_event_mode(qplacer_obs::EventMode::Capture);
            qplacer_obs::clear_events();
            prev
        });

        let start = Instant::now();
        let mut rings: Option<Vec<RingTraceSink>> = None;
        let records: Vec<JobRecord> = if trace_path.is_some() {
            let results: Vec<(JobRecord, RingTraceSink)> = self.pool.install(|| {
                (0..plan.jobs.len())
                    .into_par_iter()
                    .map(|index| {
                        let _scope = capture_events
                            .then(|| qplacer_obs::adopt_trace_id(qplacer_obs::fresh_trace_id()));
                        execute_job_ringed(plan, index)
                    })
                    .collect()
            });
            let (records, ring_vec): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            rings = Some(ring_vec);
            records
        } else {
            self.pool.install(|| {
                (0..plan.jobs.len())
                    .into_par_iter()
                    .map(|index| {
                        let _scope = capture_events
                            .then(|| qplacer_obs::adopt_trace_id(qplacer_obs::fresh_trace_id()));
                        execute_job(plan, index)
                    })
                    .collect()
            })
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        let events = saved_gates.map(|(prev_spans, prev_mode)| {
            let snapshot = qplacer_obs::event_snapshot();
            qplacer_obs::set_event_mode(prev_mode);
            qplacer_obs::set_spans_enabled(prev_spans);
            snapshot
        });

        // Convergence-trace sidecar: per-job rings flushed in plan
        // order, each line labelled `"<plan>/<job index>"`.
        if let (Some(path), Some(rings)) = (trace_path.as_ref(), rings) {
            let mut trace = JsonlTraceSink::create(path)?;
            for (index, ring) in rings.into_iter().enumerate() {
                trace.set_label(Some(format!("{}/{}", plan.name, index)));
                for trace_record in ring.records() {
                    trace.record(&trace_record);
                }
            }
            trace.finish()?;
        }

        let report = RunReport {
            plan: plan.name.clone(),
            threads: self.threads,
            wall_ms,
            records,
        };
        for sink in sinks.iter_mut() {
            sink.begin(plan)?;
            for record in &report.records {
                sink.record(record)?;
            }
            sink.finish()?;
        }
        Ok(RunOutcome { report, events })
    }

    /// Run feeding record sinks.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    #[deprecated(note = "use `execute` with `RunOptions { sinks, .. }`")]
    pub fn run_with_sinks(
        &self,
        plan: &ExperimentPlan,
        sinks: &mut [&mut dyn Sink],
    ) -> std::io::Result<RunReport> {
        let report = self.run(plan);
        for sink in sinks.iter_mut() {
            sink.begin(plan)?;
            for record in &report.records {
                sink.record(record)?;
            }
            sink.finish()?;
        }
        Ok(report)
    }

    /// Run with a JSONL convergence-trace sidecar.
    ///
    /// # Errors
    ///
    /// Propagates trace-file I/O errors.
    #[deprecated(note = "use `execute` with `RunOptions { trace_path, .. }`")]
    pub fn run_with_trace(
        &self,
        plan: &ExperimentPlan,
        trace_path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<RunReport> {
        self.execute(
            plan,
            RunOptions {
                trace_path: Some(trace_path.as_ref().to_path_buf()),
                ..Default::default()
            },
        )
        .map(|outcome| outcome.report)
    }

    /// Run capturing the full event timeline.
    #[deprecated(note = "use `execute` with `RunOptions { capture_events: true, .. }`")]
    #[must_use]
    pub fn run_with_events(
        &self,
        plan: &ExperimentPlan,
    ) -> (RunReport, qplacer_obs::EventSnapshot) {
        let outcome = self
            .execute(
                plan,
                RunOptions {
                    capture_events: true,
                    ..Default::default()
                },
            )
            .expect("event capture performs no I/O");
        let events = outcome
            .events
            .expect("capture_events was set, so a snapshot exists");
        (outcome.report, events)
    }
}

/// Options for [`Runner::execute`] — the single entry point that
/// replaced the `run_with_sinks` / `run_with_trace` / `run_with_events`
/// method family. `Default` is a bare run (no sinks, no trace file, no
/// event capture); the capabilities compose freely.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Record consumers, each fed every record in plan order bracketed
    /// by [`Sink::begin`] / [`Sink::finish`] after the run completes.
    pub sinks: Vec<&'a mut dyn Sink>,
    /// Streams convergence telemetry (placer iterations, legalization /
    /// frequency phases) into a JSONL trace file at this path — the
    /// sidecar meant to sit next to a JSONL result sink. Each job
    /// records into its own pre-sized in-memory ring while jobs run in
    /// parallel; the file is written after the whole run in plan order.
    pub trace_path: Option<std::path::PathBuf>,
    /// Captures the full event timeline of the run: spans and event
    /// capture are enabled for the duration (and restored afterwards),
    /// the capture buffers are cleared, and every job executes under
    /// its own fresh trace id so per-job events stay separable. The
    /// snapshot lands in [`RunOutcome::events`] and feeds the exporters
    /// directly ([`qplacer_obs::chrome_trace_json`],
    /// [`qplacer_obs::folded_stacks`]). Records are bit-identical
    /// either way — event recording never touches the pipeline's
    /// arithmetic.
    pub capture_events: bool,
}

/// What [`Runner::execute`] produced.
pub struct RunOutcome {
    /// Per-job records and run-level aggregates.
    pub report: RunReport,
    /// The captured event timeline when
    /// [`RunOptions::capture_events`] was set, `None` otherwise.
    pub events: Option<qplacer_obs::EventSnapshot>,
}

/// Ring capacity per traced job: comfortably above the paper profile's
/// placement iteration budget plus the fixed per-phase records.
const TRACE_RING_CAPACITY: usize = 4096;

/// [`execute_job`]'s traced twin: same thread-local workspace reuse,
/// with telemetry captured into a per-job ring.
fn execute_job_ringed(plan: &ExperimentPlan, index: usize) -> (JobRecord, RingTraceSink) {
    std::thread_local! {
        static WORKSPACE: std::cell::RefCell<crate::pipeline::PipelineWorkspace> =
            std::cell::RefCell::new(crate::pipeline::PipelineWorkspace::new());
    }
    let mut ring = RingTraceSink::with_capacity(TRACE_RING_CAPACITY);
    let record =
        WORKSPACE.with(|ws| execute_job_traced(plan, index, &mut ws.borrow_mut(), &mut ring).0);
    (record, ring)
}

/// Executes one job, containing panics to its record.
///
/// Uses one thread-local workspace per worker thread, reused across
/// every job that worker executes — the sweep-scale buffer reuse
/// `PipelineWorkspace` exists for. Each stage resets its buffers on
/// entry, so reuse after a panicked sibling job is safe.
fn execute_job(plan: &ExperimentPlan, index: usize) -> JobRecord {
    std::thread_local! {
        static WORKSPACE: std::cell::RefCell<crate::pipeline::PipelineWorkspace> =
            std::cell::RefCell::new(crate::pipeline::PipelineWorkspace::new());
    }
    WORKSPACE.with(|ws| execute_job_with(plan, index, &mut ws.borrow_mut()).0)
}

/// Renders a caught panic payload as the human-readable message
/// `panic!` produced, falling back to a marker for non-string payloads.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Executes one job of `plan` with a caller-owned workspace, containing
/// panics to the record, and returns the
/// [`PlacedLayout`](crate::PlacedLayout) alongside the record when the
/// job completed.
///
/// This is the single-job entry point long-lived callers (e.g. a serving
/// worker holding a persistent
/// [`PipelineWorkspace`](crate::PipelineWorkspace)) use to run plan
/// jobs without going through [`Runner`]'s thread pool; [`Runner::run`]
/// funnels through it too, so both paths share one implementation.
#[must_use]
pub fn execute_job_with(
    plan: &ExperimentPlan,
    index: usize,
    ws: &mut crate::pipeline::PipelineWorkspace,
) -> (JobRecord, Option<crate::pipeline::PlacedLayout>) {
    execute_job_traced(plan, index, ws, &mut NullTraceSink)
}

/// Like [`execute_job_with`], but streams the job's convergence
/// telemetry into `sink` (see
/// [`Qplacer::execute`](crate::Qplacer::execute)). The record and
/// layout are bit-identical to the untraced path.
#[must_use]
pub fn execute_job_traced(
    plan: &ExperimentPlan,
    index: usize,
    ws: &mut crate::pipeline::PipelineWorkspace,
    sink: &mut dyn TraceSink,
) -> (JobRecord, Option<crate::pipeline::PlacedLayout>) {
    let spec = &plan.jobs[index];
    let mut record = JobRecord::blank(&plan.name, index, spec);
    let start = Instant::now();
    let outcome =
        std::panic::catch_unwind(AssertUnwindSafe(|| run_pipeline_job(plan, index, ws, sink)));
    record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut layout = None;
    match outcome {
        Ok(Ok(filled)) => {
            let wall_ms = record.wall_ms;
            let (filled_record, placed) = *filled;
            record = filled_record;
            record.wall_ms = wall_ms;
            layout = Some(placed);
        }
        Ok(Err(error)) => record.status = JobStatus::Failed { error },
        Err(payload) => {
            record.status = JobStatus::Panicked {
                message: panic_message(payload),
            };
        }
    }
    (record, layout)
}

/// The happy path of one job: place, measure, optionally evaluate.
#[allow(clippy::type_complexity)]
fn run_pipeline_job(
    plan: &ExperimentPlan,
    index: usize,
    ws: &mut crate::pipeline::PipelineWorkspace,
    sink: &mut dyn TraceSink,
) -> Result<Box<(JobRecord, crate::pipeline::PlacedLayout)>, String> {
    let spec = &plan.jobs[index];
    let mut record = JobRecord::blank(&plan.name, index, spec);
    let benchmark = spec.resolve_benchmark()?;
    // Plan-validation: an unbuildable or unplaceable device (bad
    // parameters, unreadable import, isolated qubits) is a typed job
    // failure, never a panic into the placement engine.
    let device = spec.device.try_build().map_err(|e| e.to_string())?;
    let config = spec.pipeline_config(plan.profile);
    let layout = Qplacer::new(config).execute(
        &device,
        spec.strategy,
        crate::pipeline::ExecOptions {
            workspace: Some(ws),
            sink: Some(sink),
            trace_id: None,
        },
    );

    record.instances = layout.netlist.num_instances();
    record.wall_assign_ms = layout.timings.assign_ms;
    record.wall_legalize_ms = layout.timings.legalize_ms;
    if let Some(placement) = &layout.placement {
        record.place_iterations = placement.iterations;
        record.hpwl_mm = placement.hpwl;
        record.wall_place_ms = placement.elapsed_seconds * 1e3;
        record.wall_place_iters_per_sec = if placement.elapsed_seconds > 0.0 {
            placement.iterations as f64 / placement.elapsed_seconds
        } else {
            0.0
        };
    }
    let area = layout.area();
    record.mer_area_mm2 = area.mer_area;
    record.utilization = area.utilization;
    let hotspots = layout.hotspots();
    record.ph = hotspots.ph;
    record.impacted_qubits = hotspots.impacted_qubits.len();
    record.violations = hotspots.violations.len();

    if let Some(benchmark) = benchmark {
        let eval = layout.evaluate(&device, &benchmark.circuit, spec.subsets, spec.seed);
        record.subsets_requested = eval.requested_subsets;
        record.subsets_evaluated = eval.fidelities.len();
        record.subsets_skipped_too_large = eval.skipped_too_large;
        record.subsets_skipped_unroutable = eval.skipped_unroutable;
        record.mean_fidelity = eval.mean_fidelity;
        record.min_fidelity = eval.min_fidelity;
        record.mean_active_violations = eval.mean_active_violations;
    }

    Ok(Box::new((record, layout)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use crate::plan::{DeviceSpec, Profile};

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::grid(
            "tiny",
            &[DeviceSpec::Grid {
                width: 3,
                height: 3,
            }],
            &[Strategy::FrequencyAware, Strategy::Human],
            &["bv-4"],
            2,
            &[5],
        )
        .with_profile(Profile::Fast)
    }

    #[test]
    fn runner_preserves_plan_order_and_fills_records() {
        let report = Runner::new(2).run(&tiny_plan());
        assert_eq!(report.records.len(), 2);
        for (i, record) in report.records.iter().enumerate() {
            assert_eq!(record.job_index, i);
            assert!(record.status.is_ok(), "{:?}", record.status);
            assert!(record.instances > 0);
            assert!(record.mer_area_mm2 > 0.0);
            assert_eq!(record.subsets_requested, 2);
        }
        assert_eq!(report.records[0].strategy, "Qplacer");
        assert_eq!(report.records[1].strategy, "Human");
        assert!(report.failures().is_empty());
    }

    #[test]
    fn unknown_benchmark_fails_only_that_job() {
        let mut plan = tiny_plan();
        plan.jobs[0].benchmark = Some("not-a-benchmark".to_string());
        let report = Runner::new(2).run(&plan);
        assert!(matches!(report.records[0].status, JobStatus::Failed { .. }));
        assert!(report.records[1].status.is_ok());
        assert_eq!(report.failures().len(), 1);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let mut plan = tiny_plan();
        // A negative segment size panics inside the netlist config
        // (device validation happens earlier and is a typed failure,
        // so it cannot serve as the panic source here).
        plan.jobs[0].segment_size_mm = Some(-1.0);
        let report = Runner::new(2).run(&plan);
        match &report.records[0].status {
            JobStatus::Panicked { message } => assert!(!message.is_empty()),
            other => panic!("expected panic status, got {other:?}"),
        }
        assert!(report.records[1].status.is_ok());
    }

    #[test]
    fn invalid_devices_fail_typed_not_panicked() {
        // Every flavor of unplaceable device must surface as a typed
        // `Failed` record — plan-validation runs before the engine.
        let bad_devices = [
            DeviceSpec::Grid {
                width: 0,
                height: 0,
            },
            DeviceSpec::HeavyHex { distance: 1 },
            DeviceSpec::Ring { qubits: 2 },
            DeviceSpec::FromJson {
                path: "/nonexistent/calibration.json".to_string(),
            },
            // Yield 0 kills every qubit: the surviving component is
            // empty, which must be rejected, not spiraled over.
            DeviceSpec::Defective {
                base: Box::new(DeviceSpec::Falcon27),
                yield_pct: 0,
                seed: 1,
            },
        ];
        for device in bad_devices {
            let mut plan = tiny_plan();
            plan.jobs[0].device = device.clone();
            let report = Runner::new(1).run(&plan);
            match &report.records[0].status {
                JobStatus::Failed { error } => {
                    assert!(!error.is_empty(), "{device:?}")
                }
                other => panic!("{device:?}: expected Failed, got {other:?}"),
            }
        }
    }

    #[test]
    fn execute_job_with_returns_layout_and_matches_runner() {
        let plan = tiny_plan();
        let mut ws = crate::pipeline::PipelineWorkspace::new();
        let (record, layout) = execute_job_with(&plan, 0, &mut ws);
        assert!(record.status.is_ok());
        let layout = layout.expect("completed job returns its layout");
        assert_eq!(layout.netlist.num_instances(), record.instances);
        // Same spec through the pooled runner yields the same
        // deterministic fields.
        let report = Runner::new(2).run(&plan);
        assert_eq!(report.records[0].hpwl_mm, record.hpwl_mm);
        assert_eq!(report.records[0].mean_fidelity, record.mean_fidelity);

        // A failing spec yields no layout and keeps the message.
        let mut bad = tiny_plan();
        bad.jobs[0].benchmark = Some("missing".to_string());
        let (record, layout) = execute_job_with(&bad, 0, &mut ws);
        assert!(layout.is_none());
        assert!(matches!(record.status, JobStatus::Failed { .. }));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let report = Runner::new(1).run(&tiny_plan());
        let columns = JobRecord::csv_header().split(',').count();
        for record in &report.records {
            assert_eq!(record.csv_row().split(',').count(), columns);
        }
    }
}
