//! Aggregation of [`JobRecord`]s into per-arm summaries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::runner::{JobRecord, JobStatus};

/// Aggregated statistics for one (device, strategy, benchmark) arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmSummary {
    /// Device display name.
    pub device: String,
    /// Strategy display name.
    pub strategy: String,
    /// Benchmark name (`None` for placement-only arms).
    pub benchmark: Option<String>,
    /// Completed jobs aggregated here.
    pub jobs: usize,
    /// Jobs that failed or panicked (excluded from the statistics).
    pub failed_jobs: usize,
    /// Mean of the per-job mean fidelities.
    pub mean_fidelity: f64,
    /// Worst per-job minimum fidelity.
    pub min_fidelity: f64,
    /// Mean hotspot proportion P_h.
    pub mean_ph: f64,
    /// Mean impacted qubits.
    pub mean_impacted_qubits: f64,
    /// Mean MER area (mm²).
    pub mean_area_mm2: f64,
    /// Subsets skipped across all jobs (too large + unroutable).
    pub skipped_subsets: usize,
    /// Total wall time spent in this arm's jobs (ms).
    pub total_wall_ms: f64,
}

/// Groups records into [`ArmSummary`] rows.
pub struct Summary;

impl Summary {
    /// Aggregates `records` per (device, strategy, benchmark), in
    /// first-appearance order.
    #[must_use]
    pub fn from_records(records: &[JobRecord]) -> Vec<ArmSummary> {
        let mut order: Vec<(String, String, Option<String>)> = Vec::new();
        let mut groups: BTreeMap<(String, String, Option<String>), Vec<&JobRecord>> =
            BTreeMap::new();
        for record in records {
            let key = (
                record.device.clone(),
                record.strategy.clone(),
                record.benchmark.clone(),
            );
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(record);
        }

        order
            .into_iter()
            .map(|key| {
                let group = &groups[&key];
                let (device, strategy, benchmark) = key;
                let ok: Vec<&&JobRecord> = group.iter().filter(|r| r.status.is_ok()).collect();
                let n = ok.len().max(1) as f64;
                let evaluated: Vec<&&&JobRecord> =
                    ok.iter().filter(|r| r.subsets_evaluated > 0).collect();
                let n_eval = evaluated.len().max(1) as f64;
                ArmSummary {
                    device,
                    strategy,
                    benchmark,
                    jobs: ok.len(),
                    failed_jobs: group.len() - ok.len(),
                    mean_fidelity: evaluated.iter().map(|r| r.mean_fidelity).sum::<f64>() / n_eval,
                    min_fidelity: evaluated
                        .iter()
                        .map(|r| r.min_fidelity)
                        .fold(f64::INFINITY, f64::min)
                        .pipe_finite(),
                    mean_ph: ok.iter().map(|r| r.ph).sum::<f64>() / n,
                    mean_impacted_qubits: ok.iter().map(|r| r.impacted_qubits as f64).sum::<f64>()
                        / n,
                    mean_area_mm2: ok.iter().map(|r| r.mer_area_mm2).sum::<f64>() / n,
                    skipped_subsets: ok
                        .iter()
                        .map(|r| r.subsets_skipped_too_large + r.subsets_skipped_unroutable)
                        .sum(),
                    total_wall_ms: group.iter().map(|r| r.wall_ms).sum(),
                }
            })
            .collect()
    }

    /// One human-readable line per failed or panicked record, carrying
    /// the underlying error / panic-payload message so batch drivers
    /// (CLI, CI, the serving layer) can report *why* a job died instead
    /// of a bare count.
    #[must_use]
    pub fn failures(records: &[JobRecord]) -> Vec<String> {
        records
            .iter()
            .filter_map(|r| {
                let what = match &r.status {
                    JobStatus::Ok => return None,
                    JobStatus::Failed { error } => format!("failed: {error}"),
                    JobStatus::Panicked { message } => format!("panicked: {message}"),
                };
                let bench = r.benchmark.as_deref().unwrap_or("-");
                Some(format!(
                    "job {} {}/{}/{} seed {}: {what}",
                    r.job_index, r.device, r.strategy, bench, r.seed
                ))
            })
            .collect()
    }

    /// Renders summaries as an aligned text table.
    #[must_use]
    pub fn table(summaries: &[ArmSummary]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>9} {:>8} | {:>12} {:>12} | {:>8} {:>10} {:>8} | {:>10}\n",
            "device",
            "strategy",
            "bench",
            "meanFid",
            "minFid",
            "Ph%",
            "area mm2",
            "skipped",
            "wall ms"
        ));
        for s in summaries {
            out.push_str(&format!(
                "{:<10} {:>9} {:>8} | {:>12.4e} {:>12.4e} | {:>8.2} {:>10.1} {:>8} | {:>10.1}\n",
                s.device,
                s.strategy,
                s.benchmark.as_deref().unwrap_or("-"),
                s.mean_fidelity,
                s.min_fidelity,
                s.mean_ph * 100.0,
                s.mean_area_mm2,
                s.skipped_subsets,
                s.total_wall_ms,
            ));
        }
        out
    }
}

/// Maps `INFINITY` (no evaluated jobs) to 0 for display-friendly output.
trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use crate::plan::{DeviceSpec, ExperimentPlan, Profile};
    use crate::runner::Runner;

    #[test]
    fn summaries_group_per_arm() {
        let plan = ExperimentPlan::grid(
            "sum",
            &[DeviceSpec::Grid {
                width: 3,
                height: 3,
            }],
            &[Strategy::FrequencyAware, Strategy::Classic],
            &["bv-4"],
            2,
            &[1, 2],
        )
        .with_profile(Profile::Fast);
        let report = Runner::new(2).run(&plan);
        let summaries = report.summaries();
        assert_eq!(summaries.len(), 2, "one arm per strategy");
        for s in &summaries {
            assert_eq!(s.jobs, 2, "two seeds per arm");
            assert_eq!(s.failed_jobs, 0);
            assert!(s.mean_fidelity > 0.0);
            assert!(s.min_fidelity <= s.mean_fidelity);
        }
        let table = Summary::table(&summaries);
        assert_eq!(table.lines().count(), summaries.len() + 1);
    }

    #[test]
    fn failures_carry_the_underlying_message() {
        let mut plan = ExperimentPlan::grid(
            "fail",
            &[DeviceSpec::Grid {
                width: 3,
                height: 3,
            }],
            &[Strategy::Human],
            &["bv-4"],
            1,
            &[1, 2],
        )
        .with_profile(Profile::Fast);
        plan.jobs[1].benchmark = Some("no-such-bench".to_string());
        let report = Runner::new(1).run(&plan);
        let lines = Summary::failures(&report.records);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("unknown benchmark `no-such-bench`"),
            "failure line lost the message: {}",
            lines[0]
        );
        assert!(lines[0].starts_with("job 1 "));
    }
}
