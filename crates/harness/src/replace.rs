//! Incremental (ECO-style) re-placement: warm-start the whole pipeline
//! from a cached [`PlacedLayout`] over a [`TopologyDelta`].
//!
//! The flow mirrors a cold [`Qplacer::execute`] run stage for stage,
//! but every stage consumes the previous result:
//!
//! 1. **Frequencies** — clean qubits/resonators keep their previous
//!    frequencies bit-for-bit; only the delta's conflict neighborhood
//!    recolors, preferring each vertex's previous frequency when it is
//!    still admissible
//!    ([`FrequencyAssigner::assign_incremental_with`]).
//! 2. **Netlist** — built for the target device, then re-seeded: every
//!    surviving instance starts at its previous legalized position, and
//!    the placement region is widened back to the previous run's region
//!    when the target device shrank (so pinned instances stay in
//!    bounds).
//! 3. **Global placement** — instances whose structure *and* frequency
//!    are untouched are pinned: they contribute to the density and
//!    frequency fields but never move
//!    ([`qplacer_place::ExecOptions::pinned`], always the
//!    flat engine with a reduced iteration floor).
//! 4. **Legalization** — pinned instances are pre-marked into the
//!    occupancy bitmap and resonance tracker; only unpinned instances
//!    are legalized around them
//!    ([`qplacer_legal::Legalizer::run_incremental_traced`]).
//!
//! Contract: an **empty delta reproduces the cold result exactly** — no
//! instance is unpinned, so placement and legalization are skipped and
//! the previous reports are carried forward, making the derived
//! `PlacementResult` byte-identical at any thread count.
//!
//! [`FrequencyAssigner::assign_incremental_with`]: qplacer_freq::FrequencyAssigner::assign_incremental_with

use std::time::Instant;

use serde::{Deserialize, Serialize};

use qplacer_netlist::QuantumNetlist;
use qplacer_obs::{NullTraceSink, TraceSink};
use qplacer_place::GlobalPlacer;
use qplacer_topology::{Topology, TopologyDelta, TopologyError};

use crate::pipeline::{
    ExecOptions, PipelineWorkspace, PlacedLayout, Qplacer, StageTimings, Strategy,
};

/// Iteration floor for warm global placement: the seed is an
/// already-legal layout, so the overflow stop may fire almost
/// immediately instead of waiting out the cold-start floor.
const WARM_MIN_ITERATIONS: usize = 5;

/// What an incremental re-placement did, alongside the new layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplaceReport {
    /// Instances in the target netlist.
    pub total_instances: usize,
    /// Target qubits inside the delta's conflict neighborhood
    /// (recolor candidates).
    pub dirty_qubits: usize,
    /// Instances pinned during placement and legalization.
    pub pinned_instances: usize,
    /// Instances whose final position differs from their warm seed
    /// (new instances count as moved).
    pub moved_instances: usize,
    /// `true` when nothing was unpinned and the previous placement and
    /// legalization reports were carried forward unchanged (the
    /// empty-delta fast path).
    pub carried_reports: bool,
}

impl Qplacer {
    /// Re-places `base` after `delta`, warm-starting every stage from
    /// `prev` (a layout of `base` produced by this pipeline). The
    /// incremental counterpart of [`Qplacer::execute`], taking the same
    /// [`ExecOptions`]; see the [module docs](crate::replace) for the
    /// stage-by-stage contract.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when `delta` does not apply to `base`.
    pub fn execute_replace(
        &self,
        base: &Topology,
        prev: &PlacedLayout,
        delta: &TopologyDelta,
        opts: ExecOptions<'_>,
    ) -> Result<(PlacedLayout, ReplaceReport), TopologyError> {
        let ExecOptions {
            workspace,
            sink,
            trace_id,
        } = opts;
        let _trace = trace_id.map(qplacer_obs::adopt_trace_id);
        let mut scratch;
        let ws = match workspace {
            Some(ws) => ws,
            None => {
                scratch = PipelineWorkspace::new();
                &mut scratch
            }
        };
        let mut null = NullTraceSink;
        self.replace_core(base, prev, delta, ws, sink.unwrap_or(&mut null))
    }

    /// Untraced incremental run with an internal workspace.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when `delta` does not apply to `base`.
    #[deprecated(note = "use `execute_replace` with `ExecOptions::default()`")]
    pub fn replace(
        &self,
        base: &Topology,
        prev: &PlacedLayout,
        delta: &TopologyDelta,
    ) -> Result<(PlacedLayout, ReplaceReport), TopologyError> {
        self.execute_replace(base, prev, delta, ExecOptions::default())
    }

    /// Untraced incremental run reusing a caller-owned workspace.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when `delta` does not apply to `base`.
    #[deprecated(note = "use `execute_replace` with `ExecOptions { workspace, .. }`")]
    pub fn replace_with(
        &self,
        base: &Topology,
        prev: &PlacedLayout,
        delta: &TopologyDelta,
        ws: &mut PipelineWorkspace,
    ) -> Result<(PlacedLayout, ReplaceReport), TopologyError> {
        self.execute_replace(
            base,
            prev,
            delta,
            ExecOptions {
                workspace: Some(ws),
                ..Default::default()
            },
        )
    }

    /// Incremental run with a convergence-telemetry sink.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when `delta` does not apply to `base`.
    #[deprecated(note = "use `execute_replace` with `ExecOptions { workspace, sink, .. }`")]
    pub fn replace_traced(
        &self,
        base: &Topology,
        prev: &PlacedLayout,
        delta: &TopologyDelta,
        ws: &mut PipelineWorkspace,
        sink: &mut dyn TraceSink,
    ) -> Result<(PlacedLayout, ReplaceReport), TopologyError> {
        self.execute_replace(
            base,
            prev,
            delta,
            ExecOptions {
                workspace: Some(ws),
                sink: Some(sink),
                trace_id: None,
            },
        )
    }

    fn replace_core(
        &self,
        base: &Topology,
        prev: &PlacedLayout,
        delta: &TopologyDelta,
        ws: &mut PipelineWorkspace,
        sink: &mut dyn TraceSink,
    ) -> Result<(PlacedLayout, ReplaceReport), TopologyError> {
        let target = delta.apply(base)?;
        let _span = qplacer_obs::span!("replace", qubits = target.num_qubits() as u64);

        // The Human arm is a deterministic closed-form construction —
        // re-running it *is* the incremental path.
        if prev.strategy == Strategy::Human {
            let layout = self.place_core(&target, Strategy::Human, ws, sink);
            let total = layout.netlist.num_instances();
            let report = ReplaceReport {
                total_instances: total,
                dirty_qubits: target.num_qubits(),
                pinned_instances: 0,
                moved_instances: total,
                carried_reports: false,
            };
            return Ok((layout, report));
        }

        let mut timings = StageTimings::default();
        let qubit_map = delta.qubit_map();
        let edge_map = delta.edge_map(base, &target);

        // Stage 1: incremental frequencies. Dirty = the delta's
        // conflict neighborhood at the assigner's own radius.
        let start = Instant::now();
        let dirty = delta.dirty_qubits(base, &target, self.config().assigner.conflict_radius());
        let assignment = self.config().assigner.assign_incremental_with(
            &target,
            &prev.assignment,
            &qubit_map,
            &edge_map,
            &dirty,
            &mut ws.freq,
        );
        timings.assign_ms = start.elapsed().as_secs_f64() * 1e3;

        // Stage 2: target netlist on the previous region (when larger),
        // seeded with the previous legalized positions.
        let mut netlist = QuantumNetlist::build(&target, &assignment, &self.config().netlist);
        let prev_region = prev.netlist.region();
        if prev_region.width() > netlist.region().width()
            || prev_region.height() > netlist.region().height()
        {
            netlist.set_region(prev_region);
        }

        // Pin rule: an instance is pinned when its previous position is
        // still exactly right — it survived, sits outside the structural
        // edit (radius-0 seeds), and kept its frequency (hence its
        // footprint). Everything else re-places from its warm seed.
        let seeds = delta.dirty_qubits(base, &target, 0);
        let mut pinned = vec![false; netlist.num_instances()];
        for (q, &mapped) in qubit_map.iter().enumerate() {
            if let Some(bq) = mapped {
                let inst = netlist.qubit_instance(q);
                let prev_inst = prev.netlist.qubit_instance(bq);
                netlist.set_position(inst, prev.netlist.position(prev_inst));
                pinned[inst] = !seeds[q] && assignment.qubit(q) == prev.assignment.qubit(bq);
            }
        }
        for (e, &mapped) in edge_map.iter().enumerate() {
            if let Some(be) = mapped {
                let segs = netlist.resonator_segments(e).to_vec();
                let prev_segs = prev.netlist.resonator_segments(be).to_vec();
                for (&s, &ps) in segs.iter().zip(prev_segs.iter()) {
                    netlist.set_position(s, prev.netlist.position(ps));
                }
                // Same frequency ⇒ same length ⇒ same segment count;
                // the count check guards the pairing above regardless.
                if assignment.resonator(e) == prev.assignment.resonator(be)
                    && segs.len() == prev_segs.len()
                {
                    for &s in &segs {
                        pinned[s] = true;
                    }
                }
            }
        }

        let dirty_qubits = dirty.iter().filter(|&&d| d).count();
        let pinned_instances = pinned.iter().filter(|&&p| p).count();
        let seeded = netlist.positions().to_vec();

        // Empty (or rename-only) delta: every instance is pinned, so
        // placement and legalization would be no-ops — carry the
        // previous reports forward for byte-identical results.
        if pinned_instances == netlist.num_instances() {
            let layout = PlacedLayout {
                strategy: prev.strategy,
                netlist,
                assignment,
                placement: prev.placement.clone(),
                legalization: prev.legalization.clone(),
                timings,
                fidelity: self.config().fidelity,
            };
            let report = ReplaceReport {
                total_instances: layout.netlist.num_instances(),
                dirty_qubits,
                pinned_instances,
                moved_instances: 0,
                carried_reports: true,
            };
            return Ok((layout, report));
        }

        // Stage 3: warm global placement — always the flat engine (a
        // V-cycle would discard the seed), with a reduced iteration
        // floor so the overflow stop can fire early.
        let mut placer_cfg = self.config().placer;
        placer_cfg.frequency_aware = prev.strategy == Strategy::FrequencyAware;
        placer_cfg.levels = 1;
        placer_cfg.min_iterations = placer_cfg.min_iterations.min(WARM_MIN_ITERATIONS);
        let placement = GlobalPlacer::new(placer_cfg).execute(
            &mut netlist,
            qplacer_place::ExecOptions {
                workspace: Some(&mut ws.placer),
                sink: Some(sink),
                pinned: Some(&pinned),
            },
        );
        timings.place_ms = placement.elapsed_seconds * 1e3;

        // Stage 4: incremental legalization around the pinned cells.
        let mut legalizer_cfg = self.config().legalizer;
        if prev.strategy == Strategy::Classic {
            legalizer_cfg = legalizer_cfg.with_resonant_margin(0.0);
        }
        let start = Instant::now();
        let legalization =
            legalizer_cfg.run_incremental_traced(&mut netlist, &mut ws.legal, &pinned, sink);
        timings.legalize_ms = start.elapsed().as_secs_f64() * 1e3;

        let moved_instances = (0..netlist.num_instances())
            .filter(|&i| netlist.position(i) != seeded[i])
            .count();
        let layout = PlacedLayout {
            strategy: prev.strategy,
            netlist,
            assignment,
            placement: Some(placement),
            legalization: Some(legalization),
            timings,
            fidelity: self.config().fidelity,
        };
        let report = ReplaceReport {
            total_instances: layout.netlist.num_instances(),
            dirty_qubits,
            pinned_instances,
            moved_instances,
            carried_reports: false,
        };
        Ok((layout, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delta_reproduces_the_cold_layout_exactly() {
        let base = Topology::grid(3, 3);
        let engine = Qplacer::fast();
        let cold = engine.execute(&base, Strategy::FrequencyAware, Default::default());
        let delta = TopologyDelta::identity(&base);
        let (warm, report) = engine
            .execute_replace(&base, &cold, &delta, Default::default())
            .unwrap();

        assert!(report.carried_reports);
        assert_eq!(report.moved_instances, 0);
        assert_eq!(report.pinned_instances, report.total_instances);
        assert_eq!(warm.netlist.positions(), cold.netlist.positions());
        assert_eq!(warm.netlist.region(), cold.netlist.region());
        assert_eq!(
            warm.placement.as_ref().unwrap().iterations,
            cold.placement.as_ref().unwrap().iterations
        );
        assert_eq!(
            warm.legalization.as_ref().unwrap().remaining_overlaps,
            cold.legalization.as_ref().unwrap().remaining_overlaps
        );
        for q in 0..base.num_qubits() {
            assert_eq!(warm.assignment.qubit(q), cold.assignment.qubit(q));
        }
    }

    #[test]
    fn dropped_coupler_replace_is_legal_and_local() {
        let base = Topology::grid(4, 4);
        let engine = Qplacer::fast();
        let cold = engine.execute(&base, Strategy::FrequencyAware, Default::default());
        let (a, b) = base.edges()[base.num_edges() / 2];
        let delta = TopologyDelta::drop_couplers(&base, &[(a, b)]).unwrap();
        let (warm, report) = engine
            .execute_replace(&base, &cold, &delta, Default::default())
            .unwrap();

        assert!(!report.carried_reports);
        assert_eq!(warm.netlist.num_resonators(), base.num_edges() - 1);
        assert!(warm.netlist.overlapping_pairs().is_empty());
        assert_eq!(warm.legalization.as_ref().unwrap().remaining_overlaps, 0);
        // Locality: the edit must not ripple across the whole chip.
        assert!(
            report.moved_instances < base.num_qubits(),
            "moved {} of {} instances for a single coupler drop",
            report.moved_instances,
            report.total_instances
        );
        assert!(report.pinned_instances > report.total_instances / 2);
    }

    #[test]
    fn dropped_qubit_replace_stays_legal() {
        let base = Topology::grid(4, 4);
        let engine = Qplacer::fast();
        let cold = engine.execute(&base, Strategy::FrequencyAware, Default::default());
        let delta = TopologyDelta::drop_qubits(&base, &[5]).unwrap();
        let (warm, report) = engine
            .execute_replace(&base, &cold, &delta, Default::default())
            .unwrap();

        assert_eq!(warm.netlist.num_qubits(), base.num_qubits() - 1);
        assert!(warm.netlist.overlapping_pairs().is_empty());
        assert!(report.pinned_instances > 0);
        // The shrunken device keeps the previous (larger) region so the
        // pinned survivors stay in bounds.
        assert_eq!(warm.netlist.region(), cold.netlist.region());
    }

    #[test]
    fn defective_device_replace_matches_cold_topology() {
        let base = Topology::falcon27();
        let engine = Qplacer::fast();
        let cold = engine.execute(&base, Strategy::FrequencyAware, Default::default());
        let delta = base.yield_delta(90, 7);
        let target = delta.apply(&base).unwrap();
        assert_eq!(target, base.with_yield(90, 7));
        let (warm, report) = engine
            .execute_replace(&base, &cold, &delta, Default::default())
            .unwrap();
        assert_eq!(warm.netlist.num_qubits(), target.num_qubits());
        assert!(warm.netlist.overlapping_pairs().is_empty());
        assert!(report.pinned_instances > 0, "yield edit pinned nothing");
    }

    #[test]
    fn human_strategy_replaces_by_reconstruction() {
        let base = Topology::grid(3, 3);
        let engine = Qplacer::fast();
        let cold = engine.execute(&base, Strategy::Human, Default::default());
        let (a, b) = base.edges()[0];
        let delta = TopologyDelta::drop_couplers(&base, &[(a, b)]).unwrap();
        let (warm, report) = engine
            .execute_replace(&base, &cold, &delta, Default::default())
            .unwrap();
        assert_eq!(warm.strategy, Strategy::Human);
        assert!(warm.placement.is_none());
        assert_eq!(report.pinned_instances, 0);
    }
}
