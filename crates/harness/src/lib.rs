//! # qplacer-harness — parallel experiment orchestration
//!
//! Every figure and table in the QPlacer evaluation (§VI) is a sweep
//! over the same four axes: **device × strategy × benchmark × seed**.
//! This crate owns that sweep so no binary ever hand-rolls a serial
//! loop again:
//!
//! - [`ExperimentPlan`] / [`JobSpec`] — a declarative, serde
//!   round-trippable description of the grid ([`ExperimentPlan::grid`],
//!   [`ExperimentPlan::placement_grid`]).
//! - [`Runner`] — fans jobs across a rayon thread pool with
//!   deterministic per-job seeding and per-job panic isolation; the
//!   per-subset loop in [`qplacer_metrics::evaluate_benchmark`] shares
//!   the same pool (depth-1 nesting, no oversubscription).
//! - [`Sink`]s — pluggable record consumers ([`MemorySink`],
//!   [`JsonlSink`], [`CsvSink`]) with a stable [`JobRecord`] schema,
//!   always fed in plan order.
//! - [`Summary`] — per-arm aggregation (mean/min fidelity, P_h, area,
//!   wall time).
//!
//! The end-to-end placement pipeline itself ([`Qplacer`], [`Strategy`],
//! [`PipelineConfig`], [`PlacedLayout`]) lives here too, so the facade
//! crate, the CLI, and the bench binaries all drive one implementation.
//!
//! Determinism contract: every record field except the `wall_*` timings
//! is a pure function of the job spec — running a plan twice, at any
//! thread counts, yields byte-identical JSONL modulo `wall_*`.
//!
//! # Example
//!
//! ```
//! use qplacer_harness::{
//!     DeviceSpec, ExperimentPlan, MemorySink, Profile, RunOptions, Runner, Strategy,
//! };
//!
//! // A 1-device × 2-strategy × 1-benchmark × 2-seed grid (4 jobs).
//! let plan = ExperimentPlan::grid(
//!     "doc-sweep",
//!     &[DeviceSpec::Grid { width: 3, height: 3 }],
//!     &[Strategy::FrequencyAware, Strategy::Classic],
//!     &["bv-4"],
//!     2,      // subsets per job
//!     &[1, 2] // seeds
//! )
//! .with_profile(Profile::Fast); // reduced budgets for docs/tests
//!
//! let mut sink = MemorySink::new();
//! let report = Runner::new(2)
//!     .execute(&plan, RunOptions { sinks: vec![&mut sink], ..Default::default() })
//!     .unwrap()
//!     .report;
//!
//! assert_eq!(report.records.len(), 4);
//! assert!(report.failures().is_empty());
//! // Records arrive in plan order no matter which worker ran them.
//! assert_eq!(sink.records[0].strategy, "Qplacer");
//! let summaries = report.summaries();
//! assert_eq!(summaries.len(), 2); // one arm per strategy
//! assert!(summaries.iter().all(|s| s.mean_fidelity > 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
pub mod plan;
pub mod replace;
pub mod runner;
pub mod sink;
pub mod summary;

pub use pipeline::{
    ExecOptions, PipelineConfig, PipelineWorkspace, PlacedLayout, Qplacer, StageTimings, Strategy,
};
pub use plan::{DeviceError, DeviceSpec, ExperimentPlan, JobSpec, Profile};
pub use replace::ReplaceReport;
pub use runner::{
    execute_job_traced, execute_job_with, JobRecord, JobStatus, RunOptions, RunOutcome, RunReport,
    Runner,
};
pub use sink::{CsvSink, JsonlSink, MemorySink, Sink};
pub use summary::{ArmSummary, Summary};
