//! The end-to-end placement pipeline.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use qplacer_baselines::HumanLayout;
use qplacer_circuits::Circuit;
use qplacer_freq::{FreqWorkspace, FrequencyAssigner, FrequencyAssignment};
use qplacer_legal::{LegalReport, LegalWorkspace, Legalizer};
use qplacer_metrics::{
    evaluate_benchmark, AreaMetrics, BenchmarkEvaluation, FidelityParams, HotspotConfig,
    HotspotReport,
};
use qplacer_netlist::{NetlistConfig, QuantumNetlist};
use qplacer_obs::{NullTraceSink, TraceSink};
use qplacer_place::{
    ExecOptions as PlacerExecOptions, GlobalPlacer, PlacementReport, PlacerConfig, PlacerWorkspace,
};
use qplacer_topology::Topology;

/// Which placement scheme to run (the paper's three comparison arms,
/// §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// QPlacer: the frequency-aware electrostatic engine.
    FrequencyAware,
    /// Classic: the same engine with the frequency force disabled.
    Classic,
    /// Human: the manual IBM-style grid design (crosstalk-free, larger).
    Human,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::FrequencyAware => "Qplacer",
            Strategy::Classic => "Classic",
            Strategy::Human => "Human",
        };
        f.write_str(s)
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Frequency assignment settings.
    pub assigner: FrequencyAssigner,
    /// Netlist geometry (padding, segment size, utilization target).
    pub netlist: NetlistConfig,
    /// Global placement settings (frequency awareness is overridden by
    /// the [`Strategy`] passed to [`Qplacer::execute`]).
    pub placer: PlacerConfig,
    /// Legalization settings.
    pub legalizer: Legalizer,
    /// Fidelity model settings for evaluations.
    pub fidelity: FidelityParams,
}

impl PipelineConfig {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            assigner: FrequencyAssigner::paper_defaults(),
            netlist: NetlistConfig::default(),
            placer: PlacerConfig::paper(),
            legalizer: Legalizer::default(),
            fidelity: FidelityParams::paper(),
        }
    }

    /// Reduced-budget configuration for tests and doc examples.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            placer: PlacerConfig::fast(),
            ..Self::paper()
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Reusable buffers for every pipeline stage, mirroring each stage's own
/// workspace type. One of these threaded through
/// [`ExecOptions::workspace`] makes repeat placements (sweeps, benchmarks)
/// reuse the frequency-assignment conflict graphs, the placer's spectral
/// scratch, and the legalizer's bitmap/grid/candidate buffers.
#[derive(Debug, Default)]
pub struct PipelineWorkspace {
    /// Frequency-assignment buffers ([`FrequencyAssigner::assign_with`]).
    pub freq: FreqWorkspace,
    /// Global-placement buffers ([`qplacer_place::ExecOptions::workspace`]).
    pub placer: PlacerWorkspace,
    /// Legalization buffers ([`Legalizer::run_with`]).
    pub legal: LegalWorkspace,
}

impl PipelineWorkspace {
    /// An empty workspace; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Wall-clock stage timings of one pipeline run (milliseconds). All
/// fields are non-deterministic; stages that did not run are 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Frequency assignment.
    pub assign_ms: f64,
    /// Global placement (matches `PlacementReport::elapsed_seconds`).
    pub place_ms: f64,
    /// Legalization (all three phases).
    pub legalize_ms: f64,
}

/// A placed (and, for the engine strategies, legalized) layout plus the
/// reports the pipeline produced along the way.
#[derive(Debug, Clone)]
pub struct PlacedLayout {
    /// The strategy that produced this layout.
    pub strategy: Strategy,
    /// The netlist at its final positions.
    pub netlist: QuantumNetlist,
    /// The frequency assignment used.
    pub assignment: FrequencyAssignment,
    /// Global-placement report (absent for the Human strategy).
    pub placement: Option<PlacementReport>,
    /// Legalization report (absent for the Human strategy).
    pub legalization: Option<LegalReport>,
    /// Per-stage wall-clock timings of this run.
    pub timings: StageTimings,
    /// The fidelity parameters evaluations will use.
    pub(crate) fidelity: FidelityParams,
}

impl PlacedLayout {
    /// Area metrics of the final layout (Eq. 17).
    #[must_use]
    pub fn area(&self) -> AreaMetrics {
        AreaMetrics::of(&self.netlist)
    }

    /// Hotspot scan of the final layout (Eq. 18).
    #[must_use]
    pub fn hotspots(&self) -> HotspotReport {
        HotspotReport::scan(&self.netlist, &self.fidelity.hotspot)
    }

    /// Hotspot scan with custom settings.
    #[must_use]
    pub fn hotspots_with(&self, config: &HotspotConfig) -> HotspotReport {
        HotspotReport::scan(&self.netlist, config)
    }

    /// Evaluates one benchmark circuit on `num_subsets` seeded random
    /// connected subsets (the Fig. 11 protocol; the paper uses 50).
    #[must_use]
    pub fn evaluate(
        &self,
        device: &Topology,
        circuit: &Circuit,
        num_subsets: usize,
        seed: u64,
    ) -> BenchmarkEvaluation {
        evaluate_benchmark(
            &self.netlist,
            device,
            circuit,
            num_subsets,
            seed,
            &self.fidelity,
        )
    }

    /// SVG rendering of the layout (Fig. 14-b).
    #[must_use]
    pub fn svg(&self) -> String {
        qplacer_artwork::render_svg(&self.netlist)
    }

    /// GDS-lite export of the layout (Fig. 14-c substitute).
    #[must_use]
    pub fn gds(&self, structure_name: &str) -> String {
        qplacer_artwork::write_gds_lite(&self.netlist, structure_name)
    }
}

/// The end-to-end QPlacer pipeline.
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct Qplacer {
    config: PipelineConfig,
}

/// Options for [`Qplacer::execute`] and [`Qplacer::execute_replace`] —
/// the single entry points that replaced the `place` / `place_with` /
/// `place_traced` and `replace` / `replace_with` / `replace_traced`
/// method families. `Default` is an untraced run with an internal
/// scratch workspace under the ambient trace context; each field opts
/// into one capability independently.
#[derive(Default)]
pub struct ExecOptions<'a> {
    /// Caller-owned stage buffers, reused across runs (sweeps reusing
    /// one workspace per worker pay the buffer build-out once); `None`
    /// builds a fresh [`PipelineWorkspace`] internally.
    pub workspace: Option<&'a mut PipelineWorkspace>,
    /// Convergence-telemetry sink: per-phase
    /// [`FreqPhase`] records from the assigner, one [`PlaceIteration`]
    /// record per global-placement iteration, and per-phase
    /// [`LegalPhase`] records from the legalizer. Telemetry is
    /// observational only — the returned layout is bit-identical to the
    /// untraced path.
    ///
    /// [`FreqPhase`]: qplacer_obs::TraceRecord::FreqPhase
    /// [`PlaceIteration`]: qplacer_obs::TraceRecord::PlaceIteration
    /// [`LegalPhase`]: qplacer_obs::TraceRecord::LegalPhase
    pub sink: Option<&'a mut dyn TraceSink>,
    /// Event-capture correlation: adopt this trace-context id on the
    /// executing thread before the run, so every timeline event the
    /// pipeline records (see [`qplacer_obs::event_snapshot`]) carries
    /// it. `None` leaves the thread's current context untouched.
    pub trace_id: Option<u64>,
}

impl Qplacer {
    /// Pipeline with the paper's configuration.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// Paper-faithful configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(PipelineConfig::paper())
    }

    /// Reduced-budget configuration for tests and docs.
    #[must_use]
    pub fn fast() -> Self {
        Self::new(PipelineConfig::fast())
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the pipeline (assignment → placement → legalization) on
    /// `device` with the chosen strategy. The single entry point:
    /// workspace reuse, convergence telemetry, and event-capture
    /// correlation are all [`ExecOptions`] fields, each defaulting to
    /// off. Per-stage wall times land in the returned layout's
    /// [`StageTimings`].
    #[must_use]
    pub fn execute(
        &self,
        device: &Topology,
        strategy: Strategy,
        opts: ExecOptions<'_>,
    ) -> PlacedLayout {
        let ExecOptions {
            workspace,
            sink,
            trace_id,
        } = opts;
        let _trace = trace_id.map(qplacer_obs::adopt_trace_id);
        let mut scratch;
        let ws = match workspace {
            Some(ws) => ws,
            None => {
                scratch = PipelineWorkspace::new();
                &mut scratch
            }
        };
        let mut null = NullTraceSink;
        self.place_core(device, strategy, ws, sink.unwrap_or(&mut null))
    }

    /// Untraced run with an internal workspace.
    #[deprecated(note = "use `execute` with `ExecOptions::default()`")]
    #[must_use]
    pub fn place(&self, device: &Topology, strategy: Strategy) -> PlacedLayout {
        self.execute(device, strategy, ExecOptions::default())
    }

    /// Untraced run reusing a caller-owned workspace.
    #[deprecated(note = "use `execute` with `ExecOptions { workspace, .. }`")]
    #[must_use]
    pub fn place_with(
        &self,
        device: &Topology,
        strategy: Strategy,
        ws: &mut PipelineWorkspace,
    ) -> PlacedLayout {
        self.execute(
            device,
            strategy,
            ExecOptions {
                workspace: Some(ws),
                ..Default::default()
            },
        )
    }

    /// Run with a convergence-telemetry sink.
    #[deprecated(note = "use `execute` with `ExecOptions { workspace, sink, .. }`")]
    #[must_use]
    pub fn place_traced(
        &self,
        device: &Topology,
        strategy: Strategy,
        ws: &mut PipelineWorkspace,
        sink: &mut dyn TraceSink,
    ) -> PlacedLayout {
        self.execute(
            device,
            strategy,
            ExecOptions {
                workspace: Some(ws),
                sink: Some(sink),
                trace_id: None,
            },
        )
    }

    pub(crate) fn place_core(
        &self,
        device: &Topology,
        strategy: Strategy,
        ws: &mut PipelineWorkspace,
        sink: &mut dyn TraceSink,
    ) -> PlacedLayout {
        let _span = qplacer_obs::span!("pipeline", qubits = device.num_qubits() as u64);
        let mut timings = StageTimings::default();
        let start = Instant::now();
        let assignment = self
            .config
            .assigner
            .assign_traced_with(device, &mut ws.freq, sink);
        timings.assign_ms = start.elapsed().as_secs_f64() * 1e3;
        match strategy {
            Strategy::Human => {
                let netlist = HumanLayout::place(device, &assignment, &self.config.netlist);
                PlacedLayout {
                    strategy,
                    netlist,
                    assignment,
                    placement: None,
                    legalization: None,
                    timings,
                    fidelity: self.config.fidelity,
                }
            }
            Strategy::FrequencyAware | Strategy::Classic => {
                let mut netlist = QuantumNetlist::build(device, &assignment, &self.config.netlist);
                let mut placer_cfg = self.config.placer;
                placer_cfg.frequency_aware = strategy == Strategy::FrequencyAware;
                let placement = GlobalPlacer::new(placer_cfg).execute(
                    &mut netlist,
                    PlacerExecOptions {
                        workspace: Some(&mut ws.placer),
                        sink: Some(sink),
                        pinned: None,
                    },
                );
                timings.place_ms = placement.elapsed_seconds * 1e3;
                // The τ-checked (resonance-aware) legalization passes are a
                // QPlacer contribution (§IV-C2); the Classic arm gets the
                // plain engine + structural legalizer, like the paper's
                // DREAMPlace baseline.
                let mut legalizer_cfg = self.config.legalizer;
                if strategy == Strategy::Classic {
                    legalizer_cfg = legalizer_cfg.with_resonant_margin(0.0);
                }
                let start = Instant::now();
                let legalization = legalizer_cfg.run_traced(&mut netlist, &mut ws.legal, sink);
                timings.legalize_ms = start.elapsed().as_secs_f64() * 1e3;
                PlacedLayout {
                    strategy,
                    netlist,
                    assignment,
                    placement: Some(placement),
                    legalization: Some(legalization),
                    timings,
                    fidelity: self.config.fidelity,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qplacer_strategy_produces_legal_compact_layouts() {
        let device = Topology::grid(3, 3);
        let layout = Qplacer::fast().execute(&device, Strategy::FrequencyAware, Default::default());
        assert_eq!(layout.strategy, Strategy::FrequencyAware);
        assert!(layout.placement.is_some());
        let legal = layout.legalization.as_ref().unwrap();
        assert_eq!(legal.remaining_overlaps, 0);
        let area = layout.area();
        assert!(area.utilization > 0.3 && area.utilization <= 1.0);
    }

    #[test]
    fn human_strategy_skips_engine() {
        let device = Topology::grid(3, 3);
        let layout = Qplacer::fast().execute(&device, Strategy::Human, Default::default());
        assert!(layout.placement.is_none());
        assert!(layout.legalization.is_none());
        assert_eq!(layout.hotspots().violations.len(), 0);
    }

    #[test]
    fn qplacer_beats_classic_on_hotspots() {
        let device = Topology::grid(3, 3);
        let engine = Qplacer::fast();
        let aware = engine.execute(&device, Strategy::FrequencyAware, Default::default());
        let classic = engine.execute(&device, Strategy::Classic, Default::default());
        assert!(
            aware.hotspots().ph <= classic.hotspots().ph + 1e-12,
            "aware {} vs classic {}",
            aware.hotspots().ph,
            classic.hotspots().ph
        );
    }

    #[test]
    fn human_layout_is_larger_than_qplacer() {
        let device = Topology::falcon27();
        let engine = Qplacer::fast();
        let aware = engine.execute(&device, Strategy::FrequencyAware, Default::default());
        let human = engine.execute(&device, Strategy::Human, Default::default());
        assert!(
            human.area().mer_area > aware.area().mer_area,
            "human {} !> qplacer {}",
            human.area().mer_area,
            aware.area().mer_area
        );
    }

    #[test]
    fn evaluation_runs_end_to_end() {
        let device = Topology::grid(3, 3);
        let layout = Qplacer::fast().execute(&device, Strategy::FrequencyAware, Default::default());
        let eval = layout.evaluate(&device, &qplacer_circuits::generators::bv(4), 3, 1);
        assert_eq!(eval.fidelities.len(), 3);
        for f in &eval.fidelities {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn artwork_exports_work() {
        let device = Topology::grid(2, 2);
        let layout = Qplacer::fast().execute(&device, Strategy::FrequencyAware, Default::default());
        assert!(layout.svg().starts_with("<svg"));
        assert!(layout.gds("TOP").contains("STRNAME TOP"));
    }
}
