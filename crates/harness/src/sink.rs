//! Result sinks: pluggable consumers of [`JobRecord`]s.
//!
//! Sinks receive records **in plan order** regardless of how the runner
//! scheduled the jobs, so two runs of the same plan write byte-identical
//! streams modulo the `wall_*` fields.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::plan::ExperimentPlan;
use crate::runner::JobRecord;

/// A consumer of experiment records.
pub trait Sink {
    /// Called once before the first record.
    fn begin(&mut self, _plan: &ExperimentPlan) -> io::Result<()> {
        Ok(())
    }

    /// Called once per record, in plan order.
    fn record(&mut self, record: &JobRecord) -> io::Result<()>;

    /// Called once after the last record.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Keeps records in memory (summaries, tests, further processing).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The collected records.
    pub records: Vec<JobRecord>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for MemorySink {
    fn record(&mut self, record: &JobRecord) -> io::Result<()> {
        self.records.push(record.clone());
        Ok(())
    }
}

/// Writes one JSON object per line (JSONL), the harness's canonical
/// machine-readable output.
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and writes JSONL to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Returns the inner writer (flushing is the caller's concern).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, record: &JobRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.writer, "{line}")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Writes RFC-4180-style CSV with a header row.
pub struct CsvSink<W: Write> {
    writer: W,
}

impl CsvSink<BufWriter<File>> {
    /// Creates (truncating) `path` and writes CSV to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CsvSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> CsvSink<W> {
    /// Wraps any writer.
    pub fn new(writer: W) -> Self {
        CsvSink { writer }
    }

    /// Returns the inner writer (flushing is the caller's concern).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for CsvSink<W> {
    fn begin(&mut self, _plan: &ExperimentPlan) -> io::Result<()> {
        writeln!(self.writer, "{}", JobRecord::csv_header())
    }

    fn record(&mut self, record: &JobRecord) -> io::Result<()> {
        writeln!(self.writer, "{}", record.csv_row())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use crate::plan::{DeviceSpec, ExperimentPlan, Profile};
    use crate::runner::{RunOptions, Runner};

    #[test]
    fn jsonl_and_csv_sinks_write_one_line_per_record() {
        let plan = ExperimentPlan::placement_grid(
            "sink-test",
            &[DeviceSpec::Grid {
                width: 2,
                height: 2,
            }],
            &[Strategy::FrequencyAware, Strategy::Human],
            &[None],
        )
        .with_profile(Profile::Fast);

        let mut jsonl = JsonlSink::new(Vec::new());
        let mut csv = CsvSink::new(Vec::new());
        let mut memory = MemorySink::new();
        let report = Runner::new(1)
            .execute(
                &plan,
                RunOptions {
                    sinks: vec![&mut jsonl, &mut csv, &mut memory],
                    ..Default::default()
                },
            )
            .unwrap()
            .report;

        let jsonl_text = String::from_utf8(jsonl.into_inner()).unwrap();
        assert_eq!(jsonl_text.lines().count(), plan.len());
        for line in jsonl_text.lines() {
            let parsed: crate::runner::JobRecord = serde_json::from_str(line).unwrap();
            assert_eq!(parsed.plan, "sink-test");
        }

        let csv_text = String::from_utf8(csv.into_inner()).unwrap();
        assert_eq!(csv_text.lines().count(), plan.len() + 1);
        assert!(csv_text.starts_with("plan,"));

        assert_eq!(memory.records.len(), plan.len());
        assert_eq!(memory.records, report.records);
    }
}
