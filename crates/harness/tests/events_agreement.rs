//! The event-timeline contract for [`Runner::execute`] with
//! [`RunOptions::capture_events`]:
//!
//! - results are bit-identical to the untraced [`Runner::run`] (event
//!   recording never perturbs the pipeline's arithmetic),
//! - every job runs under its own fresh trace id,
//! - per-phase durations summed from the event timeline agree with the
//!   aggregate span counters within 5% — the two views of the same
//!   clock must tell the same story.
//!
//! Own integration binary (separate process): event capture flips the
//! process-global span/event gates, and the span counters it is
//! compared against are process-global too.

use qplacer_harness::{DeviceSpec, ExperimentPlan, JobSpec, Profile, RunOptions, Runner, Strategy};
use qplacer_obs::EventKind;

fn plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("events").with_profile(Profile::Fast);
    for width in [4usize, 5] {
        plan.jobs.push(JobSpec {
            device: DeviceSpec::Grid { width, height: 4 },
            strategy: Strategy::FrequencyAware,
            benchmark: None,
            subsets: 0,
            seed: 7,
            segment_size_mm: None,
            levels: None,
        });
    }
    plan
}

#[test]
fn event_timeline_agrees_with_span_aggregates_and_stays_bit_identical() {
    let plan = plan();
    let runner = Runner::new(2);

    // Baseline: untraced run before any gate was ever enabled.
    let baseline = runner.run(&plan);

    qplacer_obs::reset_spans();
    let outcome = runner
        .execute(
            &plan,
            RunOptions {
                capture_events: true,
                ..Default::default()
            },
        )
        .expect("event capture performs no I/O");
    let (report, snapshot) = (
        outcome.report,
        outcome.events.expect("capture was requested"),
    );

    // Tracing must not perturb results: identical deterministic fields.
    assert_eq!(baseline.records.len(), report.records.len());
    for (before, after) in baseline.records.iter().zip(&report.records) {
        let mut before = before.clone();
        let mut after = after.clone();
        for record in [&mut before, &mut after] {
            record.wall_ms = 0.0;
            record.wall_place_ms = 0.0;
            record.wall_place_iters_per_sec = 0.0;
            record.wall_legalize_ms = 0.0;
            record.wall_assign_ms = 0.0;
        }
        assert_eq!(before, after, "traced run must be bit-identical");
    }

    // The gates are restored to their pre-run state (off).
    assert!(!qplacer_obs::spans_enabled());
    assert_eq!(qplacer_obs::event_mode(), qplacer_obs::EventMode::Off);

    // One fresh trace id per job, all distinct and nonzero.
    let pipeline_ids: std::collections::BTreeSet<u64> = snapshot
        .events
        .iter()
        .filter(|e| e.name == "pipeline" && e.kind == EventKind::Begin)
        .map(|e| e.trace_id)
        .collect();
    assert_eq!(
        pipeline_ids.len(),
        plan.jobs.len(),
        "each job gets its own trace id"
    );
    assert!(pipeline_ids.iter().all(|&id| id != 0));

    // Per-phase duration agreement: replaying begin/end pairs from the
    // timeline must reproduce the aggregate span totals within 5%
    // (same spans, same monotonic clock; only the per-event read skew
    // differs). Sub-millisecond phases get an absolute 1 ms floor so
    // fixed per-entry skew on tiny spans cannot flake the test.
    let timeline = qplacer_obs::duration_totals_ns(&snapshot.events);
    let mut compared = 0;
    for stat in qplacer_obs::span_report() {
        if stat.count == 0 {
            continue;
        }
        let event_total = *timeline
            .get(stat.name)
            .unwrap_or_else(|| panic!("span `{}` missing from the timeline", stat.name));
        let diff = event_total.abs_diff(stat.total_ns);
        let tolerance = (stat.total_ns / 20).max(1_000_000);
        assert!(
            diff <= tolerance,
            "span `{}`: timeline {event_total} ns vs aggregate {} ns (diff {diff} > {tolerance})",
            stat.name,
            stat.total_ns
        );
        compared += 1;
    }
    assert!(
        compared >= 3,
        "expected several pipeline phases to compare, got {compared}"
    );

    // The capture is gone once mode returns to Off *and* cleared.
    qplacer_obs::clear_events();
    assert!(qplacer_obs::event_snapshot().events.is_empty());
}
