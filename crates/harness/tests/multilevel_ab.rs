//! Flat-vs-multilevel quality A/B: on Falcon and Eagle, a 3-level
//! V-cycle must land within a few percent of flat placement on the
//! metrics the paper reports (density overflow, hotspot proportion,
//! mean subset fidelity), while running the same pipeline end to end.

use qplacer_harness::{
    execute_job_with, DeviceSpec, ExperimentPlan, JobSpec, PipelineWorkspace, Profile, Strategy,
};

fn one_job_plan(device: DeviceSpec, levels: Option<usize>) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("multilevel-ab").with_profile(Profile::Fast);
    plan.jobs.push(JobSpec {
        device,
        strategy: Strategy::FrequencyAware,
        benchmark: Some("ghz-10".to_string()),
        subsets: 3,
        seed: 7,
        segment_size_mm: None,
        levels,
    });
    plan
}

struct Quality {
    overflow: f64,
    ph: f64,
    mean_fidelity: f64,
}

fn run(device: DeviceSpec, levels: Option<usize>) -> Quality {
    let plan = one_job_plan(device, levels);
    let mut ws = PipelineWorkspace::new();
    let (record, layout) = execute_job_with(&plan, 0, &mut ws);
    let layout = layout.expect("placement job produces a layout");
    let placement = layout.placement.as_ref().expect("placement ran");
    assert!(
        record.subsets_evaluated > 0,
        "no fidelity samples on {}",
        record.device
    );
    Quality {
        overflow: placement.final_overflow,
        ph: record.ph,
        mean_fidelity: record.mean_fidelity,
    }
}

/// `value` may be worse than `baseline` by at most `slack` relative —
/// or by `floor` absolute, whichever is larger, so near-zero baselines
/// (a couple of hotspot qubits out of hundreds) don't turn into
/// zero-tolerance comparisons. Lower is better; being better is fine.
fn assert_within(metric: &str, device: &str, value: f64, baseline: f64, slack: f64, floor: f64) {
    let limit = (baseline.abs() * slack).max(floor);
    assert!(
        value - baseline <= limit,
        "{device}: multilevel {metric} {value:.6} exceeds flat {baseline:.6} by more than {:.0}% (floor {floor})",
        slack * 100.0
    );
}

fn ab_device(device: DeviceSpec) {
    let name = device.name();
    let flat = run(device.clone(), None);
    let multi = run(device, Some(3));
    eprintln!(
        "{name}: flat overflow={:.4} ph={:.4} fid={:.6} | multi overflow={:.4} ph={:.4} fid={:.6}",
        flat.overflow, flat.ph, flat.mean_fidelity, multi.overflow, multi.ph, multi.mean_fidelity
    );
    assert_within("overflow", &name, multi.overflow, flat.overflow, 0.05, 0.01);
    assert_within("ph", &name, multi.ph, flat.ph, 0.05, 0.01);
    // Fidelity is higher-is-better: compare the infidelities instead.
    assert_within(
        "infidelity",
        &name,
        1.0 - multi.mean_fidelity,
        1.0 - flat.mean_fidelity,
        0.05,
        0.01,
    );
}

#[test]
fn multilevel_matches_flat_quality_on_falcon() {
    ab_device(DeviceSpec::Falcon27);
}

#[test]
fn multilevel_matches_flat_quality_on_eagle() {
    ab_device(DeviceSpec::Eagle127);
}
