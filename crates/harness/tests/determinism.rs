//! The harness determinism contract: an [`ExperimentPlan`] run twice —
//! and at 1 vs N threads — yields byte-identical JSONL records modulo
//! the `wall_*` timing fields.

use qplacer_harness::{
    DeviceSpec, ExperimentPlan, JsonlSink, Profile, RunOptions, Runner, Strategy,
};
use serde_json::Value;

/// Runs `plan` on `threads` workers and returns the JSONL lines with
/// every `wall_*` field zeroed (the only fields allowed to vary).
fn normalized_jsonl(plan: &ExperimentPlan, threads: usize) -> Vec<String> {
    let mut sink = JsonlSink::new(Vec::new());
    Runner::new(threads)
        .execute(
            plan,
            RunOptions {
                sinks: vec![&mut sink],
                ..Default::default()
            },
        )
        .expect("in-memory sink cannot fail");
    let text = String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8");
    text.lines()
        .map(|line| {
            let mut value: Value = serde_json::from_str(line).expect("record parses");
            zero_wall_fields(&mut value);
            serde_json::to_string(&value).unwrap()
        })
        .collect()
}

fn zero_wall_fields(value: &mut Value) {
    if let Value::Map(entries) = value {
        for (key, entry) in entries {
            if key.starts_with("wall_") {
                *entry = Value::F64(0.0);
            } else {
                zero_wall_fields(entry);
            }
        }
    }
}

fn test_plan() -> ExperimentPlan {
    ExperimentPlan::grid(
        "determinism",
        &[
            DeviceSpec::Grid {
                width: 3,
                height: 3,
            },
            DeviceSpec::Grid {
                width: 2,
                height: 4,
            },
        ],
        &[Strategy::FrequencyAware, Strategy::Classic, Strategy::Human],
        &["bv-4", "qaoa-4"],
        3,
        &[7, 8],
    )
    .with_profile(Profile::Fast)
}

#[test]
fn same_plan_twice_is_byte_identical_modulo_wall_time() {
    let plan = test_plan();
    let first = normalized_jsonl(&plan, 2);
    let second = normalized_jsonl(&plan, 2);
    assert_eq!(first.len(), plan.len());
    assert_eq!(first, second);
}

#[test]
fn one_thread_and_many_threads_agree() {
    let plan = test_plan();
    let serial = normalized_jsonl(&plan, 1);
    let parallel = normalized_jsonl(&plan, 4);
    assert_eq!(serial.len(), plan.len());
    assert_eq!(serial, parallel);
}

#[test]
fn records_vary_outside_wall_fields_only_via_spec() {
    // Two different seeds must produce different fidelity samples —
    // i.e. the normalization above is not trivially equating everything.
    let plan = test_plan();
    let lines = normalized_jsonl(&plan, 2);
    let a: Value = serde_json::from_str(&lines[0]).unwrap();
    let b: Value = serde_json::from_str(&lines[1]).unwrap();
    let seed_of = |v: &Value| match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == "seed")
            .map(|(_, v)| v.clone()),
        _ => None,
    };
    assert_ne!(seed_of(&a), seed_of(&b), "adjacent jobs differ by seed");
    assert_ne!(lines[0], lines[1]);
}
