//! The convergence-trace JSONL sidecar must be machine-readable: every
//! line parses as a JSON object with the documented per-`type` fields,
//! placer iteration indices are contiguous per job, and every job in
//! the plan contributes records for all three pipeline stages.

use qplacer_harness::{DeviceSpec, ExperimentPlan, JobSpec, Profile, RunOptions, Runner, Strategy};

fn two_job_plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("trace-schema").with_profile(Profile::Fast);
    for device in [
        DeviceSpec::Grid {
            width: 2,
            height: 2,
        },
        DeviceSpec::Grid {
            width: 2,
            height: 3,
        },
    ] {
        plan.jobs.push(JobSpec {
            device,
            strategy: Strategy::FrequencyAware,
            benchmark: None,
            subsets: 0,
            seed: 0,
            segment_size_mm: None,
            levels: None,
        });
    }
    plan
}

fn str_field(map: &[(String, serde_json::Value)], key: &str) -> String {
    serde_json::Value::field(map, key)
        .unwrap_or_else(|e| panic!("missing `{key}`: {e}"))
        .as_str()
        .unwrap_or_else(|| panic!("`{key}` is not a string"))
        .to_string()
}

fn u64_field(map: &[(String, serde_json::Value)], key: &str) -> u64 {
    match serde_json::Value::field(map, key).unwrap_or_else(|e| panic!("missing `{key}`: {e}")) {
        serde_json::Value::I64(n) if *n >= 0 => *n as u64,
        serde_json::Value::U64(n) => *n,
        other => panic!("`{key}` is not an unsigned integer: {other:?}"),
    }
}

#[test]
fn trace_jsonl_schema_is_stable() {
    let plan = two_job_plan();
    let dir = std::env::temp_dir().join(format!("qplacer-trace-schema-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");

    let report = Runner::new(2)
        .execute(
            &plan,
            RunOptions {
                trace_path: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap()
        .report;
    assert_eq!(report.records.len(), 2);

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(!text.trim().is_empty(), "trace file must not be empty");

    // Per job: the contiguous placer iteration counter and the set of
    // stage kinds seen.
    let mut next_iteration = vec![0u64; plan.jobs.len()];
    let mut kinds_seen = vec![std::collections::BTreeSet::new(); plan.jobs.len()];
    for line in text.lines() {
        let value: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("invalid JSON `{line}`: {e}"));
        let map = value.as_map().expect("each trace line is a JSON object");

        let job = str_field(map, "job");
        let (plan_name, index) = job.split_once('/').expect("label is `<plan>/<index>`");
        assert_eq!(plan_name, "trace-schema");
        let index: usize = index.parse().expect("job index is numeric");
        assert!(index < plan.jobs.len());

        let kind = str_field(map, "type");
        kinds_seen[index].insert(kind.clone());
        match kind.as_str() {
            "place_iteration" => {
                assert_eq!(
                    u64_field(map, "iteration"),
                    next_iteration[index],
                    "iteration indices must be contiguous per job"
                );
                next_iteration[index] += 1;
                for key in ["deposit_ns", "poisson_ns", "gather_ns"] {
                    let _ = u64_field(map, key);
                }
                for key in ["overflow", "wirelength", "max_force"] {
                    assert!(
                        serde_json::Value::field(map, key).is_ok(),
                        "missing `{key}` in `{line}`"
                    );
                }
            }
            "legal_phase" | "freq_phase" => {
                let phase = str_field(map, "phase");
                assert!(!phase.is_empty());
                let _ = u64_field(map, "elapsed_ns");
                let _ = u64_field(map, "items");
            }
            other => panic!("unknown trace record type `{other}`"),
        }
    }

    for (index, kinds) in kinds_seen.iter().enumerate() {
        for expected in ["place_iteration", "legal_phase", "freq_phase"] {
            assert!(
                kinds.contains(expected),
                "job {index} emitted no `{expected}` records"
            );
        }
        assert!(
            next_iteration[index] > 0,
            "job {index} traced no iterations"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
