//! A 3-strategy × 3-device batch sweep through the experiment harness.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p qplacer-harness --example batch_sweep
//! ```
//!
//! Builds one declarative [`ExperimentPlan`] over
//! {Grid-4x4, Falcon, Aspen-11} × {Qplacer, Classic, Human} × BV-4,
//! fans it across the thread pool, streams JSONL to
//! `batch_sweep.jsonl`, and prints the per-arm summary table.

use qplacer_harness::{
    DeviceSpec, ExperimentPlan, JsonlSink, MemorySink, RunOptions, Runner, Strategy, Summary,
};

fn main() -> std::io::Result<()> {
    let devices = [
        DeviceSpec::Grid {
            width: 4,
            height: 4,
        },
        DeviceSpec::Falcon27,
        DeviceSpec::Aspen { rows: 1, cols: 5 },
    ];
    let strategies = [Strategy::FrequencyAware, Strategy::Classic, Strategy::Human];
    let plan = ExperimentPlan::grid(
        "batch-sweep-example",
        &devices,
        &strategies,
        &["bv-4"],
        10, // subsets per job
        &[0xF1D0],
    );

    let runner = Runner::new(0); // one worker per core
    println!(
        "running {} jobs on {} threads ...",
        plan.len(),
        runner.threads()
    );

    let mut jsonl = JsonlSink::create("batch_sweep.jsonl")?;
    let mut memory = MemorySink::new();
    let report = runner
        .execute(
            &plan,
            RunOptions {
                sinks: vec![&mut jsonl, &mut memory],
                ..Default::default()
            },
        )?
        .report;

    print!("{}", Summary::table(&report.summaries()));
    println!(
        "{} jobs in {:.1} s ({} failed); records -> batch_sweep.jsonl",
        report.records.len(),
        report.wall_ms / 1e3,
        report.failures().len()
    );

    // The records are also in memory for programmatic use:
    let best = memory
        .records
        .iter()
        .max_by(|a, b| a.mean_fidelity.total_cmp(&b.mean_fidelity))
        .expect("plan is non-empty");
    println!(
        "best arm: {} / {} (mean fidelity {:.3e})",
        best.device, best.strategy, best.mean_fidelity
    );
    Ok(())
}
