//! The parallel back-end must not change results: legalization and
//! frequency assignment on the paper config, run under a 1-thread rayon
//! pool and under a wide pool, must produce *byte-identical* serialized
//! reports and identical positions. Candidate scoring fans out, but the
//! selected candidate is always the lowest acceptable index, so no
//! decision depends on the worker count.

use qplacer_freq::{FreqWorkspace, FrequencyAssigner};
use qplacer_legal::{LegalReport, LegalWorkspace, Legalizer};
use qplacer_netlist::{NetlistConfig, QuantumNetlist};
use qplacer_place::{ExecOptions, GlobalPlacer, PlacerConfig};
use qplacer_topology::Topology;

fn placed_netlist() -> QuantumNetlist {
    let t = Topology::falcon27();
    let freqs = FrequencyAssigner::paper_defaults().assign(&t);
    let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::default());
    GlobalPlacer::new(PlacerConfig::fast()).execute(&mut nl, ExecOptions::default());
    nl
}

fn legalize_at(threads: usize, base: &QuantumNetlist) -> (QuantumNetlist, LegalReport) {
    let mut nl = base.clone();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds");
    let mut ws = LegalWorkspace::new();
    let report = pool.install(|| Legalizer::default().run_with(&mut nl, &mut ws));
    (nl, report)
}

#[test]
fn legalization_is_identical_at_1_vs_n_threads() {
    let base = placed_netlist();
    let (nl_1, report_1) = legalize_at(1, &base);
    let (nl_n, report_n) = legalize_at(4, &base);
    assert_eq!(
        serde_json::to_string(&report_1).unwrap(),
        serde_json::to_string(&report_n).unwrap(),
        "LegalReport bytes diverged between 1 and 4 threads"
    );
    assert_eq!(
        nl_1.positions(),
        nl_n.positions(),
        "final positions diverged between 1 and 4 threads"
    );
    assert_eq!(report_1.remaining_overlaps, 0);
}

#[test]
fn frequency_assignment_is_identical_at_1_vs_n_threads() {
    let t = Topology::falcon27();
    let assigner = FrequencyAssigner::paper_defaults();
    let assign_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let mut ws = FreqWorkspace::default();
        pool.install(|| assigner.assign_with(&t, &mut ws))
    };
    let a1 = assign_at(1);
    let an = assign_at(4);
    assert_eq!(
        serde_json::to_string(&a1).unwrap(),
        serde_json::to_string(&an).unwrap(),
        "FrequencyAssignment bytes diverged between 1 and 4 threads"
    );
}

#[test]
fn workspace_reuse_across_different_devices_is_clean() {
    // One workspace serving falcon → grid → falcon must give the same
    // falcon result both times (no state leaks between runs).
    let base = placed_netlist();
    let legalizer = Legalizer::default();
    let mut ws = LegalWorkspace::new();

    let mut first = base.clone();
    let report_first = legalizer.run_with(&mut first, &mut ws);

    let t2 = Topology::grid(2, 2);
    let freqs2 = FrequencyAssigner::paper_defaults().assign(&t2);
    let mut other = QuantumNetlist::build(&t2, &freqs2, &NetlistConfig::default());
    GlobalPlacer::new(PlacerConfig::fast()).execute(&mut other, ExecOptions::default());
    let _ = legalizer.run_with(&mut other, &mut ws);

    let mut second = base.clone();
    let report_second = legalizer.run_with(&mut second, &mut ws);

    assert_eq!(report_first, report_second);
    assert_eq!(first.positions(), second.positions());
}
