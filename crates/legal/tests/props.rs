//! Property-based tests for legalization: any global-placement state must
//! legalize into an overlap-free, in-region layout.

use proptest::prelude::*;
use qplacer_freq::FrequencyAssigner;
use qplacer_geometry::Point;
use qplacer_legal::{Legalizer, QubitLegalizerKind};
use qplacer_netlist::{NetlistConfig, QuantumNetlist};
use qplacer_topology::Topology;

fn arb_device() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..4, 2usize..4).prop_map(|(w, h)| Topology::grid(w, h)),
        Just(Topology::xtree(3, 2, 2)),
        Just(Topology::aspen(1, 2)),
    ]
}

fn scrambled_netlist(device: &Topology, seed: u64, lb: f64) -> QuantumNetlist {
    let freqs = FrequencyAssigner::paper_defaults().assign(device);
    let mut nl = QuantumNetlist::build(device, &freqs, &NetlistConfig::with_segment_size(lb));
    // Scramble positions deterministically within the region.
    let region = nl.region();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..nl.num_instances() {
        let p = Point::new(
            region.min.x + next() * region.width(),
            region.min.y + next() * region.height(),
        );
        let inst = *nl.instance(i);
        nl.set_position(
            i,
            inst.padded_rect(Point::ORIGIN)
                .clamp_center_into(&region, p),
        );
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn legalization_always_produces_legal_layouts(
        device in arb_device(),
        seed in 0u64..1000,
        lb in prop_oneof![Just(0.3), Just(0.4)],
    ) {
        let mut nl = scrambled_netlist(&device, seed, lb);
        let report = Legalizer::default().run(&mut nl);
        prop_assert_eq!(report.remaining_overlaps, 0, "overlaps survive");
        // Legalization may spill into a bounded ring beyond the sized
        // region (see Legalizer::run), never further.
        let workspace = nl
            .region()
            .inflated(2.0 * nl.max_padded_side() + 1e-6);
        for inst in nl.instances() {
            prop_assert!(
                workspace.contains_rect(&nl.padded_rect(inst.id())),
                "instance {} escaped the workspace",
                inst.id()
            );
        }
        prop_assert!(report.integrated_after >= report.integrated_before);
        prop_assert_eq!(
            report.integrated_after + report.resonator_count
                - report.integrated_after,
            report.resonator_count
        );
    }

    #[test]
    fn abacus_variant_is_also_legal(device in arb_device(), seed in 0u64..500) {
        let mut nl = scrambled_netlist(&device, seed, 0.4);
        let report = Legalizer::default()
            .with_qubit_legalizer(QubitLegalizerKind::Abacus)
            .run(&mut nl);
        prop_assert_eq!(report.remaining_overlaps, 0);
    }

    #[test]
    fn displacement_reported_matches_actual_maximum(
        device in arb_device(),
        seed in 0u64..500,
    ) {
        let nl0 = scrambled_netlist(&device, seed, 0.4);
        let before: Vec<Point> = nl0.positions().to_vec();
        let mut nl = nl0;
        let report = Legalizer::default().run(&mut nl);
        // Reported max qubit displacement bounds every observed qubit move
        // made by phase 1 (integration may move segments afterwards, so
        // only qubits are cross-checked).
        for q in 0..nl.num_qubits() {
            let id = nl.qubit_instance(q);
            let moved = before[id].distance(nl.position(id));
            prop_assert!(
                moved <= report.max_qubit_displacement + 1e-9,
                "qubit {} moved {} > reported max {}",
                q,
                moved,
                report.max_qubit_displacement
            );
        }
    }
}

/// An in-region rectangle on a coarse lattice (so abutting/overlap cases
/// are exercised, not just generic floats).
fn arb_rect() -> impl Strategy<Value = qplacer_geometry::Rect> {
    (0i32..18, 0i32..18, 1i32..6, 1i32..6).prop_map(|(x, y, w, h)| {
        qplacer_geometry::Rect::from_origin_size(
            Point::new(-5.0 + x as f64 * 0.5, -5.0 + y as f64 * 0.5),
            w as f64 * 0.5,
            h as f64 * 0.5,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Mark/query boundary consistency of the occupancy bitmap: marking is
    // conservative and queries are exact on the marked set, so the
    // mark → !free → unmark → free cycle must hold for any in-region
    // rect, disjoint rects must never interfere, and anything sticking
    // out of the region is never free.
    #[test]
    fn bitmap_mark_query_roundtrip(r in arb_rect(), probe in arb_rect()) {
        use qplacer_legal::OccupancyBitmap;
        let region = qplacer_geometry::Rect::from_center(Point::ORIGIN, 12.0, 12.0);
        let mut bm = OccupancyBitmap::new(region, 0.1);
        prop_assert!(bm.is_free(&r), "empty bitmap must be free");
        bm.mark(&r);
        prop_assert!(!bm.is_free(&r), "marked rect still free");
        // A probe that overlaps r must be blocked; one that clears r by a
        // full cell must stay free (marking is conservative by at most
        // one boundary cell).
        if probe.overlaps(&r) {
            prop_assert!(!bm.is_free(&probe), "overlap not detected");
        } else if probe.clearance(&r) > 0.1 + 1e-9 {
            prop_assert!(bm.is_free(&probe), "disjoint probe blocked");
        }
        // Ignoring the marked rect restores the probe wherever only r
        // blocked it.
        prop_assert!(bm.is_free_except(&probe, &r) || probe.clearance(&r) <= 0.1 + 1e-9);
        bm.unmark(&r);
        prop_assert!(bm.is_free(&r), "unmark did not restore freeness");
    }

    #[test]
    fn bitmap_out_of_region_is_never_free(r in arb_rect()) {
        use qplacer_legal::OccupancyBitmap;
        // Region smaller than the rect lattice: some rects stick out.
        let region = qplacer_geometry::Rect::from_center(Point::ORIGIN, 7.0, 7.0);
        let bm = OccupancyBitmap::new(region, 0.1);
        let inside = region.inflated(1e-9).contains_rect(&r);
        prop_assert_eq!(bm.is_free(&r), inside, "freeness must match containment");
    }
}
