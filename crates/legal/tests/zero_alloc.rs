//! Steady-state back-end runs must perform **zero heap allocations**:
//! after a warm-up run sizes every `LegalWorkspace` / `FreqWorkspace`
//! buffer, repeating `Legalizer::run_with` and
//! `FrequencyAssigner::assign_into` on the same inputs must not touch
//! the allocator.
//!
//! A counting global allocator wraps the system allocator; the runs
//! execute under a 1-thread rayon pool — with a wider pool the large
//! candidate scans spawn scoped worker threads, whose stacks and
//! worker-local query buffers are runtime, not kernel, allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

use qplacer_freq::{FreqWorkspace, FrequencyAssigner};
use qplacer_legal::{LegalWorkspace, Legalizer};
use qplacer_netlist::{NetlistConfig, QuantumNetlist};
use qplacer_place::{ExecOptions, GlobalPlacer, PlacerConfig};
use qplacer_topology::Topology;

#[test]
fn steady_state_legalization_does_not_allocate() {
    let t = Topology::grid(3, 3);
    let freqs = FrequencyAssigner::paper_defaults().assign(&t);
    let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::default());
    GlobalPlacer::new(PlacerConfig::fast()).execute(&mut nl, ExecOptions::default());
    let placed: Vec<_> = nl.positions().to_vec();

    let legalizer = Legalizer::default();
    let mut ws = LegalWorkspace::new();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds");
    pool.install(|| {
        // Warm-up: size every workspace buffer.
        let warm = legalizer.run_with(&mut nl, &mut ws);
        assert_eq!(warm.remaining_overlaps, 0);
        // The steady-state claim covers the successful-integration path;
        // a resonator left fragmented would (rightly) allocate its entry
        // in the report's unintegrated list.
        assert_eq!(warm.integrated_after, warm.resonator_count);

        nl.set_positions(&placed);
        let (count, report) = allocations(|| legalizer.run_with(&mut nl, &mut ws));
        assert_eq!(report.remaining_overlaps, 0);
        assert_eq!(
            count, 0,
            "steady-state Legalizer::run_with allocated {count} times"
        );
    });
}

#[test]
fn steady_state_frequency_assignment_does_not_allocate() {
    let t = Topology::falcon27();
    let assigner = FrequencyAssigner::paper_defaults();
    let mut ws = FreqWorkspace::default();
    let mut out = assigner.assign_with(&t, &mut ws); // warm-up sizes everything

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds");
    pool.install(|| {
        let (count, ()) = allocations(|| assigner.assign_into(&t, &mut ws, &mut out));
        assert_eq!(
            count, 0,
            "steady-state FrequencyAssigner::assign_into allocated {count} times"
        );
    });
    assert_eq!(out, assigner.assign(&t));
}
