//! Reusable legalization workspace + deterministic parallel scanning.
//!
//! Mirrors the global placer's `PlacerWorkspace` (PR 2): every buffer the
//! three legalization phases need — the occupancy bitmap, the resonance
//! tracker's spatial grid, candidate/cluster/cost scratch — lives in one
//! [`LegalWorkspace`] that [`crate::Legalizer::run_with`] threads through
//! all phases. A steady-state legalization of the same netlist shape
//! performs **zero heap allocations**; a harness sweeping many jobs pays
//! the buffer build-out once.
//!
//! Parallelism follows the same discipline as the placer: candidate
//! *scoring* fans across the current rayon pool, candidate *selection*
//! always takes the lowest-index acceptable candidate, so results are
//! bit-identical at any thread count (asserted by the crate's
//! thread-determinism test).

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use qplacer_geometry::{Point, Rect, SpatialGrid, SpiralIter};
use qplacer_netlist::QuantumNetlist;

use crate::mcmf::AssignmentScratch;
use crate::resonance::ResonanceTracker;
use crate::OccupancyBitmap;

/// All buffers the legalization phases reuse across runs. Construct once
/// (cheap; nothing is sized until the first run) and pass to
/// [`crate::Legalizer::run_with`].
#[derive(Debug, Clone)]
pub struct LegalWorkspace {
    pub(crate) bitmap: OccupancyBitmap,
    pub(crate) tracker: ResonanceTracker,
    pub(crate) search: SearchScratch,
    pub(crate) qubits: QubitScratch,
    pub(crate) tetris: TetrisScratch,
    pub(crate) integ: IntegrationScratch,
    /// Distinct padded-footprint sizes (site-pitch derivation).
    pub(crate) sizes: Vec<f64>,
}

impl LegalWorkspace {
    /// An empty workspace; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for LegalWorkspace {
    fn default() -> Self {
        Self {
            bitmap: OccupancyBitmap::empty(),
            tracker: ResonanceTracker::empty(),
            search: SearchScratch::default(),
            qubits: QubitScratch::default(),
            tetris: TetrisScratch::default(),
            integ: IntegrationScratch::default(),
            sizes: Vec::new(),
        }
    }
}

/// Scratch shared by the candidate searches of phases 1 and 2.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchScratch {
    /// Spatial-grid query buffer (sequential scoring path).
    pub(crate) query: Vec<usize>,
    /// Current block of spiral candidates under scoring.
    pub(crate) block: Vec<Point>,
    /// Whether candidate scoring should fan across the rayon pool.
    /// Snapshotted once per run — `rayon::current_num_threads()` can hit
    /// an `available_parallelism` syscall, far too slow per candidate.
    pub(crate) parallel: bool,
}

impl SearchScratch {
    /// Snapshots the current rayon pool width into [`Self::parallel`].
    pub(crate) fn set_parallel_from_pool(&mut self) {
        self.parallel = rayon::current_num_threads() > 1;
    }
}

/// Phase-1 (qubit legalization) scratch.
#[derive(Debug, Clone, Default)]
pub(crate) struct QubitScratch {
    pub(crate) order: Vec<usize>,
    pub(crate) sites: Vec<Point>,
    /// Per-qubit displacement (mm), indexed by device qubit.
    pub(crate) displacement: Vec<f64>,
    /// Row-major flattened displacement cost matrix for the MCMF.
    pub(crate) costs: Vec<i64>,
    pub(crate) assignment: Vec<usize>,
    pub(crate) mcmf: AssignmentScratch,
}

/// Phase-2 (Tetris segment packing) scratch.
#[derive(Debug, Clone, Default)]
pub(crate) struct TetrisScratch {
    pub(crate) res_order: Vec<usize>,
    pub(crate) mean_x: Vec<f64>,
    pub(crate) chain: Vec<usize>,
    /// `(instance_id, displacement_mm)` per segment.
    pub(crate) displacement: Vec<(usize, f64)>,
}

/// Phase-3 (Algorithm-1 integration) scratch.
#[derive(Debug, Clone)]
pub(crate) struct IntegrationScratch {
    /// Spatial index of all instances (also reused for the final
    /// remaining-overlap count).
    pub(crate) grid: SpatialGrid,
    pub(crate) query: Vec<usize>,
    /// Union-find parents over one resonator's segments.
    pub(crate) parent: Vec<usize>,
    /// `(root, member index)` labels, sorted to group clusters.
    pub(crate) labels: Vec<(usize, usize)>,
    /// Segment ids grouped by cluster.
    pub(crate) members: Vec<usize>,
    /// `(start, end)` ranges into `members`, largest cluster first.
    pub(crate) clusters: Vec<(usize, usize)>,
    /// The largest cluster of the resonator under repair.
    pub(crate) cluster: Vec<usize>,
    /// Segments outside the largest cluster, nearest-centroid first.
    pub(crate) scattered: Vec<usize>,
    pub(crate) anchors: Vec<usize>,
    /// Relocation/swap candidate positions under scoring.
    pub(crate) cand: Vec<Point>,
}

impl Default for IntegrationScratch {
    fn default() -> Self {
        Self {
            grid: SpatialGrid::new(Rect::from_center(Point::ORIGIN, 1.0, 1.0), 1.0),
            query: Vec::new(),
            parent: Vec::new(),
            labels: Vec::new(),
            members: Vec::new(),
            clusters: Vec::new(),
            cluster: Vec::new(),
            scattered: Vec::new(),
            anchors: Vec::new(),
            cand: Vec::new(),
        }
    }
}

/// Index of the first candidate (in slice order) accepted by `accept`,
/// scored across the current rayon pool when it has more than one worker.
///
/// `accept` must be a pure read-only predicate of the candidate; the
/// `&mut Vec<usize>` it receives is query scratch (the caller's buffer on
/// the sequential path, a worker-local buffer on the parallel path).
/// Selection is always the *lowest* accepted index, so the result is
/// identical at any thread count.
pub(crate) fn first_accepted<T, A>(
    cands: &[T],
    query: &mut Vec<usize>,
    parallel: bool,
    accept: A,
) -> Option<usize>
where
    T: Sync,
    A: Fn(&T, &mut Vec<usize>) -> bool + Sync,
{
    if cands.is_empty() {
        return None;
    }
    // Small blocks (and single-worker pools) score sequentially with
    // early exit — equivalent to the minimum accepted index, without the
    // fan-out overhead. The threshold is deliberately high: the vendored
    // rayon spawns scoped OS threads per call, so a fan-out only pays for
    // itself on the large crowded-region blocks.
    if !parallel || cands.len() < 256 {
        return cands.iter().position(|c| accept(c, query));
    }
    std::thread_local! {
        /// Worker-local query buffer for the parallel scoring path —
        /// one allocation per worker thread, not per candidate.
        static WORKER_QUERY: std::cell::RefCell<Vec<usize>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let best = AtomicUsize::new(usize::MAX);
    (0..cands.len()).into_par_iter().for_each(|i| {
        // Cheap monotone skip: a candidate above the current best cannot
        // improve the minimum.
        if i < best.load(Ordering::Relaxed) {
            WORKER_QUERY.with(|q| {
                if accept(&cands[i], &mut q.borrow_mut()) {
                    best.fetch_min(i, Ordering::Relaxed);
                }
            });
        }
    });
    let i = best.load(Ordering::Relaxed);
    (i != usize::MAX).then_some(i)
}

/// Spiral candidate search around `desired` on the site lattice: yields
/// the first (ring-ordered) spot whose footprint fits inside `bound`, is
/// free in `bitmap`, and — when `strict` — passes the resonance τ check.
/// Candidates are scored in growing blocks via [`first_accepted`], so the
/// search parallelizes without changing its result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spiral_find(
    netlist: &QuantumNetlist,
    bitmap: &OccupancyBitmap,
    tracker: &ResonanceTracker,
    search: &mut SearchScratch,
    id: usize,
    desired: Point,
    site_pitch: f64,
    max_radius: i64,
    strict: bool,
    bound: &Rect,
) -> Option<Point> {
    let inst = *netlist.instance(id);
    let bound = bound.inflated(1e-9);
    let search_parallel = search.parallel;
    let SearchScratch { query, block, .. } = search;
    let mut spiral = SpiralIter::new(max_radius);
    // Start small (the common case hits within the first ring or two) and
    // grow geometrically so crowded regions amortize the scan overhead.
    let mut block_len = 64usize;
    loop {
        block.clear();
        for (dx, dy) in spiral.by_ref().take(block_len) {
            block.push(bitmap.snap_to_sites(
                Point::new(
                    desired.x + dx as f64 * site_pitch,
                    desired.y + dy as f64 * site_pitch,
                ),
                inst.padded_mm(),
                site_pitch,
            ));
        }
        if block.is_empty() {
            return None;
        }
        let hit = first_accepted(block, query, search_parallel, |cand: &Point, q| {
            let rect = inst.padded_rect(*cand);
            bound.contains_rect(&rect)
                && bitmap.is_free(&rect)
                && (!strict || tracker.is_clean_with(netlist, id, *cand, q))
        });
        if let Some(i) = hit {
            return Some(block[i]);
        }
        block_len = (block_len * 4).min(16_384);
    }
}

/// Counts instance pairs whose padded footprints overlap, using an
/// already-populated spatial `grid` (same predicate as
/// `QuantumNetlist::overlapping_pairs`, without rebuilding an index or
/// materializing the pair list).
pub(crate) fn count_overlaps(
    netlist: &QuantumNetlist,
    grid: &SpatialGrid,
    query: &mut Vec<usize>,
) -> usize {
    let mut count = 0;
    for inst in netlist.instances() {
        let id = inst.id();
        let r = netlist.padded_rect(id);
        grid.query_into(&r, query);
        for &other in query.iter() {
            if other > id && r.overlaps(&netlist.padded_rect(other)) {
                count += 1;
            }
        }
    }
    count
}
