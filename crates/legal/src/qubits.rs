//! Phase 1: qubit legalization (greedy spiral + min-cost-flow refinement).

use qplacer_geometry::{Point, SpiralIter};
use qplacer_netlist::QuantumNetlist;

use crate::mcmf::solve_assignment;
use crate::resonance::ResonanceTracker;
use crate::OccupancyBitmap;

/// Legalizes all qubits: finds non-overlapping, in-region positions near
/// their global-placement locations, then reassigns qubits to the found
/// site set with minimum total displacement. Marks the final footprints
/// into `bitmap` and registers them with `tracker`. Returns per-qubit
/// displacement (mm), indexed by device qubit.
///
/// Candidates live on the global site lattice (`site_pitch`), so qubit
/// and segment placements brick-pack without sub-site fragmentation. A
/// *strict* spiral pass skips spots that violate the resonant margin
/// against already-placed qubits (the legalization-side τ check); a
/// relaxed pass and an exhaustive scan guarantee feasibility.
///
/// # Panics
///
/// Panics if some qubit cannot be placed anywhere in the region (the
/// region is sized for ≤ 100 % utilization upstream, so this indicates a
/// configuration error).
pub fn legalize_qubits(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    tracker: &mut ResonanceTracker,
    site_pitch: f64,
) -> Vec<f64> {
    let num_qubits = netlist.num_qubits();
    if num_qubits == 0 {
        return Vec::new();
    }
    let region = netlist.region();
    let workspace = bitmap.region();

    // Process left-to-right for a deterministic, low-conflict order.
    let mut order: Vec<usize> = (0..num_qubits).collect();
    order.sort_by(|&a, &b| {
        let pa = netlist.position(netlist.qubit_instance(a));
        let pb = netlist.position(netlist.qubit_instance(b));
        (pa.x, pa.y)
            .partial_cmp(&(pb.x, pb.y))
            .expect("finite positions")
    });

    // Greedy spiral: collect one feasible site per qubit (strict pass
    // first, then relaxed).
    let mut sites: Vec<Point> = Vec::with_capacity(num_qubits);
    for &q in &order {
        let id = netlist.qubit_instance(q);
        let inst = *netlist.instance(id);
        let desired = inst
            .padded_rect(Point::ORIGIN)
            .clamp_center_into(&region, netlist.position(id));
        let max_radius =
            ((region.width().max(region.height()) / site_pitch).ceil() as i64).max(1) * 2;
        let spiral = |strict: bool,
                      bitmap: &OccupancyBitmap,
                      tracker: &ResonanceTracker,
                      netlist: &QuantumNetlist|
         -> Option<Point> {
            for (dx, dy) in SpiralIter::new(max_radius) {
                let cand = bitmap.snap_to_sites(
                    Point::new(
                        desired.x + dx as f64 * site_pitch,
                        desired.y + dy as f64 * site_pitch,
                    ),
                    inst.padded_mm(),
                    site_pitch,
                );
                let rect = inst.padded_rect(cand);
                // The strict pass must stay inside the sized region —
                // isolation is not allowed to grow the substrate; only the
                // relaxed pass may use the feasibility spill ring.
                let bound = if strict { &region } else { &workspace };
                if bound.inflated(1e-9).contains_rect(&rect)
                    && bitmap.is_free(&rect)
                    && (!strict || tracker.is_clean(netlist, id, cand))
                {
                    return Some(cand);
                }
            }
            None
        };
        let site = spiral(true, bitmap, tracker, netlist)
            .or_else(|| spiral(false, bitmap, tracker, netlist))
            .or_else(|| {
                bitmap.find_nearest_free(inst.padded_mm(), inst.padded_mm(), desired, site_pitch)
            })
            .unwrap_or_else(|| panic!("no legal site for qubit {q}; region too small"));
        bitmap.mark(&inst.padded_rect(site));
        tracker.place(netlist, id, site);
        sites.push(site);
    }

    // Min-cost-flow refinement: optimally re-match qubits to the site set
    // (§IV-C2's displacement minimization). Costs are Manhattan
    // displacements in micrometers.
    let costs: Vec<Vec<i64>> = order
        .iter()
        .map(|&q| {
            let want = netlist.position(netlist.qubit_instance(q));
            sites
                .iter()
                .map(|s| (want.manhattan(*s) * 1000.0).round() as i64)
                .collect()
        })
        .collect();
    let assignment = solve_assignment(&costs);

    // The permutation could undo the strict pass's isolation; accept it
    // only if it does not increase resonant-margin violations among
    // qubits.
    let violations_of = |mapping: &dyn Fn(usize) -> Point| -> usize {
        let mut count = 0;
        let dc = netlist.detuning_threshold() * 0.999;
        let margin = tracker.margin();
        for (ra, &qa) in order.iter().enumerate() {
            for (rb, &qb) in order.iter().enumerate().skip(ra + 1) {
                let ia = netlist.qubit_instance(qa);
                let ib = netlist.qubit_instance(qb);
                let fa = netlist.instance(ia).frequency();
                let fb = netlist.instance(ib).frequency();
                if !fa.is_resonant_with(fb, dc) {
                    continue;
                }
                let a = netlist
                    .instance(ia)
                    .padded_rect(mapping(ra))
                    .inflated(0.5 * margin);
                let b = netlist
                    .instance(ib)
                    .padded_rect(mapping(rb))
                    .inflated(0.5 * margin);
                if a.overlaps(&b) {
                    count += 1;
                }
            }
        }
        count
    };
    let greedy_viol = violations_of(&|rank| sites[rank]);
    let mcmf_viol = violations_of(&|rank| sites[assignment[rank]]);
    let use_mcmf = mcmf_viol <= greedy_viol;

    let mut displacement = vec![0.0; num_qubits];
    for (rank, &q) in order.iter().enumerate() {
        let id = netlist.qubit_instance(q);
        let before = netlist.position(id);
        let site = if use_mcmf {
            sites[assignment[rank]]
        } else {
            sites[rank]
        };
        // Re-register at the final spot.
        tracker.unplace(netlist, id, sites[rank]);
        netlist.set_position(id, site);
        tracker.place(netlist, id, site);
        displacement[q] = before.distance(site);
    }
    displacement
}

#[cfg(test)]
mod tests {
    use super::*;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::NetlistConfig;
    use qplacer_topology::Topology;

    fn netlist(t: &Topology) -> QuantumNetlist {
        let freqs = FrequencyAssigner::paper_defaults().assign(t);
        QuantumNetlist::build(t, &freqs, &NetlistConfig::default())
    }

    fn run(nl: &mut QuantumNetlist) -> Vec<f64> {
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let mut tracker = ResonanceTracker::new(nl, 0.3);
        legalize_qubits(nl, &mut bm, &mut tracker, 0.4)
    }

    #[test]
    fn qubits_end_up_disjoint_and_inside() {
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        let disp = run(&mut nl);
        assert_eq!(disp.len(), 9);
        for a in 0..9 {
            let ra = nl.padded_rect(nl.qubit_instance(a));
            assert!(nl.region().inflated(1e-6).contains_rect(&ra));
            for b in a + 1..9 {
                let rb = nl.padded_rect(nl.qubit_instance(b));
                assert!(!ra.overlaps(&rb), "qubits {a} and {b} overlap");
            }
        }
    }

    #[test]
    fn already_legal_layout_barely_moves() {
        let t = Topology::grid(2, 2);
        let mut nl = netlist(&t);
        // Hand-place the 4 qubits on a legal lattice.
        let pitch = 1.3;
        for q in 0..4 {
            let id = nl.qubit_instance(q);
            nl.set_position(
                id,
                Point::new((q % 2) as f64 * pitch - 0.65, (q / 2) as f64 * pitch - 0.65),
            );
        }
        let disp = run(&mut nl);
        for (q, d) in disp.iter().enumerate() {
            assert!(*d < 0.6, "qubit {q} moved {d} mm from a legal spot");
        }
    }

    #[test]
    fn stacked_qubits_get_separated() {
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        for q in 0..9 {
            let id = nl.qubit_instance(q);
            nl.set_position(id, Point::ORIGIN);
        }
        let _ = run(&mut nl);
        let mut positions: Vec<Point> = (0..9).map(|q| nl.position(nl.qubit_instance(q))).collect();
        positions.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        positions.dedup_by(|a, b| a.distance(*b) < 1e-9);
        assert_eq!(positions.len(), 9, "all qubits at distinct positions");
    }

    #[test]
    fn strict_pass_isolates_resonant_qubits_when_space_allows() {
        // Stack everything; with ample region space the strict pass should
        // keep same-slot qubits at least margin apart.
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        for q in 0..9 {
            nl.set_position(nl.qubit_instance(q), Point::ORIGIN);
        }
        let _ = run(&mut nl);
        let dc = nl.detuning_threshold() * 0.999;
        let mut violations = 0;
        for a in 0..9 {
            for b in a + 1..9 {
                let ia = nl.qubit_instance(a);
                let ib = nl.qubit_instance(b);
                if nl
                    .instance(ia)
                    .frequency()
                    .is_resonant_with(nl.instance(ib).frequency(), dc)
                {
                    let ra = nl.padded_rect(ia).inflated(0.15);
                    let rb = nl.padded_rect(ib).inflated(0.15);
                    if ra.overlaps(&rb) {
                        violations += 1;
                    }
                }
            }
        }
        assert_eq!(violations, 0, "resonant qubits legalized adjacently");
    }
}
