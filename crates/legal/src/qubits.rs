//! Phase 1: qubit legalization (greedy spiral + min-cost-flow refinement).

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use qplacer_geometry::Point;
use qplacer_netlist::QuantumNetlist;

use crate::mcmf::solve_assignment_into;
use crate::resonance::ResonanceTracker;
use crate::workspace::{spiral_find, QubitScratch, SearchScratch};
use crate::OccupancyBitmap;

/// Legalizes all qubits: finds non-overlapping, in-region positions near
/// their global-placement locations, then reassigns qubits to the found
/// site set with minimum total displacement. Marks the final footprints
/// into `bitmap` and registers them with `tracker`. Returns per-qubit
/// displacement (mm), indexed by device qubit.
///
/// Allocating convenience wrapper around [`legalize_qubits_with`].
///
/// # Panics
///
/// Panics if some qubit cannot be placed anywhere in the region (the
/// region is sized for ≤ 100 % utilization upstream, so this indicates a
/// configuration error).
#[cfg_attr(not(test), allow(dead_code))]
pub fn legalize_qubits(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    tracker: &mut ResonanceTracker,
    site_pitch: f64,
) -> Vec<f64> {
    let mut search = SearchScratch::default();
    search.set_parallel_from_pool();
    let mut scratch = QubitScratch::default();
    legalize_qubits_with(
        netlist,
        bitmap,
        tracker,
        site_pitch,
        &mut search,
        &mut scratch,
        None,
    );
    scratch.displacement
}

/// Workspace-threaded qubit legalization: identical semantics to
/// [`legalize_qubits`], but every buffer (ordering, sites, MCMF network,
/// spiral blocks) comes from the caller's scratch, so steady-state runs
/// allocate nothing. Per-qubit displacements land in
/// `scratch.displacement`.
///
/// Candidates live on the global site lattice (`site_pitch`), so qubit
/// and segment placements brick-pack without sub-site fragmentation. A
/// *strict* spiral pass skips spots that violate the resonant margin
/// against already-placed qubits (the legalization-side τ check); a
/// relaxed pass and an exhaustive scan guarantee feasibility. Candidate
/// scoring fans across the rayon pool; the chosen spot is always the
/// ring-order-first acceptable one, so results are thread-count
/// independent.
///
/// With a `pinned` instance mask (incremental path), pinned qubits are
/// never moved — the caller must have pre-marked their footprints into
/// `bitmap` and registered them with `tracker`, so they act as fixed
/// obstacles for the spiral search and the strict τ pass. Only unpinned
/// qubits are ordered, placed, and refined; their MCMF runs over the
/// unpinned site set alone.
#[allow(clippy::too_many_arguments)]
pub(crate) fn legalize_qubits_with(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    tracker: &mut ResonanceTracker,
    site_pitch: f64,
    search: &mut SearchScratch,
    scratch: &mut QubitScratch,
    pinned: Option<&[bool]>,
) {
    let num_qubits = netlist.num_qubits();
    let QubitScratch {
        order,
        sites,
        displacement,
        costs,
        assignment,
        mcmf,
    } = scratch;
    displacement.clear();
    displacement.resize(num_qubits, 0.0);
    if num_qubits == 0 {
        return;
    }
    let region = netlist.region();
    let workspace = bitmap.region();
    let parallel = search.parallel;

    // Process left-to-right for a deterministic, low-conflict order.
    // Lexicographic total_cmp keeps the order total even when a position
    // has gone NaN upstream (a NaN coordinate must degrade gracefully,
    // not panic mid-legalization).
    order.clear();
    order
        .extend((0..num_qubits).filter(|&q| !pinned.is_some_and(|p| p[netlist.qubit_instance(q)])));
    order.sort_unstable_by(|&a, &b| {
        let pa = netlist.position(netlist.qubit_instance(a));
        let pb = netlist.position(netlist.qubit_instance(b));
        pa.x.total_cmp(&pb.x).then(pa.y.total_cmp(&pb.y))
    });
    let movable = order.len();
    if movable == 0 {
        return;
    }

    // Greedy spiral: collect one feasible site per qubit (strict pass
    // first, then relaxed).
    sites.clear();
    for &q in order.iter() {
        let id = netlist.qubit_instance(q);
        let inst = *netlist.instance(id);
        let mut desired = inst
            .padded_rect(Point::ORIGIN)
            .clamp_center_into(&region, netlist.position(id));
        if !desired.x.is_finite() || !desired.y.is_finite() {
            // A non-finite global position (upstream numerical blow-up)
            // would poison every spiral candidate; anchor the search at
            // the region center instead.
            desired = region.center();
        }
        let max_radius =
            ((region.width().max(region.height()) / site_pitch).ceil() as i64).max(1) * 2;
        // The strict pass must stay inside the sized region — isolation
        // is not allowed to grow the substrate; only the relaxed pass may
        // use the feasibility spill ring.
        let site = spiral_find(
            netlist, bitmap, tracker, search, id, desired, site_pitch, max_radius, true, &region,
        )
        .or_else(|| {
            spiral_find(
                netlist, bitmap, tracker, search, id, desired, site_pitch, max_radius, false,
                &workspace,
            )
        })
        .or_else(|| {
            bitmap.find_nearest_free(inst.padded_mm(), inst.padded_mm(), desired, site_pitch)
        })
        .unwrap_or_else(|| panic!("no legal site for qubit {q}; region too small"));
        bitmap.mark(&inst.padded_rect(site));
        tracker.place(netlist, id, site);
        sites.push(site);
    }

    // Min-cost-flow refinement: optimally re-match qubits to the site set
    // (§IV-C2's displacement minimization). Costs are Manhattan
    // displacements in micrometers.
    costs.clear();
    for &q in order.iter() {
        let want = netlist.position(netlist.qubit_instance(q));
        for s in sites.iter() {
            costs.push((want.manhattan(*s) * 1000.0).round() as i64);
        }
    }
    solve_assignment_into(costs, movable, movable, mcmf, assignment);

    // The permutation could undo the strict pass's isolation; accept it
    // only if it does not increase resonant-margin violations among
    // qubits.
    let violations_of = |mapping: &(dyn Fn(usize) -> Point + Sync)| -> usize {
        let dc = netlist.detuning_threshold() * 0.999;
        let margin = tracker.margin();
        let row = |ra: usize| -> usize {
            let qa = order[ra];
            let mut count = 0;
            for (rb, &qb) in order.iter().enumerate().skip(ra + 1) {
                let ia = netlist.qubit_instance(qa);
                let ib = netlist.qubit_instance(qb);
                let fa = netlist.instance(ia).frequency();
                let fb = netlist.instance(ib).frequency();
                if !fa.is_resonant_with(fb, dc) {
                    continue;
                }
                let a = netlist
                    .instance(ia)
                    .padded_rect(mapping(ra))
                    .inflated(0.5 * margin);
                let b = netlist
                    .instance(ib)
                    .padded_rect(mapping(rb))
                    .inflated(0.5 * margin);
                if a.overlaps(&b) {
                    count += 1;
                }
            }
            count
        };
        // Row counts are independent; the total is order-free, so the
        // parallel path is bit-identical to the sequential one.
        if !parallel {
            (0..movable).map(row).sum()
        } else {
            let total = AtomicUsize::new(0);
            (0..movable).into_par_iter().for_each(|ra| {
                total.fetch_add(row(ra), Ordering::Relaxed);
            });
            total.into_inner()
        }
    };
    let greedy_viol = violations_of(&|rank| sites[rank]);
    let mcmf_viol = violations_of(&|rank| sites[assignment[rank]]);
    let use_mcmf = mcmf_viol <= greedy_viol;

    for (rank, &q) in order.iter().enumerate() {
        let id = netlist.qubit_instance(q);
        let before = netlist.position(id);
        let site = if use_mcmf {
            sites[assignment[rank]]
        } else {
            sites[rank]
        };
        // Re-register at the final spot.
        tracker.unplace(netlist, id, sites[rank]);
        netlist.set_position(id, site);
        tracker.place(netlist, id, site);
        displacement[q] = before.distance(site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::NetlistConfig;
    use qplacer_topology::Topology;

    fn netlist(t: &Topology) -> QuantumNetlist {
        let freqs = FrequencyAssigner::paper_defaults().assign(t);
        QuantumNetlist::build(t, &freqs, &NetlistConfig::default())
    }

    fn run(nl: &mut QuantumNetlist) -> Vec<f64> {
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let mut tracker = ResonanceTracker::new(nl, 0.3);
        legalize_qubits(nl, &mut bm, &mut tracker, 0.4)
    }

    #[test]
    fn qubits_end_up_disjoint_and_inside() {
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        let disp = run(&mut nl);
        assert_eq!(disp.len(), 9);
        for a in 0..9 {
            let ra = nl.padded_rect(nl.qubit_instance(a));
            assert!(nl.region().inflated(1e-6).contains_rect(&ra));
            for b in a + 1..9 {
                let rb = nl.padded_rect(nl.qubit_instance(b));
                assert!(!ra.overlaps(&rb), "qubits {a} and {b} overlap");
            }
        }
    }

    #[test]
    fn already_legal_layout_barely_moves() {
        let t = Topology::grid(2, 2);
        let mut nl = netlist(&t);
        // Hand-place the 4 qubits on a legal lattice.
        let pitch = 1.3;
        for q in 0..4 {
            let id = nl.qubit_instance(q);
            nl.set_position(
                id,
                Point::new((q % 2) as f64 * pitch - 0.65, (q / 2) as f64 * pitch - 0.65),
            );
        }
        let disp = run(&mut nl);
        for (q, d) in disp.iter().enumerate() {
            assert!(*d < 0.6, "qubit {q} moved {d} mm from a legal spot");
        }
    }

    #[test]
    fn stacked_qubits_get_separated() {
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        for q in 0..9 {
            let id = nl.qubit_instance(q);
            nl.set_position(id, Point::ORIGIN);
        }
        let _ = run(&mut nl);
        let mut positions: Vec<Point> = (0..9).map(|q| nl.position(nl.qubit_instance(q))).collect();
        positions.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        positions.dedup_by(|a, b| a.distance(*b) < 1e-9);
        assert_eq!(positions.len(), 9, "all qubits at distinct positions");
    }

    #[test]
    fn nan_position_degrades_gracefully() {
        // A NaN coordinate must not panic the legalizer; the affected
        // qubit falls back to a region-center search and everything still
        // ends up disjoint, in-region, and finite.
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        nl.set_position(nl.qubit_instance(4), Point::new(f64::NAN, 0.3));
        let _ = run(&mut nl);
        for q in 0..9 {
            let p = nl.position(nl.qubit_instance(q));
            assert!(p.x.is_finite() && p.y.is_finite(), "qubit {q} at {p}");
        }
        for a in 0..9 {
            let ra = nl.padded_rect(nl.qubit_instance(a));
            for b in a + 1..9 {
                let rb = nl.padded_rect(nl.qubit_instance(b));
                assert!(!ra.overlaps(&rb), "qubits {a} and {b} overlap");
            }
        }
    }

    #[test]
    fn strict_pass_isolates_resonant_qubits_when_space_allows() {
        // Stack everything; with ample region space the strict pass should
        // keep same-slot qubits at least margin apart.
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        for q in 0..9 {
            nl.set_position(nl.qubit_instance(q), Point::ORIGIN);
        }
        let _ = run(&mut nl);
        let dc = nl.detuning_threshold() * 0.999;
        let mut violations = 0;
        for a in 0..9 {
            for b in a + 1..9 {
                let ia = nl.qubit_instance(a);
                let ib = nl.qubit_instance(b);
                if nl
                    .instance(ia)
                    .frequency()
                    .is_resonant_with(nl.instance(ib).frequency(), dc)
                {
                    let ra = nl.padded_rect(ia).inflated(0.15);
                    let rb = nl.padded_rect(ib).inflated(0.15);
                    if ra.overlaps(&rb) {
                        violations += 1;
                    }
                }
            }
        }
        assert_eq!(violations, 0, "resonant qubits legalized adjacently");
    }
}
