//! Min-cost max-flow via successive shortest paths.
//!
//! Used by the qubit legalizer's displacement-refinement step (§IV-C2,
//! citing Tang et al.'s min-cost-flow white-space redistribution): after
//! the greedy spiral pass finds *feasible* sites, an assignment problem —
//! qubits to sites, cost = displacement — is solved exactly with this
//! solver.
//!
//! The implementation is the classic successive-shortest-path algorithm
//! with SPFA (Bellman–Ford queue) distances, which handles the zero/
//! positive integer costs produced by the legalizer. Sizes are tiny
//! (≤ 127 qubits), so asymptotics are irrelevant; correctness is
//! property-tested against brute force.

/// A directed flow network with costs.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<usize>>, // adjacency: node -> edge ids
    to: Vec<usize>,
    cap: Vec<i64>,
    cost: Vec<i64>,
}

impl MinCostFlow {
    /// Creates a network with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            graph: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` and unit cost
    /// `cost`; a residual reverse edge is added automatically. Returns the
    /// edge id (use `edge_flow` after solving).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or negative capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> usize {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "node out of range"
        );
        assert!(cap >= 0, "capacity must be non-negative");
        let id = self.to.len();
        self.graph[from].push(id);
        self.to.push(to);
        self.cap.push(cap);
        self.cost.push(cost);
        self.graph[to].push(id + 1);
        self.to.push(from);
        self.cap.push(0);
        self.cost.push(-cost);
        id
    }

    /// Flow currently routed through edge `id` (forward edges only).
    #[must_use]
    pub fn edge_flow(&self, id: usize) -> i64 {
        // Flow on the forward edge equals residual capacity of its twin.
        self.cap[id ^ 1]
    }

    /// Sends up to `limit` units from `source` to `sink` at minimum cost.
    /// Returns `(flow, cost)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints.
    pub fn solve(&mut self, source: usize, sink: usize, limit: i64) -> (i64, i64) {
        assert!(source < self.graph.len() && sink < self.graph.len());
        let n = self.graph.len();
        let mut flow = 0i64;
        let mut total_cost = 0i64;
        while flow < limit {
            // SPFA shortest path on residual graph.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[source] = 0;
            let mut queue = std::collections::VecDeque::from([source]);
            in_queue[source] = true;
            while let Some(v) = queue.pop_front() {
                in_queue[v] = false;
                for &e in &self.graph[v] {
                    if self.cap[e] > 0 && dist[v] != i64::MAX {
                        let u = self.to[e];
                        let nd = dist[v] + self.cost[e];
                        if nd < dist[u] {
                            dist[u] = nd;
                            prev_edge[u] = e;
                            if !in_queue[u] {
                                queue.push_back(u);
                                in_queue[u] = true;
                            }
                        }
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break; // no augmenting path
            }
            // Bottleneck along the path.
            let mut push = limit - flow;
            let mut v = sink;
            while v != source {
                let e = prev_edge[v];
                push = push.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let e = prev_edge[v];
                self.cap[e] -= push;
                self.cap[e ^ 1] += push;
                v = self.to[e ^ 1];
            }
            flow += push;
            total_cost += push * dist[sink];
        }
        (flow, total_cost)
    }
}

/// Solves the assignment of `n` agents to `m ≥ n` sites with the given
/// cost matrix (`costs[agent][site]`), returning for each agent its
/// assigned site, minimizing total cost.
///
/// # Panics
///
/// Panics if `m < n` or the cost matrix is ragged.
///
/// # Examples
///
/// ```
/// use qplacer_legal::mcmf::solve_assignment;
/// let costs = vec![vec![10, 1], vec![1, 10]];
/// assert_eq!(solve_assignment(&costs), vec![1, 0]);
/// ```
#[must_use]
pub fn solve_assignment(costs: &[Vec<i64>]) -> Vec<usize> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let m = costs[0].len();
    for row in costs {
        assert_eq!(row.len(), m, "ragged cost matrix");
    }
    let mut flat = Vec::with_capacity(n * m);
    for row in costs {
        flat.extend_from_slice(row);
    }
    let mut scratch = AssignmentScratch::default();
    let mut out = Vec::new();
    solve_assignment_into(&flat, n, m, &mut scratch, &mut out);
    out
}

/// Reusable buffers for [`solve_assignment_into`]: the Hungarian
/// algorithm's potentials, matching, and per-column state. A workspace
/// that keeps one of these across runs pays no allocations for repeat
/// solves of the same problem shape.
#[derive(Debug, Clone, Default)]
pub struct AssignmentScratch {
    /// Row (agent) potentials, 1-based with a virtual row 0.
    u: Vec<i64>,
    /// Column (site) potentials, 1-based with a virtual column 0.
    v: Vec<i64>,
    /// `matched_row[j]` — agent matched to site `j` (0 = unmatched).
    matched_row: Vec<usize>,
    /// Alternating-path predecessor column per column.
    way: Vec<usize>,
    /// Minimum reduced cost seen per column this augmentation.
    minv: Vec<i64>,
    /// Columns already in the alternating tree.
    used: Vec<bool>,
}

/// [`solve_assignment`] over a row-major flattened `n × m` cost matrix,
/// writing the per-agent site indices into `out` (cleared first) and
/// reusing `scratch` buffers across calls.
///
/// The solver is the classic O(n²·m) Hungarian algorithm with potentials
/// (shortest augmenting paths on the dense reduced-cost matrix) — an
/// order of magnitude faster on the legalizer's dense qubit↔site
/// instances than the successive-shortest-path flow it replaced, with the
/// same optimal total cost. Ties are broken by lowest column index, so
/// the result is deterministic.
///
/// # Panics
///
/// Panics if `costs.len() != n * m` or `m < n`.
pub fn solve_assignment_into(
    costs: &[i64],
    n: usize,
    m: usize,
    scratch: &mut AssignmentScratch,
    out: &mut Vec<usize>,
) {
    out.clear();
    if n == 0 {
        return;
    }
    assert!(m >= n, "need at least as many sites as agents");
    assert_eq!(costs.len(), n * m, "flattened cost matrix shape mismatch");

    scratch.u.clear();
    scratch.u.resize(n + 1, 0);
    scratch.v.clear();
    scratch.v.resize(m + 1, 0);
    scratch.matched_row.clear();
    scratch.matched_row.resize(m + 1, 0);
    scratch.way.clear();
    scratch.way.resize(m + 1, 0);

    for i in 1..=n {
        // Grow an alternating tree from row i until a free column is
        // reached, updating potentials so every tree edge stays tight.
        scratch.matched_row[0] = i;
        let mut j0 = 0usize;
        scratch.minv.clear();
        scratch.minv.resize(m + 1, i64::MAX);
        scratch.used.clear();
        scratch.used.resize(m + 1, false);
        loop {
            scratch.used[j0] = true;
            let i0 = scratch.matched_row[j0];
            let mut delta = i64::MAX;
            let mut j1 = 0usize;
            let row = &costs[(i0 - 1) * m..i0 * m];
            for j in 1..=m {
                if scratch.used[j] {
                    continue;
                }
                let cur = row[j - 1] - scratch.u[i0] - scratch.v[j];
                if cur < scratch.minv[j] {
                    scratch.minv[j] = cur;
                    scratch.way[j] = j0;
                }
                if scratch.minv[j] < delta {
                    delta = scratch.minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if scratch.used[j] {
                    scratch.u[scratch.matched_row[j]] += delta;
                    scratch.v[j] -= delta;
                } else {
                    scratch.minv[j] -= delta;
                }
            }
            j0 = j1;
            if scratch.matched_row[j0] == 0 {
                break;
            }
        }
        // Flip the alternating path.
        loop {
            let j1 = scratch.way[j0];
            scratch.matched_row[j0] = scratch.matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    out.resize(n, usize::MAX);
    for j in 1..=m {
        let i = scratch.matched_row[j];
        if i > 0 {
            out[i - 1] = j - 1;
        }
    }
    debug_assert!(out.iter().all(|&s| s != usize::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_max_flow() {
        let mut net = MinCostFlow::new(4);
        net.add_edge(0, 1, 2, 1);
        net.add_edge(0, 2, 1, 2);
        net.add_edge(1, 3, 1, 1);
        net.add_edge(2, 3, 2, 1);
        let (flow, cost) = net.solve(0, 3, 10);
        assert_eq!(flow, 2);
        // Paths: 0-1-3 (cost 2) and 0-2-3 (cost 3).
        assert_eq!(cost, 5);
    }

    #[test]
    fn respects_limit() {
        let mut net = MinCostFlow::new(2);
        net.add_edge(0, 1, 100, 1);
        let (flow, cost) = net.solve(0, 1, 3);
        assert_eq!((flow, cost), (3, 3));
    }

    #[test]
    fn picks_cheap_path_first() {
        let mut net = MinCostFlow::new(3);
        net.add_edge(0, 1, 1, 10);
        net.add_edge(0, 2, 1, 1);
        net.add_edge(2, 1, 1, 1);
        let (flow, cost) = net.solve(0, 1, 1);
        assert_eq!((flow, cost), (1, 2));
    }

    #[test]
    fn assignment_identity_when_diagonal_cheap() {
        let costs = vec![vec![0, 5, 5], vec![5, 0, 5], vec![5, 5, 0]];
        assert_eq!(solve_assignment(&costs), vec![0, 1, 2]);
    }

    #[test]
    fn assignment_uses_spare_sites() {
        // 2 agents, 3 sites; middle site is expensive for both.
        let costs = vec![vec![1, 50, 9], vec![9, 50, 1]];
        assert_eq!(solve_assignment(&costs), vec![0, 2]);
    }

    fn brute_force(costs: &[Vec<i64>]) -> i64 {
        // Try all site permutations of size n (small cases only).
        fn rec(costs: &[Vec<i64>], used: &mut Vec<bool>, a: usize) -> i64 {
            if a == costs.len() {
                return 0;
            }
            let mut best = i64::MAX;
            for s in 0..used.len() {
                if !used[s] {
                    used[s] = true;
                    let rest = rec(costs, used, a + 1);
                    if rest != i64::MAX {
                        best = best.min(costs[a][s] + rest);
                    }
                    used[s] = false;
                }
            }
            best
        }
        let mut used = vec![false; costs[0].len()];
        rec(costs, &mut used, 0)
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_instances() {
        // Deterministic pseudo-random costs.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as i64
        };
        for trial in 0..20 {
            let n = 2 + (trial % 4);
            let m = n + (trial % 3);
            let costs: Vec<Vec<i64>> = (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
            let assignment = solve_assignment(&costs);
            let got: i64 = assignment
                .iter()
                .enumerate()
                .map(|(a, &s)| costs[a][s])
                .sum();
            // All sites distinct.
            let distinct: std::collections::HashSet<_> = assignment.iter().collect();
            assert_eq!(distinct.len(), n);
            assert_eq!(got, brute_force(&costs), "trial {trial}");
        }
    }

    #[test]
    #[should_panic(expected = "at least as many sites")]
    fn too_few_sites_panics() {
        let _ = solve_assignment(&[vec![1], vec![2]]);
    }
}
