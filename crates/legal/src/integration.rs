//! Phase 3: resonator integration (Algorithm 1).
//!
//! A resonator is *integrated* when its segments form one contiguous
//! cluster, so the physical meander can be re-routed through the reserved
//! blocks (§IV-B2). For each failing resonator the algorithm grows the
//! largest segment cluster by (a) relocating scattered segments into free
//! spots adjacent to the cluster, or failing that (b) swapping them with
//! neighboring segments of *other* resonators, gated by the resonance
//! checker τ so a swap never parks a segment next to near-resonant
//! neighbors.
//!
//! Relocation/swap candidates are scored read-only (via
//! [`OccupancyBitmap::is_free_except`], which answers "free once I move"
//! without mutating the bitmap) and the first acceptable candidate in
//! deterministic order is applied. The candidate lists are small (at
//! most 8 anchors × 8 offsets), so the scan runs sequentially — the
//! read-only scoring is what keeps it cheap, not a fan-out.

use qplacer_geometry::{Point, Rect, SpatialGrid};
use qplacer_netlist::QuantumNetlist;

use crate::workspace::{first_accepted, IntegrationScratch};
use crate::OccupancyBitmap;

/// Two same-resonator segments count as connected when their centers are
/// within this factor of the padded footprint side.
pub(crate) const ADJACENCY_FACTOR: f64 = 1.45;

/// Outcome of the integration phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrationStats {
    /// Resonators already integrated after Tetris.
    pub integrated_before: usize,
    /// Resonators integrated when the phase finished.
    pub integrated_after: usize,
    /// Segments relocated into free space.
    pub moved: usize,
    /// Segment pairs swapped.
    pub swapped: usize,
    /// Resonator indices that remain fragmented.
    pub unintegrated: Vec<usize>,
}

/// Cluster decomposition of one resonator's segments into
/// `scratch.members` (segment ids, grouped) and `scratch.clusters`
/// (ranges into `members`), largest cluster first, ties by smallest
/// member id. Zero allocations at steady state.
pub(crate) fn clusters_into(
    netlist: &QuantumNetlist,
    resonator: usize,
    scratch: &mut IntegrationScratch,
) {
    let segs = netlist.resonator_segments(resonator);
    let k = segs.len();
    let IntegrationScratch {
        parent,
        labels,
        members,
        clusters,
        ..
    } = scratch;
    parent.clear();
    parent.extend(0..k);
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        let pi = netlist.position(segs[i]);
        let reach = ADJACENCY_FACTOR * netlist.instance(segs[i]).padded_mm();
        for j in i + 1..k {
            if pi.distance(netlist.position(segs[j])) <= reach {
                let (a, b) = (find(parent, i), find(parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    // Group by root: label every member, sort, cut into ranges.
    labels.clear();
    for i in 0..k {
        labels.push((find(parent, i), i));
    }
    labels.sort_unstable();
    members.clear();
    clusters.clear();
    let mut start = 0;
    for idx in 0..k {
        members.push(segs[labels[idx].1]);
        if idx + 1 == k || labels[idx + 1].0 != labels[idx].0 {
            clusters.push((start, idx + 1));
            start = idx + 1;
        }
    }
    for &(s, e) in clusters.iter() {
        members[s..e].sort_unstable();
    }
    // Deterministic order: largest first, ties by smallest member id
    // (grouping order must never leak into placement decisions).
    clusters.sort_unstable_by_key(|&(s, e)| (std::cmp::Reverse(e - s), members[s]));
}

/// Union-find cluster decomposition of one resonator's segments; returns
/// segment-id clusters, largest first. Allocating convenience wrapper
/// around [`clusters_into`].
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn clusters_of(netlist: &QuantumNetlist, resonator: usize) -> Vec<Vec<usize>> {
    let mut scratch = IntegrationScratch::default();
    clusters_into(netlist, resonator, &mut scratch);
    scratch
        .clusters
        .iter()
        .map(|&(s, e)| scratch.members[s..e].to_vec())
        .collect()
}

/// `rilc(·)` of Algorithm 1: is the resonator one contiguous cluster?
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn is_integrated(netlist: &QuantumNetlist, resonator: usize) -> bool {
    clusters_of(netlist, resonator).len() <= 1
}

/// Runs Algorithm 1 over every resonator. `bitmap` must reflect the
/// current (legalized) footprints. Allocating convenience wrapper around
/// [`integrate_resonators_with`].
#[cfg_attr(not(test), allow(dead_code))]
pub fn integrate_resonators(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
) -> IntegrationStats {
    let site_pitch = crate::legalizer::site_pitch(netlist);
    let mut scratch = IntegrationScratch::default();
    integrate_resonators_with(netlist, bitmap, site_pitch, &mut scratch, None)
}

/// Workspace-threaded Algorithm 1: identical semantics to
/// [`integrate_resonators`], with the spatial index and all cluster/
/// candidate buffers drawn from the caller's scratch. On return,
/// `scratch.grid` indexes every instance at its final position (the
/// legalizer reuses it for the remaining-overlap count). Steady-state
/// runs allocate nothing beyond the `unintegrated` list, which stays
/// empty whenever integration succeeds.
///
/// With a `pinned` instance mask (incremental path), repair passes run
/// only over resonators with at least one unpinned segment, pinned
/// segments are never relocated, and swaps never pick a pinned victim.
/// The integration statistics still cover every resonator.
pub(crate) fn integrate_resonators_with(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    site_pitch: f64,
    scratch: &mut IntegrationScratch,
    pinned: Option<&[bool]>,
) -> IntegrationStats {
    let num_res = netlist.num_resonators();

    // Spatial index of all instances for neighbor/occupancy queries.
    let region = netlist.region();
    scratch.grid.reset(
        region.inflated(netlist.max_padded_side()),
        netlist.max_padded_side().max(0.1),
    );
    for inst in netlist.instances() {
        scratch
            .grid
            .insert(inst.id(), &netlist.padded_rect(inst.id()));
    }

    let mut integrated_before = 0;
    for r in 0..num_res {
        clusters_into(netlist, r, scratch);
        if scratch.clusters.len() <= 1 {
            integrated_before += 1;
        }
    }

    let mut moved = 0usize;
    let mut swapped = 0usize;
    let mut unintegrated = Vec::new();

    for r in 0..num_res {
        // Clean resonators (every segment pinned) are never repaired;
        // they were integrated by the run that produced the warm seed.
        let clean = pinned.is_some_and(|p| netlist.resonator_segments(r).iter().all(|&id| p[id]));
        if !clean {
            // A few growth passes per resonator; each pass merges at
            // least one scattered segment or gives up.
            for _pass in 0..netlist.resonator_segments(r).len() {
                clusters_into(netlist, r, scratch);
                if scratch.clusters.len() <= 1 {
                    break;
                }
                let (s0, e0) = scratch.clusters[0];
                scratch.cluster.clear();
                scratch.cluster.extend_from_slice(&scratch.members[s0..e0]);
                scratch.scattered.clear();
                for &(s, e) in &scratch.clusters[1..] {
                    scratch.scattered.extend_from_slice(&scratch.members[s..e]);
                }
                if !grow_cluster(
                    netlist,
                    bitmap,
                    &mut scratch.grid,
                    site_pitch,
                    &scratch.cluster,
                    &mut scratch.scattered,
                    &mut scratch.anchors,
                    &mut scratch.cand,
                    &mut scratch.query,
                    &mut moved,
                    &mut swapped,
                    pinned,
                ) {
                    break; // no progress possible
                }
            }
        }
        clusters_into(netlist, r, scratch);
        if scratch.clusters.len() > 1 {
            unintegrated.push(r);
        }
    }

    let integrated_after = num_res - unintegrated.len();
    IntegrationStats {
        integrated_before,
        integrated_after,
        moved,
        swapped,
        unintegrated,
    }
}

/// Attempts to merge one scattered segment into the cluster. Returns
/// `true` when progress was made.
#[allow(clippy::too_many_arguments)]
fn grow_cluster(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    grid: &mut SpatialGrid,
    site_pitch: f64,
    cluster: &[usize],
    scattered: &mut [usize],
    anchors: &mut Vec<usize>,
    cand: &mut Vec<Point>,
    query: &mut Vec<usize>,
    moved: &mut usize,
    swapped: &mut usize,
    pinned: Option<&[bool]>,
) -> bool {
    // Cluster centroid for ordering.
    let centroid = {
        let (sx, sy) = cluster.iter().fold((0.0, 0.0), |(sx, sy), &id| {
            let p = netlist.position(id);
            (sx + p.x, sy + p.y)
        });
        Point::new(sx / cluster.len() as f64, sy / cluster.len() as f64)
    };
    scattered.sort_unstable_by(|&a, &b| {
        netlist
            .position(a)
            .distance(centroid)
            .total_cmp(&netlist.position(b).distance(centroid))
    });

    for &s in scattered.iter() {
        // A pinned scattered segment cannot be relocated or swapped.
        if pinned.is_some_and(|p| p[s]) {
            continue;
        }
        // Candidate anchor cells: cluster members nearest to s first.
        anchors.clear();
        anchors.extend_from_slice(cluster);
        let sp = netlist.position(s);
        anchors.sort_unstable_by(|&a, &b| {
            netlist
                .position(a)
                .distance(sp)
                .total_cmp(&netlist.position(b).distance(sp))
        });
        let inst = *netlist.instance(s);
        let pitch = inst.padded_mm();
        let offsets = [
            (pitch, 0.0),
            (-pitch, 0.0),
            (0.0, pitch),
            (0.0, -pitch),
            (pitch, pitch),
            (pitch, -pitch),
            (-pitch, pitch),
            (-pitch, -pitch),
        ];
        let old_rect = netlist.padded_rect(s);
        let bound = bitmap.region().inflated(1e-9);
        // Two relocation passes: strict (τ-clean destinations only), then
        // relaxed — integration must not quietly undo the isolation the
        // global placement and strict legalization bought. Candidates are
        // scored read-only (relocation *or* swap feasible), then the first
        // acceptable one is applied.
        for strict in [true, false] {
            cand.clear();
            for &anchor in anchors.iter().take(8) {
                let base = netlist.position(anchor);
                for &(dx, dy) in &offsets {
                    cand.push(bitmap.snap_to_sites(
                        Point::new(base.x + dx, base.y + dy),
                        inst.padded_mm(),
                        site_pitch,
                    ));
                }
            }
            // At most 64 candidates: always below first_accepted's
            // fan-out threshold, so this is a sequential early-exit scan.
            let hit = first_accepted(cand, query, false, |c: &Point, q| {
                let rect = inst.padded_rect(*c);
                if !bound.contains_rect(&rect) {
                    return false;
                }
                if strict && !relocation_is_clean(netlist, grid, s, *c, q) {
                    return false;
                }
                // (a) Free relocation, or (b) a τ-checked swap — never
                // with a pinned victim (incremental contract).
                bitmap.is_free_except(&rect, &old_rect)
                    || occupant_at(netlist, grid, &rect, s, q).is_some_and(|n| {
                        !pinned.is_some_and(|p| p[n]) && can_swap(netlist, grid, s, n, q)
                    })
            });
            if let Some(i) = hit {
                let c = cand[i];
                let rect = inst.padded_rect(c);
                if bitmap.is_free_except(&rect, &old_rect) {
                    bitmap.unmark(&old_rect);
                    bitmap.mark(&rect);
                    grid.remove(s, &old_rect);
                    grid.insert(s, &rect);
                    netlist.set_position(s, c);
                    *moved += 1;
                } else {
                    let n = occupant_at(netlist, grid, &rect, s, query)
                        .expect("accepted swap candidate has an occupant");
                    perform_swap(netlist, bitmap, grid, s, n);
                    *swapped += 1;
                }
                return true;
            }
        }
    }
    false
}

/// τ check for a relocation: moving instance `s` to `at` must not park it
/// within resonant reach (half a footprint of margin) of a near-resonant
/// foreign instance.
fn relocation_is_clean(
    netlist: &QuantumNetlist,
    grid: &SpatialGrid,
    s: usize,
    at: Point,
    query: &mut Vec<usize>,
) -> bool {
    let inst = netlist.instance(s);
    let probe = inst.padded_rect(at).inflated(0.5 * inst.padded_mm());
    let dc = netlist.detuning_threshold() * 0.999;
    grid.query_into(&probe, query);
    query.iter().all(|&other| {
        if other == s {
            return true;
        }
        let o = netlist.instance(other);
        o.same_resonator(inst)
            || !o.frequency().is_resonant_with(inst.frequency(), dc)
            || !netlist.padded_rect(other).overlaps(&probe)
    })
}

/// The single same-size segment instance whose footprint overlaps `rect`,
/// if exactly one exists and it is a segment of another resonator.
fn occupant_at(
    netlist: &QuantumNetlist,
    grid: &SpatialGrid,
    rect: &Rect,
    moving: usize,
    query: &mut Vec<usize>,
) -> Option<usize> {
    grid.query_into(rect, query);
    let mut hit: Option<usize> = None;
    for &id in query.iter() {
        if id == moving || !netlist.padded_rect(id).overlaps(rect) {
            continue;
        }
        if hit.is_some() {
            return None; // more than one occupant
        }
        hit = Some(id);
    }
    let one = hit?;
    let inst = netlist.instance(one);
    let mv = netlist.instance(moving);
    let different_resonator = match (inst.kind().resonator(), mv.kind().resonator()) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    };
    (different_resonator && (inst.padded_mm() - mv.padded_mm()).abs() < 1e-9).then_some(one)
}

/// τ check of Algorithm 1: after swapping, neither relocated segment may
/// sit within resonant reach of a near-resonant foreign instance.
fn can_swap(
    netlist: &QuantumNetlist,
    grid: &SpatialGrid,
    s: usize,
    n: usize,
    query: &mut Vec<usize>,
) -> bool {
    let dc = netlist.detuning_threshold();
    let mut ok_at = |inst_id: usize, at: Point, ignore: usize| {
        let inst = netlist.instance(inst_id);
        let probe = inst.padded_rect(at).inflated(0.5 * inst.padded_mm());
        grid.query_into(&probe, query);
        query.iter().all(|&other| {
            if other == inst_id || other == ignore {
                return true;
            }
            let o = netlist.instance(other);
            if !netlist.padded_rect(other).overlaps(&probe) {
                return true;
            }
            o.same_resonator(inst) || !o.frequency().is_resonant_with(inst.frequency(), dc * 0.999)
        })
    };
    // n moves to s's spot; s moves to n's spot (joining its own cluster —
    // only n's new neighborhood needs the resonance check, plus s's).
    ok_at(n, netlist.position(s), s) && ok_at(s, netlist.position(n), n)
}

fn perform_swap(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    grid: &mut SpatialGrid,
    s: usize,
    n: usize,
) {
    let rs = netlist.padded_rect(s);
    let rn = netlist.padded_rect(n);
    let ps = netlist.position(s);
    let pn = netlist.position(n);
    bitmap.unmark(&rs);
    bitmap.unmark(&rn);
    grid.remove(s, &rs);
    grid.remove(n, &rn);
    netlist.set_position(s, pn);
    netlist.set_position(n, ps);
    let rs2 = netlist.padded_rect(s);
    let rn2 = netlist.padded_rect(n);
    bitmap.mark(&rs2);
    bitmap.mark(&rn2);
    grid.insert(s, &rs2);
    grid.insert(n, &rn2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubits::legalize_qubits;
    use crate::tetris::legalize_segments;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::NetlistConfig;
    use qplacer_topology::Topology;

    fn pipeline(t: &Topology) -> (QuantumNetlist, IntegrationStats) {
        let freqs = FrequencyAssigner::paper_defaults().assign(t);
        let mut nl = QuantumNetlist::build(t, &freqs, &NetlistConfig::with_segment_size(0.4));
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let mut tracker = crate::resonance::ResonanceTracker::new(&nl, 0.3);
        legalize_qubits(&mut nl, &mut bm, &mut tracker, 0.5);
        legalize_segments(&mut nl, &mut bm, &mut tracker, 0.5);
        let stats = integrate_resonators(&mut nl, &mut bm);
        (nl, stats)
    }

    #[test]
    fn integration_never_reduces_cluster_count() {
        let t = Topology::grid(2, 2);
        let (nl, stats) = pipeline(&t);
        assert!(stats.integrated_after >= stats.integrated_before);
        assert_eq!(
            stats.integrated_after + stats.unintegrated.len(),
            nl.num_resonators()
        );
    }

    #[test]
    fn layout_stays_overlap_free_after_integration() {
        let t = Topology::grid(2, 2);
        let (nl, _) = pipeline(&t);
        assert!(
            nl.overlapping_pairs().is_empty(),
            "integration broke legality"
        );
    }

    #[test]
    fn most_resonators_integrate_on_small_devices() {
        let t = Topology::falcon27();
        let (nl, stats) = pipeline(&t);
        let frac = stats.integrated_after as f64 / nl.num_resonators() as f64;
        assert!(
            frac > 0.7,
            "only {}/{} resonators integrated",
            stats.integrated_after,
            nl.num_resonators()
        );
    }

    #[test]
    fn cluster_decomposition_is_a_partition() {
        let t = Topology::grid(2, 2);
        let (nl, _) = pipeline(&t);
        for r in 0..nl.num_resonators() {
            let clusters = clusters_of(&nl, r);
            let total: usize = clusters.iter().map(Vec::len).sum();
            assert_eq!(total, nl.resonator_segments(r).len());
            // Largest first.
            for w in clusters.windows(2) {
                assert!(w[0].len() >= w[1].len());
            }
        }
    }
}
