//! Fine-grained occupancy bitmap for legalization.

use qplacer_geometry::{Point, Rect};

/// A boolean occupancy grid over the placement region at a fine, fixed
/// resolution. Marking is conservative (every touched cell becomes
/// occupied) and queries demand all touched cells free, so "query says
/// free" implies "no marked rectangle overlaps".
///
/// # Examples
///
/// ```
/// use qplacer_geometry::{Point, Rect};
/// use qplacer_legal::OccupancyBitmap;
///
/// let region = Rect::from_center(Point::ORIGIN, 10.0, 10.0);
/// let mut bm = OccupancyBitmap::new(region, 0.1);
/// let r = Rect::from_center(Point::ORIGIN, 1.0, 1.0);
/// assert!(bm.is_free(&r));
/// bm.mark(&r);
/// assert!(!bm.is_free(&r));
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyBitmap {
    region: Rect,
    res: f64,
    nx: usize,
    ny: usize,
    cells: Vec<bool>,
}

impl OccupancyBitmap {
    /// Creates an empty bitmap over `region` with square cells of side
    /// `resolution`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive or the region degenerate.
    #[must_use]
    pub fn new(region: Rect, resolution: f64) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        assert!(region.area() > 0.0, "region must have positive area");
        let nx = (region.width() / resolution).ceil() as usize + 1;
        let ny = (region.height() / resolution).ceil() as usize + 1;
        Self {
            region,
            res: resolution,
            nx,
            ny,
            cells: vec![false; nx * ny],
        }
    }

    /// The covered region.
    #[must_use]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Cell resolution.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        self.res
    }

    /// Snaps a point to the cell lattice (cell centers).
    #[must_use]
    pub fn snap(&self, p: Point) -> Point {
        let sx = ((p.x - self.region.min.x) / self.res).round() * self.res + self.region.min.x;
        let sy = ((p.y - self.region.min.y) / self.res).round() * self.res + self.region.min.y;
        Point::new(sx, sy)
    }

    /// Snaps the center of a `size × size` footprint onto the *site
    /// lattice* of the given pitch: the footprint's lower-left corner
    /// lands on a multiple of `pitch` from the region origin. When every
    /// instance uses a pitch that divides its footprint (segments = 1
    /// site, qubits = 2 sites), placements brick-pack and free space
    /// never fragments below one site.
    #[must_use]
    pub fn snap_to_sites(&self, p: Point, size: f64, pitch: f64) -> Point {
        let half = 0.5 * size;
        let sx =
            ((p.x - half - self.region.min.x) / pitch).round() * pitch + self.region.min.x + half;
        let sy =
            ((p.y - half - self.region.min.y) / pitch).round() * pitch + self.region.min.y + half;
        Point::new(sx, sy)
    }

    fn cell_span(&self, rect: &Rect) -> Option<(usize, usize, usize, usize)> {
        // A hair of tolerance so rects flush with the region boundary pass.
        let eps = 1e-9;
        if rect.min.x < self.region.min.x - eps
            || rect.min.y < self.region.min.y - eps
            || rect.max.x > self.region.max.x + eps
            || rect.max.y > self.region.max.y + eps
        {
            return None;
        }
        // Shrink slightly so exactly-abutting rects do not contend for the
        // shared boundary cell.
        let shrink = 1e-6;
        let x0 = (((rect.min.x + shrink - self.region.min.x) / self.res).floor()).max(0.0) as usize;
        let y0 = (((rect.min.y + shrink - self.region.min.y) / self.res).floor()).max(0.0) as usize;
        let x1 = (((rect.max.x - shrink - self.region.min.x) / self.res).ceil()) as usize;
        let y1 = (((rect.max.y - shrink - self.region.min.y) / self.res).ceil()) as usize;
        Some((x0, y0, x1.min(self.nx), y1.min(self.ny)))
    }

    /// `true` when `rect` lies inside the region and touches no occupied
    /// cell.
    #[must_use]
    pub fn is_free(&self, rect: &Rect) -> bool {
        match self.cell_span(rect) {
            None => false,
            Some((x0, y0, x1, y1)) => {
                for iy in y0..y1 {
                    for ix in x0..x1 {
                        if self.cells[iy * self.nx + ix] {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }

    /// Marks every cell touched by `rect` as occupied.
    pub fn mark(&mut self, rect: &Rect) {
        if let Some((x0, y0, x1, y1)) = self.cell_span(rect) {
            for iy in y0..y1 {
                for ix in x0..x1 {
                    self.cells[iy * self.nx + ix] = true;
                }
            }
        }
    }

    /// Clears every cell touched by `rect`.
    ///
    /// Note: clearing is exact on the same rect that was marked; clearing
    /// a different overlapping rect may free cells still claimed by
    /// another instance — callers must unmark exactly what they marked.
    pub fn unmark(&mut self, rect: &Rect) {
        if let Some((x0, y0, x1, y1)) = self.cell_span(rect) {
            for iy in y0..y1 {
                for ix in x0..x1 {
                    self.cells[iy * self.nx + ix] = false;
                }
            }
        }
    }

    /// Exhaustive search for the free `w × h` rectangle whose center is
    /// nearest to `desired`, scanning positions on a lattice of the given
    /// `step` (lower-left corners at multiples of `step`). This is the
    /// fallback when spiral probing misses free space; O(cells) per call,
    /// used only for stragglers.
    #[must_use]
    pub fn find_nearest_free(&self, w: f64, h: f64, desired: Point, step: f64) -> Option<Point> {
        let step = step.max(self.res);
        let hw = 0.5 * w;
        let hh = 0.5 * h;
        let mut best: Option<(f64, Point)> = None;
        let nx_max = ((self.region.width() - w) / step).floor() as i64;
        let ny_max = ((self.region.height() - h) / step).floor() as i64;
        if nx_max < 0 || ny_max < 0 {
            return None;
        }
        for iy in 0..=ny_max {
            let cy = self.region.min.y + hh + iy as f64 * step;
            for ix in 0..=nx_max {
                let cx = self.region.min.x + hw + ix as f64 * step;
                let c = Point::new(cx, cy);
                let d2 = c.distance_sq(desired);
                if best.is_none_or(|(bd, _)| d2 < bd) {
                    let rect = Rect::from_center(c, w, h);
                    if self.is_free(&rect) {
                        best = Some((d2, c));
                    }
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Fraction of cells occupied (diagnostics).
    #[must_use]
    pub fn fill_fraction(&self) -> f64 {
        self.cells.iter().filter(|&&c| c).count() as f64 / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap() -> OccupancyBitmap {
        OccupancyBitmap::new(Rect::from_center(Point::ORIGIN, 10.0, 10.0), 0.1)
    }

    #[test]
    fn mark_unmark_roundtrip() {
        let mut bm = bitmap();
        let r = Rect::from_center(Point::new(1.0, 1.0), 0.5, 0.5);
        bm.mark(&r);
        assert!(!bm.is_free(&r));
        bm.unmark(&r);
        assert!(bm.is_free(&r));
    }

    #[test]
    fn outside_region_is_never_free() {
        let bm = bitmap();
        let r = Rect::from_center(Point::new(5.5, 0.0), 1.0, 1.0);
        assert!(!bm.is_free(&r));
    }

    #[test]
    fn abutting_rects_coexist() {
        let mut bm = bitmap();
        let a = Rect::from_origin_size(Point::new(0.0, 0.0), 0.5, 0.5);
        let b = Rect::from_origin_size(Point::new(0.5, 0.0), 0.5, 0.5);
        bm.mark(&a);
        assert!(bm.is_free(&b), "sharing an edge must be legal");
    }

    #[test]
    fn overlap_is_detected() {
        let mut bm = bitmap();
        let a = Rect::from_center(Point::ORIGIN, 1.0, 1.0);
        bm.mark(&a);
        let b = Rect::from_center(Point::new(0.4, 0.0), 1.0, 1.0);
        assert!(!bm.is_free(&b));
    }

    #[test]
    fn snapping_lands_on_lattice() {
        let bm = bitmap();
        let s = bm.snap(Point::new(0.234, -1.387));
        let dx = (s.x - bm.region().min.x) / bm.resolution();
        let dy = (s.y - bm.region().min.y) / bm.resolution();
        assert!((dx - dx.round()).abs() < 1e-9);
        assert!((dy - dy.round()).abs() < 1e-9);
    }

    #[test]
    fn fill_fraction_tracks_marks() {
        let mut bm = bitmap();
        assert_eq!(bm.fill_fraction(), 0.0);
        bm.mark(&Rect::from_center(Point::ORIGIN, 5.0, 5.0));
        let f = bm.fill_fraction();
        assert!(f > 0.2 && f < 0.3, "quarter of the area marked: {f}");
    }
}
