//! Fine-grained occupancy bitmap for legalization.

use qplacer_geometry::{Point, Rect};

/// A boolean occupancy grid over the placement region at a fine, fixed
/// resolution. Marking is conservative (every touched cell becomes
/// occupied) and queries demand all touched cells free, so "query says
/// free" implies "no marked rectangle overlaps". Cells are bit-packed
/// into `u64` words, so a typical footprint query touches a handful of
/// words instead of hundreds of cells.
///
/// Rectangles that stick out of the region — including rectangles with
/// non-finite coordinates — are never free, and marking them is a no-op:
/// the bitmap holds exactly the cells inside `region`, nothing beyond.
///
/// # Examples
///
/// ```
/// use qplacer_geometry::{Point, Rect};
/// use qplacer_legal::OccupancyBitmap;
///
/// let region = Rect::from_center(Point::ORIGIN, 10.0, 10.0);
/// let mut bm = OccupancyBitmap::new(region, 0.1);
/// let r = Rect::from_center(Point::ORIGIN, 1.0, 1.0);
/// assert!(bm.is_free(&r));
/// bm.mark(&r);
/// assert!(!bm.is_free(&r));
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyBitmap {
    region: Rect,
    res: f64,
    nx: usize,
    ny: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

/// The bits of cell columns `[x0, x1)` that fall into word `w` of a row.
#[inline]
fn word_mask(x0: usize, x1: usize, w: usize) -> u64 {
    let lo = (w * 64).max(x0);
    let hi = ((w + 1) * 64).min(x1);
    if lo >= hi {
        return 0;
    }
    let head = !0u64 << (lo % 64);
    let tail = if hi.is_multiple_of(64) {
        !0u64
    } else {
        !0u64 >> (64 - hi % 64)
    };
    head & tail
}

impl OccupancyBitmap {
    /// Creates an empty bitmap over `region` with square cells of side
    /// `resolution`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive or the region degenerate.
    #[must_use]
    pub fn new(region: Rect, resolution: f64) -> Self {
        let mut bm = Self {
            region,
            res: resolution,
            nx: 0,
            ny: 0,
            words_per_row: 0,
            words: Vec::new(),
        };
        bm.reset(region, resolution);
        bm
    }

    /// A placeholder bitmap over a unit region; call
    /// [`OccupancyBitmap::reset`] before use. Exists so workspaces can own
    /// a bitmap before the first netlist arrives.
    #[must_use]
    pub fn empty() -> Self {
        Self::new(Rect::from_center(Point::ORIGIN, 1.0, 1.0), 1.0)
    }

    /// Re-shapes the bitmap for a (possibly different) region and
    /// resolution and clears every cell. The cell storage is reused, so a
    /// steady-state caller resetting to the same shape allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive or the region degenerate.
    pub fn reset(&mut self, region: Rect, resolution: f64) {
        assert!(resolution > 0.0, "resolution must be positive");
        assert!(region.area() > 0.0, "region must have positive area");
        // Exactly enough cells to tile the region: the last row/column may
        // be partial but never extends past the region edge, so a
        // rectangle beyond the edge can never be reported free.
        let nx = ((region.width() / resolution).ceil() as usize).max(1);
        let ny = ((region.height() / resolution).ceil() as usize).max(1);
        self.region = region;
        self.res = resolution;
        self.nx = nx;
        self.ny = ny;
        self.words_per_row = nx.div_ceil(64);
        self.words.clear();
        self.words.resize(ny * self.words_per_row, 0);
    }

    /// The covered region.
    #[must_use]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Cell resolution.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        self.res
    }

    /// Snaps a point to the cell lattice (cell centers).
    #[must_use]
    pub fn snap(&self, p: Point) -> Point {
        let sx = ((p.x - self.region.min.x) / self.res).round() * self.res + self.region.min.x;
        let sy = ((p.y - self.region.min.y) / self.res).round() * self.res + self.region.min.y;
        Point::new(sx, sy)
    }

    /// Snaps the center of a `size × size` footprint onto the *site
    /// lattice* of the given pitch: the footprint's lower-left corner
    /// lands on a multiple of `pitch` from the region origin. When every
    /// instance uses a pitch that divides its footprint (segments = 1
    /// site, qubits = 2 sites), placements brick-pack and free space
    /// never fragments below one site.
    #[must_use]
    pub fn snap_to_sites(&self, p: Point, size: f64, pitch: f64) -> Point {
        let half = 0.5 * size;
        let sx =
            ((p.x - half - self.region.min.x) / pitch).round() * pitch + self.region.min.x + half;
        let sy =
            ((p.y - half - self.region.min.y) / pitch).round() * pitch + self.region.min.y + half;
        Point::new(sx, sy)
    }

    fn cell_span(&self, rect: &Rect) -> Option<(usize, usize, usize, usize)> {
        // A hair of tolerance so rects flush with the region boundary
        // pass. Written as positive containment so any non-finite
        // coordinate fails the test (NaN comparisons are false) and the
        // rectangle is treated as out-of-region instead of producing a
        // bogus span.
        let eps = 1e-9;
        let inside = rect.min.x >= self.region.min.x - eps
            && rect.min.y >= self.region.min.y - eps
            && rect.max.x <= self.region.max.x + eps
            && rect.max.y <= self.region.max.y + eps;
        if !inside {
            return None;
        }
        // Shrink slightly so exactly-abutting rects do not contend for the
        // shared boundary cell.
        let shrink = 1e-6;
        let x0 = (((rect.min.x + shrink - self.region.min.x) / self.res).floor()).max(0.0) as usize;
        let y0 = (((rect.min.y + shrink - self.region.min.y) / self.res).floor()).max(0.0) as usize;
        let x1 = (((rect.max.x - shrink - self.region.min.x) / self.res).ceil()).max(0.0) as usize;
        let y1 = (((rect.max.y - shrink - self.region.min.y) / self.res).ceil()).max(0.0) as usize;
        // Clamp into the region's cell range; boundary-flush rects can
        // round one cell past the last partial row/column.
        Some((
            x0.min(self.nx),
            y0.min(self.ny),
            x1.min(self.nx),
            y1.min(self.ny),
        ))
    }

    /// `true` when `rect` lies inside the region and touches no occupied
    /// cell.
    #[must_use]
    pub fn is_free(&self, rect: &Rect) -> bool {
        match self.cell_span(rect) {
            None => false,
            Some((x0, y0, x1, y1)) => {
                if x0 >= x1 {
                    return true;
                }
                let (wa, wb) = (x0 / 64, (x1 - 1) / 64);
                for iy in y0..y1 {
                    let base = iy * self.words_per_row;
                    for w in wa..=wb {
                        if self.words[base + w] & word_mask(x0, x1, w) != 0 {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }

    /// `true` when `rect` lies inside the region and touches no occupied
    /// cell *outside* `ignore` — i.e. what [`OccupancyBitmap::is_free`]
    /// would answer after `unmark(ignore)`, without mutating the bitmap.
    /// Lets relocation scans test "would this spot be free once I move?"
    /// concurrently over many candidates.
    #[must_use]
    pub fn is_free_except(&self, rect: &Rect, ignore: &Rect) -> bool {
        let Some((x0, y0, x1, y1)) = self.cell_span(rect) else {
            return false;
        };
        if x0 >= x1 {
            return true;
        }
        let ignore_span = self.cell_span(ignore);
        let (wa, wb) = (x0 / 64, (x1 - 1) / 64);
        for iy in y0..y1 {
            let base = iy * self.words_per_row;
            for w in wa..=wb {
                let mut mask = word_mask(x0, x1, w);
                if let Some((ix0, iy0, ix1, iy1)) = ignore_span {
                    if iy >= iy0 && iy < iy1 {
                        mask &= !word_mask(ix0, ix1, w);
                    }
                }
                if self.words[base + w] & mask != 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Marks every cell touched by `rect` as occupied. Rectangles outside
    /// the region are a no-op (they can never be reported free).
    pub fn mark(&mut self, rect: &Rect) {
        if let Some((x0, y0, x1, y1)) = self.cell_span(rect) {
            if x0 >= x1 {
                return;
            }
            let (wa, wb) = (x0 / 64, (x1 - 1) / 64);
            for iy in y0..y1 {
                let base = iy * self.words_per_row;
                for w in wa..=wb {
                    self.words[base + w] |= word_mask(x0, x1, w);
                }
            }
        }
    }

    /// Clears every cell touched by `rect`.
    ///
    /// Note: clearing is exact on the same rect that was marked; clearing
    /// a different overlapping rect may free cells still claimed by
    /// another instance — callers must unmark exactly what they marked.
    pub fn unmark(&mut self, rect: &Rect) {
        if let Some((x0, y0, x1, y1)) = self.cell_span(rect) {
            if x0 >= x1 {
                return;
            }
            let (wa, wb) = (x0 / 64, (x1 - 1) / 64);
            for iy in y0..y1 {
                let base = iy * self.words_per_row;
                for w in wa..=wb {
                    self.words[base + w] &= !word_mask(x0, x1, w);
                }
            }
        }
    }

    /// Exhaustive search for the free `w × h` rectangle whose center is
    /// nearest to `desired`, scanning positions on a lattice of the given
    /// `step` (lower-left corners at multiples of `step`). This is the
    /// fallback when spiral probing misses free space; O(cells) per call,
    /// used only for stragglers.
    #[must_use]
    pub fn find_nearest_free(&self, w: f64, h: f64, desired: Point, step: f64) -> Option<Point> {
        let step = step.max(self.res);
        let hw = 0.5 * w;
        let hh = 0.5 * h;
        let mut best: Option<(f64, Point)> = None;
        let nx_max = ((self.region.width() - w) / step).floor() as i64;
        let ny_max = ((self.region.height() - h) / step).floor() as i64;
        if nx_max < 0 || ny_max < 0 {
            return None;
        }
        for iy in 0..=ny_max {
            let cy = self.region.min.y + hh + iy as f64 * step;
            for ix in 0..=nx_max {
                let cx = self.region.min.x + hw + ix as f64 * step;
                let c = Point::new(cx, cy);
                let d2 = c.distance_sq(desired);
                if best.is_none_or(|(bd, _)| d2 < bd) {
                    let rect = Rect::from_center(c, w, h);
                    if self.is_free(&rect) {
                        best = Some((d2, c));
                    }
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Fraction of cells occupied (diagnostics).
    #[must_use]
    pub fn fill_fraction(&self) -> f64 {
        let occupied: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        occupied as f64 / (self.nx * self.ny) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap() -> OccupancyBitmap {
        OccupancyBitmap::new(Rect::from_center(Point::ORIGIN, 10.0, 10.0), 0.1)
    }

    #[test]
    fn mark_unmark_roundtrip() {
        let mut bm = bitmap();
        let r = Rect::from_center(Point::new(1.0, 1.0), 0.5, 0.5);
        bm.mark(&r);
        assert!(!bm.is_free(&r));
        bm.unmark(&r);
        assert!(bm.is_free(&r));
    }

    #[test]
    fn outside_region_is_never_free() {
        let bm = bitmap();
        let r = Rect::from_center(Point::new(5.5, 0.0), 1.0, 1.0);
        assert!(!bm.is_free(&r));
    }

    #[test]
    fn region_edge_cells_exist_and_flush_rects_work() {
        // Regression for the old `+ 1` over-allocation: the bitmap used to
        // carry an extra row/column outside the region, where marks landed
        // but whose phantom free cells could leak into queries. Now a rect
        // flush with the region edge round-trips exactly.
        let mut bm = bitmap();
        let flush = Rect::from_origin_size(Point::new(4.0, 4.0), 1.0, 1.0);
        assert!(bm.is_free(&flush));
        bm.mark(&flush);
        assert!(!bm.is_free(&flush));
        bm.unmark(&flush);
        assert!(bm.is_free(&flush));
    }

    #[test]
    fn nan_rect_is_never_free() {
        let mut bm = bitmap();
        let nan = Rect::from_center(Point::new(f64::NAN, 0.0), 1.0, 1.0);
        assert!(!bm.is_free(&nan));
        bm.mark(&nan); // must not panic, must not mark anything
        assert_eq!(bm.fill_fraction(), 0.0);
    }

    #[test]
    fn abutting_rects_coexist() {
        let mut bm = bitmap();
        let a = Rect::from_origin_size(Point::new(0.0, 0.0), 0.5, 0.5);
        let b = Rect::from_origin_size(Point::new(0.5, 0.0), 0.5, 0.5);
        bm.mark(&a);
        assert!(bm.is_free(&b), "sharing an edge must be legal");
    }

    #[test]
    fn overlap_is_detected() {
        let mut bm = bitmap();
        let a = Rect::from_center(Point::ORIGIN, 1.0, 1.0);
        bm.mark(&a);
        let b = Rect::from_center(Point::new(0.4, 0.0), 1.0, 1.0);
        assert!(!bm.is_free(&b));
    }

    #[test]
    fn is_free_except_matches_unmark_then_query() {
        let mut bm = bitmap();
        let old = Rect::from_center(Point::ORIGIN, 1.0, 1.0);
        let other = Rect::from_center(Point::new(2.0, 0.0), 1.0, 1.0);
        bm.mark(&old);
        bm.mark(&other);
        // Overlapping the old footprint only: free once old is ignored.
        let cand = Rect::from_center(Point::new(0.5, 0.0), 1.0, 1.0);
        assert!(!bm.is_free(&cand));
        assert!(bm.is_free_except(&cand, &old));
        // Overlapping a foreign footprint: still occupied.
        let clash = Rect::from_center(Point::new(1.6, 0.0), 1.0, 1.0);
        assert!(!bm.is_free_except(&clash, &old));
        // Cross-check against the mutate-and-restore sequence.
        bm.unmark(&old);
        assert!(bm.is_free(&cand));
        assert!(!bm.is_free(&clash));
    }

    #[test]
    fn reset_reuses_storage_and_clears() {
        let mut bm = bitmap();
        bm.mark(&Rect::from_center(Point::ORIGIN, 2.0, 2.0));
        assert!(bm.fill_fraction() > 0.0);
        bm.reset(Rect::from_center(Point::ORIGIN, 10.0, 10.0), 0.1);
        assert_eq!(bm.fill_fraction(), 0.0);
        assert!(bm.is_free(&Rect::from_center(Point::ORIGIN, 2.0, 2.0)));
    }

    #[test]
    fn wide_rects_cross_word_boundaries() {
        // 100 cells per row at 0.1 mm: a 9.0 mm rect spans >64 cells,
        // exercising the multi-word mask path.
        let mut bm = bitmap();
        let wide = Rect::from_center(Point::ORIGIN, 9.0, 0.3);
        bm.mark(&wide);
        assert!(!bm.is_free(&Rect::from_center(Point::new(4.0, 0.0), 0.2, 0.2)));
        assert!(!bm.is_free(&Rect::from_center(Point::new(-4.0, 0.0), 0.2, 0.2)));
        assert!(bm.is_free(&Rect::from_center(Point::new(0.0, 2.0), 0.2, 0.2)));
        bm.unmark(&wide);
        assert!(bm.is_free(&wide));
    }

    #[test]
    fn snapping_lands_on_lattice() {
        let bm = bitmap();
        let s = bm.snap(Point::new(0.234, -1.387));
        let dx = (s.x - bm.region().min.x) / bm.resolution();
        let dy = (s.y - bm.region().min.y) / bm.resolution();
        assert!((dx - dx.round()).abs() < 1e-9);
        assert!((dy - dy.round()).abs() < 1e-9);
    }

    #[test]
    fn fill_fraction_tracks_marks() {
        let mut bm = bitmap();
        assert_eq!(bm.fill_fraction(), 0.0);
        bm.mark(&Rect::from_center(Point::ORIGIN, 5.0, 5.0));
        let f = bm.fill_fraction();
        assert!(f > 0.2 && f < 0.3, "quarter of the area marked: {f}");
    }
}
