//! Phase 2: Tetris-style segment legalization.
//!
//! Segments are placed resonator by resonator (resonators ordered
//! left-to-right by their segments' mean global x — the Tetris sweep),
//! and in *chain order* within each resonator — the paper's "adherence to
//! established orders". Each segment first tries the eight lattice
//! neighbors of its predecessor in the chain, which keeps the reserved
//! blocks contiguous for the integration phase, then spirals around its
//! own global-placement position, and as a last resort takes the nearest
//! free cell anywhere in the region.
//!
//! Every stage runs *strict* first — candidate spots that would violate
//! the resonant margin against already-placed instances are skipped — and
//! falls back to a relaxed pass so legalization always completes.

use qplacer_geometry::{Point, SpiralIter};
use qplacer_netlist::QuantumNetlist;

use crate::resonance::ResonanceTracker;
use crate::OccupancyBitmap;

/// Legalizes all resonator segments. Qubits must already be marked in
/// `bitmap` and registered with `tracker`. Returns
/// `(instance_id, displacement_mm)` per segment.
///
/// # Panics
///
/// Panics if a segment cannot be placed anywhere in the region, which
/// indicates the region was sized above 100 % utilization.
pub fn legalize_segments(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    tracker: &mut ResonanceTracker,
    site_pitch: f64,
) -> Vec<(usize, f64)> {
    let region = netlist.region();
    let workspace = bitmap.region();

    // Resonators sorted by mean global x of their segments (sweep order).
    let mut res_order: Vec<usize> = (0..netlist.num_resonators()).collect();
    let mean_x = |r: usize| -> f64 {
        let segs = netlist.resonator_segments(r);
        segs.iter().map(|&id| netlist.position(id).x).sum::<f64>() / segs.len().max(1) as f64
    };
    res_order.sort_by(|&a, &b| mean_x(a).total_cmp(&mean_x(b)));

    let mut displacements = Vec::new();
    for r in res_order {
        let chain: Vec<usize> = netlist.resonator_segments(r).to_vec();
        let mut prev: Option<Point> = None;
        for id in chain {
            let inst = *netlist.instance(id);
            let pitch = inst.padded_mm();
            let desired = inst
                .padded_rect(Point::ORIGIN)
                .clamp_center_into(&region, netlist.position(id));

            let acceptable = |cand: Point,
                              strict: bool,
                              bitmap: &OccupancyBitmap,
                              tracker: &ResonanceTracker,
                              netlist: &QuantumNetlist|
             -> bool {
                let rect = inst.padded_rect(cand);
                // Strict placements stay inside the sized region (compact
                // substrate first); only relaxed ones may spill.
                let bound = if strict { &region } else { &workspace };
                bound.inflated(1e-9).contains_rect(&rect)
                    && bitmap.is_free(&rect)
                    && (!strict || tracker.is_clean(netlist, id, cand))
            };

            // (a) Hug the previous chain segment: its 8 lattice neighbors,
            // nearest-to-desired first.
            let chain_candidates: Vec<Point> = prev
                .map(|p| {
                    let mut cands: Vec<Point> = [
                        (pitch, 0.0),
                        (-pitch, 0.0),
                        (0.0, pitch),
                        (0.0, -pitch),
                        (pitch, pitch),
                        (pitch, -pitch),
                        (-pitch, pitch),
                        (-pitch, -pitch),
                    ]
                    .iter()
                    .map(|&(dx, dy)| {
                        bitmap.snap_to_sites(
                            Point::new(p.x + dx, p.y + dy),
                            inst.padded_mm(),
                            site_pitch,
                        )
                    })
                    .collect();
                    cands.sort_by(|a, b| a.distance_sq(desired).total_cmp(&b.distance_sq(desired)));
                    cands
                })
                .unwrap_or_default();

            let max_radius =
                ((region.width().max(region.height()) / site_pitch).ceil() as i64).max(1) * 2;

            let mut placed: Option<Point> = None;
            'passes: for strict in [true, false] {
                for &cand in &chain_candidates {
                    if acceptable(cand, strict, bitmap, tracker, netlist) {
                        placed = Some(cand);
                        break 'passes;
                    }
                }
                // (b) Spiral around the segment's own desired position.
                for (dx, dy) in SpiralIter::new(max_radius) {
                    let cand = bitmap.snap_to_sites(
                        Point::new(
                            desired.x + dx as f64 * site_pitch,
                            desired.y + dy as f64 * site_pitch,
                        ),
                        inst.padded_mm(),
                        site_pitch,
                    );
                    if acceptable(cand, strict, bitmap, tracker, netlist) {
                        placed = Some(cand);
                        break 'passes;
                    }
                }
            }

            // (c) Exhaustive nearest-free fallback (fragmented free
            // space): first on the site lattice, then — as the true last
            // resort — at full bitmap resolution.
            if placed.is_none() {
                placed = bitmap
                    .find_nearest_free(inst.padded_mm(), inst.padded_mm(), desired, site_pitch)
                    .or_else(|| {
                        bitmap.find_nearest_free(
                            inst.padded_mm(),
                            inst.padded_mm(),
                            desired,
                            bitmap.resolution(),
                        )
                    });
            }

            let site = placed.unwrap_or_else(|| {
                panic!(
                    "no legal site for segment instance {id}: desired {desired}, \
                     footprint {:.2} mm, bitmap fill {:.3}, region {}",
                    inst.padded_mm(),
                    bitmap.fill_fraction(),
                    region
                )
            });
            bitmap.mark(&inst.padded_rect(site));
            tracker.place(netlist, id, site);
            let before = netlist.position(id);
            netlist.set_position(id, site);
            displacements.push((id, before.distance(site)));
            prev = Some(site);
        }
    }
    displacements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integration::{clusters_of, is_integrated};
    use crate::qubits::legalize_qubits;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::NetlistConfig;
    use qplacer_topology::Topology;

    fn legalized_netlist(t: &Topology) -> QuantumNetlist {
        let freqs = FrequencyAssigner::paper_defaults().assign(t);
        let mut nl = QuantumNetlist::build(t, &freqs, &NetlistConfig::default());
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let mut tracker = ResonanceTracker::new(&nl, 0.3);
        legalize_qubits(&mut nl, &mut bm, &mut tracker, 0.4);
        legalize_segments(&mut nl, &mut bm, &mut tracker, 0.4);
        nl
    }

    #[test]
    fn no_overlaps_after_tetris() {
        let t = Topology::grid(2, 2);
        let nl = legalized_netlist(&t);
        assert!(
            nl.overlapping_pairs().is_empty(),
            "overlaps remain: {:?}",
            nl.overlapping_pairs()
        );
    }

    #[test]
    fn everything_inside_region() {
        let t = Topology::falcon27();
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::with_segment_size(0.4));
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let mut tracker = ResonanceTracker::new(&nl, 0.3);
        legalize_qubits(&mut nl, &mut bm, &mut tracker, 0.1);
        let disp = legalize_segments(&mut nl, &mut bm, &mut tracker, 0.1);
        assert_eq!(
            disp.len(),
            nl.num_instances() - nl.num_qubits(),
            "every segment was processed"
        );
        let region = nl.region().inflated(1e-6);
        for inst in nl.instances() {
            assert!(region.contains_rect(&nl.padded_rect(inst.id())));
        }
        assert!(nl.overlapping_pairs().is_empty());
    }

    #[test]
    fn chain_following_keeps_most_resonators_whole() {
        let t = Topology::grid(3, 3);
        let nl = legalized_netlist(&t);
        let whole = (0..nl.num_resonators())
            .filter(|&r| is_integrated(&nl, r))
            .count();
        // Even before Algorithm 1, chain-aware Tetris should keep the bulk
        // of the resonators contiguous (global placement seeds chains).
        assert!(
            whole * 2 >= nl.num_resonators(),
            "only {whole}/{} resonators contiguous after Tetris",
            nl.num_resonators()
        );
        // And the fragments that exist are few per resonator.
        for r in 0..nl.num_resonators() {
            assert!(clusters_of(&nl, r).len() <= 5, "resonator {r} shattered");
        }
    }
}
