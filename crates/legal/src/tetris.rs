//! Phase 2: Tetris-style segment legalization.
//!
//! Segments are placed resonator by resonator (resonators ordered
//! left-to-right by their segments' mean global x — the Tetris sweep),
//! and in *chain order* within each resonator — the paper's "adherence to
//! established orders". Each segment first tries the eight lattice
//! neighbors of its predecessor in the chain, which keeps the reserved
//! blocks contiguous for the integration phase, then spirals around its
//! own global-placement position, and as a last resort takes the nearest
//! free cell anywhere in the region.
//!
//! Every stage runs *strict* first — candidate spots that would violate
//! the resonant margin against already-placed instances are skipped — and
//! falls back to a relaxed pass so legalization always completes.

use qplacer_geometry::Point;
use qplacer_netlist::QuantumNetlist;

use crate::resonance::ResonanceTracker;
use crate::workspace::{first_accepted, spiral_find, SearchScratch, TetrisScratch};
use crate::OccupancyBitmap;

/// Legalizes all resonator segments. Qubits must already be marked in
/// `bitmap` and registered with `tracker`. Returns
/// `(instance_id, displacement_mm)` per segment.
///
/// Allocating convenience wrapper around [`legalize_segments_with`].
///
/// # Panics
///
/// Panics if a segment cannot be placed anywhere in the region, which
/// indicates the region was sized above 100 % utilization.
#[cfg_attr(not(test), allow(dead_code))]
pub fn legalize_segments(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    tracker: &mut ResonanceTracker,
    site_pitch: f64,
) -> Vec<(usize, f64)> {
    let mut search = SearchScratch::default();
    search.set_parallel_from_pool();
    let mut scratch = TetrisScratch::default();
    legalize_segments_with(
        netlist,
        bitmap,
        tracker,
        site_pitch,
        &mut search,
        &mut scratch,
        None,
    );
    scratch.displacement
}

/// Workspace-threaded segment legalization: identical semantics to
/// [`legalize_segments`], with all ordering/chain/candidate buffers drawn
/// from the caller's scratch so steady-state runs allocate nothing.
/// Candidate scoring (chain neighbors and spiral rings) fans across the
/// rayon pool; selection is always the first acceptable candidate in
/// deterministic order. Per-segment displacements land in
/// `scratch.displacement`.
///
/// With a `pinned` instance mask (incremental path), pinned segments
/// keep their positions — the caller must have pre-marked them into
/// `bitmap`/`tracker` — and still serve as chain anchors, so an
/// unpinned tail re-attaches to the pinned head of its resonator. Only
/// unpinned segments get displacement entries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn legalize_segments_with(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
    tracker: &mut ResonanceTracker,
    site_pitch: f64,
    search: &mut SearchScratch,
    scratch: &mut TetrisScratch,
    pinned: Option<&[bool]>,
) {
    let region = netlist.region();
    let workspace = bitmap.region();
    let TetrisScratch {
        res_order,
        mean_x,
        chain,
        displacement,
    } = scratch;
    displacement.clear();

    // Resonators sorted by mean global x of their segments (sweep order).
    let num_res = netlist.num_resonators();
    mean_x.clear();
    for r in 0..num_res {
        let segs = netlist.resonator_segments(r);
        let sum: f64 = segs.iter().map(|&id| netlist.position(id).x).sum();
        mean_x.push(sum / segs.len().max(1) as f64);
    }
    res_order.clear();
    res_order.extend(0..num_res);
    res_order.sort_unstable_by(|&a, &b| mean_x[a].total_cmp(&mean_x[b]));

    for &r in res_order.iter() {
        chain.clear();
        chain.extend_from_slice(netlist.resonator_segments(r));
        let mut prev: Option<Point> = None;
        for &id in chain.iter() {
            if pinned.is_some_and(|p| p[id]) {
                // A pinned segment stays put but still anchors the chain.
                prev = Some(netlist.position(id));
                continue;
            }
            let inst = *netlist.instance(id);
            let pitch = inst.padded_mm();
            let mut desired = inst
                .padded_rect(Point::ORIGIN)
                .clamp_center_into(&region, netlist.position(id));
            if !desired.x.is_finite() || !desired.y.is_finite() {
                // Degrade gracefully on upstream NaN positions (see the
                // qubit legalizer): anchor at the chain tail or center.
                desired = prev.unwrap_or_else(|| region.center());
            }

            // (a) Hug the previous chain segment: its 8 lattice neighbors,
            // nearest-to-desired first (stable sort: equal-distance
            // symmetric offsets keep their fixed probe order).
            let mut chain_candidates = [Point::ORIGIN; 8];
            let mut num_chain = 0;
            if let Some(p) = prev {
                for (dx, dy) in [
                    (pitch, 0.0),
                    (-pitch, 0.0),
                    (0.0, pitch),
                    (0.0, -pitch),
                    (pitch, pitch),
                    (pitch, -pitch),
                    (-pitch, pitch),
                    (-pitch, -pitch),
                ] {
                    chain_candidates[num_chain] = bitmap.snap_to_sites(
                        Point::new(p.x + dx, p.y + dy),
                        inst.padded_mm(),
                        site_pitch,
                    );
                    num_chain += 1;
                }
                chain_candidates
                    .sort_by(|a, b| a.distance_sq(desired).total_cmp(&b.distance_sq(desired)));
            }

            let max_radius =
                ((region.width().max(region.height()) / site_pitch).ceil() as i64).max(1) * 2;

            let mut placed: Option<Point> = None;
            for strict in [true, false] {
                // Strict placements stay inside the sized region (compact
                // substrate first); only relaxed ones may spill.
                let bound = if strict { &region } else { &workspace };
                let accept_bound = bound.inflated(1e-9);
                let hit = first_accepted(
                    &chain_candidates[..num_chain],
                    &mut search.query,
                    search.parallel,
                    |cand: &Point, q| {
                        let rect = inst.padded_rect(*cand);
                        accept_bound.contains_rect(&rect)
                            && bitmap.is_free(&rect)
                            && (!strict || tracker.is_clean_with(netlist, id, *cand, q))
                    },
                );
                if let Some(i) = hit {
                    placed = Some(chain_candidates[i]);
                    break;
                }
                // (b) Spiral around the segment's own desired position.
                placed = spiral_find(
                    netlist, bitmap, tracker, search, id, desired, site_pitch, max_radius, strict,
                    bound,
                );
                if placed.is_some() {
                    break;
                }
            }

            // (c) Exhaustive nearest-free fallback (fragmented free
            // space): first on the site lattice, then — as the true last
            // resort — at full bitmap resolution.
            if placed.is_none() {
                placed = bitmap
                    .find_nearest_free(inst.padded_mm(), inst.padded_mm(), desired, site_pitch)
                    .or_else(|| {
                        bitmap.find_nearest_free(
                            inst.padded_mm(),
                            inst.padded_mm(),
                            desired,
                            bitmap.resolution(),
                        )
                    });
            }

            let site = placed.unwrap_or_else(|| {
                panic!(
                    "no legal site for segment instance {id}: desired {desired}, \
                     footprint {:.2} mm, bitmap fill {:.3}, region {}",
                    inst.padded_mm(),
                    bitmap.fill_fraction(),
                    region
                )
            });
            bitmap.mark(&inst.padded_rect(site));
            tracker.place(netlist, id, site);
            let before = netlist.position(id);
            netlist.set_position(id, site);
            displacement.push((id, before.distance(site)));
            prev = Some(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integration::{clusters_of, is_integrated};
    use crate::qubits::legalize_qubits;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::NetlistConfig;
    use qplacer_topology::Topology;

    fn legalized_netlist(t: &Topology) -> QuantumNetlist {
        let freqs = FrequencyAssigner::paper_defaults().assign(t);
        let mut nl = QuantumNetlist::build(t, &freqs, &NetlistConfig::default());
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let mut tracker = ResonanceTracker::new(&nl, 0.3);
        legalize_qubits(&mut nl, &mut bm, &mut tracker, 0.4);
        legalize_segments(&mut nl, &mut bm, &mut tracker, 0.4);
        nl
    }

    #[test]
    fn no_overlaps_after_tetris() {
        let t = Topology::grid(2, 2);
        let nl = legalized_netlist(&t);
        assert!(
            nl.overlapping_pairs().is_empty(),
            "overlaps remain: {:?}",
            nl.overlapping_pairs()
        );
    }

    #[test]
    fn everything_inside_region() {
        let t = Topology::falcon27();
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::with_segment_size(0.4));
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let mut tracker = ResonanceTracker::new(&nl, 0.3);
        legalize_qubits(&mut nl, &mut bm, &mut tracker, 0.1);
        let disp = legalize_segments(&mut nl, &mut bm, &mut tracker, 0.1);
        assert_eq!(
            disp.len(),
            nl.num_instances() - nl.num_qubits(),
            "every segment was processed"
        );
        let region = nl.region().inflated(1e-6);
        for inst in nl.instances() {
            assert!(region.contains_rect(&nl.padded_rect(inst.id())));
        }
        assert!(nl.overlapping_pairs().is_empty());
    }

    #[test]
    fn chain_following_keeps_most_resonators_whole() {
        let t = Topology::grid(3, 3);
        let nl = legalized_netlist(&t);
        let whole = (0..nl.num_resonators())
            .filter(|&r| is_integrated(&nl, r))
            .count();
        // Even before Algorithm 1, chain-aware Tetris should keep the bulk
        // of the resonators contiguous (global placement seeds chains).
        assert!(
            whole * 2 >= nl.num_resonators(),
            "only {whole}/{} resonators contiguous after Tetris",
            nl.num_resonators()
        );
        // And the fragments that exist are few per resonator.
        for r in 0..nl.num_resonators() {
            assert!(clusters_of(&nl, r).len() <= 5, "resonator {r} shattered");
        }
    }
}
