//! The orchestrating legalizer (all three phases).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use qplacer_netlist::QuantumNetlist;
use qplacer_obs::{NullTraceSink, TraceRecord, TraceSink};

use crate::abacus::legalize_qubits_abacus;
use crate::integration::integrate_resonators_with;
use crate::qubits::legalize_qubits_with;
use crate::tetris::legalize_segments_with;
use crate::workspace::count_overlaps;
use crate::LegalWorkspace;

/// Summary of a legalization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LegalReport {
    /// Mean qubit displacement (mm).
    pub mean_qubit_displacement: f64,
    /// Maximum qubit displacement (mm).
    pub max_qubit_displacement: f64,
    /// Mean segment displacement (mm).
    pub mean_segment_displacement: f64,
    /// Maximum segment displacement (mm).
    pub max_segment_displacement: f64,
    /// Resonators forming one cluster immediately after Tetris.
    pub integrated_before: usize,
    /// Resonators forming one cluster after Algorithm 1.
    pub integrated_after: usize,
    /// Total resonators.
    pub resonator_count: usize,
    /// Segments relocated during integration.
    pub segments_moved: usize,
    /// Segment swaps during integration.
    pub segments_swapped: usize,
    /// Padded-footprint overlaps remaining (0 for a legal layout).
    pub remaining_overlaps: usize,
}

/// Integration-aware legalizer configuration + entry point.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Legalizer {
    /// Occupancy bitmap resolution (mm).
    pub resolution_mm: f64,
    /// Resonant safety margin (mm) enforced by the strict legalization
    /// passes (the legalization-side τ check); 0 disables it.
    pub resonant_margin_mm: f64,
    /// Which qubit-legalization algorithm phase 1 uses.
    pub qubit_legalizer: QubitLegalizerKind,
}

/// Selectable qubit-legalization algorithm (phase 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QubitLegalizerKind {
    /// The paper's greedy spiral search + min-cost-flow refinement, with
    /// resonance-aware strict passes (default).
    SpiralMcmf,
    /// Classical Abacus row legalization (§VII related work) — lower
    /// displacement on row-friendly layouts, resonance-oblivious.
    Abacus,
}

impl Legalizer {
    /// Creates a legalizer with the given bitmap resolution.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_mm` is not positive.
    #[must_use]
    pub fn new(resolution_mm: f64) -> Self {
        assert!(resolution_mm > 0.0, "resolution must be positive");
        Self {
            resolution_mm,
            resonant_margin_mm: 0.3,
            qubit_legalizer: QubitLegalizerKind::SpiralMcmf,
        }
    }

    /// Selects the qubit-legalization algorithm.
    #[must_use]
    pub fn with_qubit_legalizer(mut self, kind: QubitLegalizerKind) -> Self {
        self.qubit_legalizer = kind;
        self
    }

    /// Sets the resonant safety margin used by the strict passes.
    #[must_use]
    pub fn with_resonant_margin(mut self, margin_mm: f64) -> Self {
        self.resonant_margin_mm = margin_mm;
        self
    }

    /// Runs qubit legalization, segment Tetris, and resonator integration
    /// on `netlist`, mutating positions in place.
    ///
    /// Allocating convenience wrapper around [`Legalizer::run_with`].
    pub fn run(&self, netlist: &mut QuantumNetlist) -> LegalReport {
        let mut ws = LegalWorkspace::new();
        self.run_with(netlist, &mut ws)
    }

    /// Like [`Legalizer::run`], but threads a persistent [`LegalWorkspace`]
    /// through all three phases: the occupancy bitmap, resonance grid, and
    /// every candidate/cluster/cost buffer are reused, so steady-state
    /// legalizations of the same netlist shape allocate nothing. Candidate
    /// scoring fans across the current rayon pool with deterministic
    /// lowest-index selection, so reports and positions are identical at
    /// any thread count.
    pub fn run_with(&self, netlist: &mut QuantumNetlist, ws: &mut LegalWorkspace) -> LegalReport {
        self.run_traced(netlist, ws, &mut NullTraceSink)
    }

    /// Like [`Legalizer::run_with`], but emits one
    /// [`TraceRecord::LegalPhase`] per phase (`qubits`, `segments`,
    /// `resonators`, `overlap_check`) into `sink`. Timing flows only
    /// into `sink`; positions and the report are bit-identical to the
    /// untraced path.
    pub fn run_traced(
        &self,
        netlist: &mut QuantumNetlist,
        ws: &mut LegalWorkspace,
        sink: &mut dyn TraceSink,
    ) -> LegalReport {
        self.run_phases(netlist, ws, sink, None)
    }

    /// Incremental legalization for the ECO path: instances with
    /// `pinned[i]` set keep their current (already legal) positions —
    /// their footprints are pre-marked into the occupancy bitmap and
    /// resonance tracker, so every unpinned instance legalizes around
    /// them. Pinned segments still anchor their resonator chains, and
    /// integration repairs only resonators with an unpinned segment
    /// (swaps never pick a pinned victim). The overlap count at the end
    /// covers the whole layout, pinned included.
    ///
    /// The dirty region always legalizes through the spiral+MCMF
    /// engine; the Abacus row pass has no pinned-obstacle form.
    ///
    /// # Panics
    ///
    /// Panics if `pinned.len() != netlist.num_instances()`.
    pub fn run_incremental(
        &self,
        netlist: &mut QuantumNetlist,
        ws: &mut LegalWorkspace,
        pinned: &[bool],
    ) -> LegalReport {
        self.run_incremental_traced(netlist, ws, pinned, &mut NullTraceSink)
    }

    /// Like [`Legalizer::run_incremental`], with per-phase trace records
    /// (see [`Legalizer::run_traced`] for the tracing contract).
    pub fn run_incremental_traced(
        &self,
        netlist: &mut QuantumNetlist,
        ws: &mut LegalWorkspace,
        pinned: &[bool],
        sink: &mut dyn TraceSink,
    ) -> LegalReport {
        assert_eq!(
            pinned.len(),
            netlist.num_instances(),
            "pin mask does not match netlist"
        );
        self.run_phases(netlist, ws, sink, Some(pinned))
    }

    fn run_phases(
        &self,
        netlist: &mut QuantumNetlist,
        ws: &mut LegalWorkspace,
        sink: &mut dyn TraceSink,
        pinned: Option<&[bool]>,
    ) -> LegalReport {
        let _span = qplacer_obs::span!("legalize", instances = netlist.num_instances() as u64);
        // The bitmap workspace extends slightly beyond the sized region:
        // mixing incommensurate footprints (e.g. 0.5 mm segments among
        // 0.8 mm qubits) can fragment the last few percent of free space,
        // and a bounded spill ring guarantees feasibility. Spill spots are
        // distance-penalized, so they are used only as a last resort; the
        // area metrics measure the layout actually produced.
        let workspace = netlist.region().inflated(2.0 * netlist.max_padded_side());
        ws.bitmap.reset(workspace, self.resolution_mm);
        ws.tracker.reset(netlist, self.resonant_margin_mm);
        // One pool-width probe per run: `current_num_threads` can cost a
        // syscall, far too slow to ask per candidate.
        ws.search.set_parallel_from_pool();
        let pitch = site_pitch_with(netlist, &mut ws.sizes);
        // Pinned instances become fixed obstacles before any phase runs.
        if let Some(mask) = pinned {
            for id in (0..netlist.num_instances()).filter(|&id| mask[id]) {
                ws.bitmap.mark(&netlist.padded_rect(id));
                ws.tracker.place(netlist, id, netlist.position(id));
            }
        }
        let phase_start = Instant::now();
        let qubit_span = qplacer_obs::span!("legalize_qubits", qubits = netlist.num_qubits());
        match self.qubit_legalizer {
            // The incremental path has pinned obstacles only the
            // spiral engine understands.
            QubitLegalizerKind::SpiralMcmf | QubitLegalizerKind::Abacus if pinned.is_some() => {
                legalize_qubits_with(
                    netlist,
                    &mut ws.bitmap,
                    &mut ws.tracker,
                    pitch,
                    &mut ws.search,
                    &mut ws.qubits,
                    pinned,
                );
            }
            QubitLegalizerKind::SpiralMcmf => {
                legalize_qubits_with(
                    netlist,
                    &mut ws.bitmap,
                    &mut ws.tracker,
                    pitch,
                    &mut ws.search,
                    &mut ws.qubits,
                    None,
                );
            }
            QubitLegalizerKind::Abacus => {
                let disp = legalize_qubits_abacus(netlist, &mut ws.bitmap);
                ws.qubits.displacement.clear();
                ws.qubits.displacement.extend_from_slice(&disp);
                for q in 0..netlist.num_qubits() {
                    let id = netlist.qubit_instance(q);
                    ws.tracker.place(netlist, id, netlist.position(id));
                }
            }
        }
        drop(qubit_span);
        sink.record(&TraceRecord::LegalPhase {
            phase: "qubits",
            elapsed_ns: phase_start.elapsed().as_nanos() as u64,
            items: netlist.num_qubits() as u64,
        });
        let phase_start = Instant::now();
        let segment_span = qplacer_obs::span!(
            "legalize_segments",
            segments = netlist.num_instances() - netlist.num_qubits()
        );
        legalize_segments_with(
            netlist,
            &mut ws.bitmap,
            &mut ws.tracker,
            pitch,
            &mut ws.search,
            &mut ws.tetris,
            pinned,
        );
        drop(segment_span);
        sink.record(&TraceRecord::LegalPhase {
            phase: "segments",
            elapsed_ns: phase_start.elapsed().as_nanos() as u64,
            items: (netlist.num_instances() - netlist.num_qubits()) as u64,
        });
        let phase_start = Instant::now();
        let stats = {
            let _span =
                qplacer_obs::span!("legalize_resonators", resonators = netlist.num_resonators());
            integrate_resonators_with(netlist, &mut ws.bitmap, pitch, &mut ws.integ, pinned)
        };
        sink.record(&TraceRecord::LegalPhase {
            phase: "resonators",
            elapsed_ns: phase_start.elapsed().as_nanos() as u64,
            items: netlist.num_resonators() as u64,
        });
        let phase_start = Instant::now();
        // Integration leaves its spatial index at the final positions;
        // count remaining overlaps from it instead of rebuilding one.
        let remaining_overlaps = count_overlaps(netlist, &ws.integ.grid, &mut ws.search.query);
        sink.record(&TraceRecord::LegalPhase {
            phase: "overlap_check",
            elapsed_ns: phase_start.elapsed().as_nanos() as u64,
            items: netlist.num_instances() as u64,
        });

        let (mean_q, max_q) = disp_stats(ws.qubits.displacement.iter().copied());
        let (mean_s, max_s) = disp_stats(ws.tetris.displacement.iter().map(|&(_, d)| d));

        LegalReport {
            mean_qubit_displacement: mean_q,
            max_qubit_displacement: max_q,
            mean_segment_displacement: mean_s,
            max_segment_displacement: max_s,
            integrated_before: stats.integrated_before,
            integrated_after: stats.integrated_after,
            resonator_count: netlist.num_resonators(),
            segments_moved: stats.moved,
            segments_swapped: stats.swapped,
            remaining_overlaps,
        }
    }
}

/// Mean and maximum of the finite values of `it`. Non-finite
/// displacements (a NaN input coordinate) are excluded so one poisoned
/// instance degrades the report gracefully instead of washing out every
/// statistic.
fn disp_stats<I: Iterator<Item = f64>>(it: I) -> (f64, f64) {
    let (mut sum, mut max, mut count) = (0.0f64, 0.0f64, 0usize);
    for d in it.filter(|d| d.is_finite()) {
        sum += d;
        max = max.max(d);
        count += 1;
    }
    if count == 0 {
        (0.0, 0.0)
    } else {
        (sum / count as f64, max)
    }
}

/// The site-lattice pitch for a netlist: the largest pitch that divides
/// every distinct padded footprint side (within tolerance), searched among
/// integer fractions of the smallest footprint. When all footprints are
/// multiples of the pitch, placements brick-pack and free space never
/// fragments below one site.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn site_pitch(netlist: &QuantumNetlist) -> f64 {
    let mut sizes = Vec::new();
    site_pitch_with(netlist, &mut sizes)
}

/// [`site_pitch`] with a caller-owned size buffer (zero steady-state
/// allocations).
pub(crate) fn site_pitch_with(netlist: &QuantumNetlist, sizes: &mut Vec<f64>) -> f64 {
    sizes.clear();
    sizes.extend(netlist.instances().iter().map(|inst| inst.padded_mm()));
    sizes.sort_unstable_by(f64::total_cmp);
    sizes.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let Some(&smallest) = sizes.first() else {
        return 0.1;
    };
    let divides_all = |p: f64| {
        sizes.iter().all(|&s| {
            let ratio = s / p;
            (ratio - ratio.round()).abs() < 1e-6
        })
    };
    for k in 1..=64 {
        let p = smallest / k as f64;
        if p < 0.05 {
            break;
        }
        if divides_all(p) {
            return p;
        }
    }
    0.05
}

impl Default for Legalizer {
    fn default() -> Self {
        Self::new(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_geometry::Point;
    use qplacer_netlist::NetlistConfig;
    use qplacer_place::{ExecOptions, GlobalPlacer, PlacerConfig};
    use qplacer_topology::Topology;

    #[test]
    fn full_legalization_after_global_placement() {
        let t = Topology::grid(3, 3);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::with_segment_size(0.4));
        GlobalPlacer::new(PlacerConfig::fast()).execute(&mut nl, ExecOptions::default());
        let report = Legalizer::default().run(&mut nl);
        assert_eq!(report.remaining_overlaps, 0);
        assert_eq!(report.resonator_count, 12);
        assert!(report.integrated_after >= report.integrated_before);
        assert!(report.mean_qubit_displacement <= report.max_qubit_displacement);
        assert!(report.mean_segment_displacement <= report.max_segment_displacement);
    }

    #[test]
    fn legalization_is_deterministic() {
        let t = Topology::grid(2, 2);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut a = QuantumNetlist::build(&t, &freqs, &NetlistConfig::default());
        GlobalPlacer::new(PlacerConfig::fast()).execute(&mut a, ExecOptions::default());
        let mut b = a.clone();
        let ra = Legalizer::default().run(&mut a);
        let rb = Legalizer::default().run(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn workspace_reuse_does_not_change_results() {
        let t = Topology::grid(3, 3);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut fresh = QuantumNetlist::build(&t, &freqs, &NetlistConfig::default());
        GlobalPlacer::new(PlacerConfig::fast()).execute(&mut fresh, ExecOptions::default());
        let mut reused = fresh.clone();

        let legalizer = Legalizer::default();
        let report_fresh = legalizer.run(&mut fresh);

        // Dirty the workspace on an unrelated run, then reuse it.
        let mut ws = LegalWorkspace::new();
        let t2 = Topology::grid(2, 2);
        let freqs2 = FrequencyAssigner::paper_defaults().assign(&t2);
        let mut warmup = QuantumNetlist::build(&t2, &freqs2, &NetlistConfig::default());
        GlobalPlacer::new(PlacerConfig::fast()).execute(&mut warmup, ExecOptions::default());
        let _ = legalizer.run_with(&mut warmup, &mut ws);
        let report_reused = legalizer.run_with(&mut reused, &mut ws);

        assert_eq!(report_fresh, report_reused);
        assert_eq!(fresh.positions(), reused.positions());
    }

    #[test]
    fn incremental_run_keeps_pinned_and_stays_legal() {
        let t = Topology::grid(3, 3);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::with_segment_size(0.4));
        GlobalPlacer::new(PlacerConfig::fast()).execute(&mut nl, ExecOptions::default());
        let legalizer = Legalizer::default();
        let cold = legalizer.run(&mut nl);
        assert_eq!(cold.remaining_overlaps, 0);

        // Pin everything except one qubit and one resonator's segments,
        // scatter the unpinned ones, then re-legalize incrementally.
        let mut pinned = vec![true; nl.num_instances()];
        let dirty_qubit = nl.qubit_instance(4);
        pinned[dirty_qubit] = false;
        for &seg in nl.resonator_segments(0) {
            pinned[seg] = false;
        }
        let before: Vec<Point> = nl.positions().to_vec();
        nl.set_position(dirty_qubit, Point::ORIGIN);
        let mut ws = LegalWorkspace::new();
        let report = legalizer.run_incremental(&mut nl, &mut ws, &pinned);
        assert_eq!(report.remaining_overlaps, 0, "incremental layout overlaps");
        for (id, (&p, &was)) in nl.positions().iter().zip(before.iter()).enumerate() {
            if pinned[id] {
                assert_eq!((p.x, p.y), (was.x, was.y), "pinned instance {id} moved");
            }
        }
    }

    #[test]
    fn incremental_with_all_pinned_changes_nothing() {
        let t = Topology::grid(2, 2);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::default());
        GlobalPlacer::new(PlacerConfig::fast()).execute(&mut nl, ExecOptions::default());
        let legalizer = Legalizer::default();
        let _ = legalizer.run(&mut nl);
        let before: Vec<Point> = nl.positions().to_vec();
        let pinned = vec![true; nl.num_instances()];
        let mut ws = LegalWorkspace::new();
        let report = legalizer.run_incremental(&mut nl, &mut ws, &pinned);
        assert_eq!(report.remaining_overlaps, 0);
        assert_eq!(nl.positions(), &before[..]);
        assert_eq!(report.max_qubit_displacement, 0.0);
        assert_eq!(report.max_segment_displacement, 0.0);
    }

    #[test]
    fn nan_coordinate_does_not_panic_full_pipeline() {
        // Regression: a single NaN coordinate used to crash the
        // left-to-right ordering sort; now the layout still legalizes.
        let t = Topology::grid(2, 2);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::default());
        GlobalPlacer::new(PlacerConfig::fast()).execute(&mut nl, ExecOptions::default());
        nl.set_position(nl.qubit_instance(0), Point::new(f64::NAN, f64::NAN));
        let report = Legalizer::default().run(&mut nl);
        assert_eq!(report.remaining_overlaps, 0);
        for inst in nl.instances() {
            let p = nl.position(inst.id());
            assert!(p.x.is_finite() && p.y.is_finite());
        }
        assert!(report.mean_qubit_displacement.is_finite());
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let _ = Legalizer::new(0.0);
    }
}
