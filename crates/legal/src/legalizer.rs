//! The orchestrating legalizer (all three phases).

use serde::{Deserialize, Serialize};

use qplacer_netlist::QuantumNetlist;

use crate::abacus::legalize_qubits_abacus;
use crate::integration::integrate_resonators;
use crate::qubits::legalize_qubits;
use crate::resonance::ResonanceTracker;
use crate::tetris::legalize_segments;
use crate::OccupancyBitmap;

/// Summary of a legalization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LegalReport {
    /// Mean qubit displacement (mm).
    pub mean_qubit_displacement: f64,
    /// Maximum qubit displacement (mm).
    pub max_qubit_displacement: f64,
    /// Mean segment displacement (mm).
    pub mean_segment_displacement: f64,
    /// Maximum segment displacement (mm).
    pub max_segment_displacement: f64,
    /// Resonators forming one cluster immediately after Tetris.
    pub integrated_before: usize,
    /// Resonators forming one cluster after Algorithm 1.
    pub integrated_after: usize,
    /// Total resonators.
    pub resonator_count: usize,
    /// Segments relocated during integration.
    pub segments_moved: usize,
    /// Segment swaps during integration.
    pub segments_swapped: usize,
    /// Padded-footprint overlaps remaining (0 for a legal layout).
    pub remaining_overlaps: usize,
}

/// Integration-aware legalizer configuration + entry point.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Legalizer {
    /// Occupancy bitmap resolution (mm).
    pub resolution_mm: f64,
    /// Resonant safety margin (mm) enforced by the strict legalization
    /// passes (the legalization-side τ check); 0 disables it.
    pub resonant_margin_mm: f64,
    /// Which qubit-legalization algorithm phase 1 uses.
    pub qubit_legalizer: QubitLegalizerKind,
}

/// Selectable qubit-legalization algorithm (phase 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QubitLegalizerKind {
    /// The paper's greedy spiral search + min-cost-flow refinement, with
    /// resonance-aware strict passes (default).
    SpiralMcmf,
    /// Classical Abacus row legalization (§VII related work) — lower
    /// displacement on row-friendly layouts, resonance-oblivious.
    Abacus,
}

impl Legalizer {
    /// Creates a legalizer with the given bitmap resolution.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_mm` is not positive.
    #[must_use]
    pub fn new(resolution_mm: f64) -> Self {
        assert!(resolution_mm > 0.0, "resolution must be positive");
        Self {
            resolution_mm,
            resonant_margin_mm: 0.3,
            qubit_legalizer: QubitLegalizerKind::SpiralMcmf,
        }
    }

    /// Selects the qubit-legalization algorithm.
    #[must_use]
    pub fn with_qubit_legalizer(mut self, kind: QubitLegalizerKind) -> Self {
        self.qubit_legalizer = kind;
        self
    }

    /// Sets the resonant safety margin used by the strict passes.
    #[must_use]
    pub fn with_resonant_margin(mut self, margin_mm: f64) -> Self {
        self.resonant_margin_mm = margin_mm;
        self
    }

    /// Runs qubit legalization, segment Tetris, and resonator integration
    /// on `netlist`, mutating positions in place.
    pub fn run(&self, netlist: &mut QuantumNetlist) -> LegalReport {
        // The bitmap workspace extends slightly beyond the sized region:
        // mixing incommensurate footprints (e.g. 0.5 mm segments among
        // 0.8 mm qubits) can fragment the last few percent of free space,
        // and a bounded spill ring guarantees feasibility. Spill spots are
        // distance-penalized, so they are used only as a last resort; the
        // area metrics measure the layout actually produced.
        let workspace = netlist.region().inflated(2.0 * netlist.max_padded_side());
        let mut bitmap = OccupancyBitmap::new(workspace, self.resolution_mm);
        let mut tracker = ResonanceTracker::new(netlist, self.resonant_margin_mm);
        let pitch = site_pitch(netlist);
        let qubit_disp = match self.qubit_legalizer {
            QubitLegalizerKind::SpiralMcmf => {
                legalize_qubits(netlist, &mut bitmap, &mut tracker, pitch)
            }
            QubitLegalizerKind::Abacus => {
                let disp = legalize_qubits_abacus(netlist, &mut bitmap);
                for q in 0..netlist.num_qubits() {
                    let id = netlist.qubit_instance(q);
                    tracker.place(netlist, id, netlist.position(id));
                }
                disp
            }
        };
        let seg_disp = legalize_segments(netlist, &mut bitmap, &mut tracker, pitch);
        let stats = integrate_resonators(netlist, &mut bitmap);
        let remaining_overlaps = netlist.overlapping_pairs().len();

        let stats_of = |xs: &[f64]| {
            if xs.is_empty() {
                (0.0, 0.0)
            } else {
                (
                    xs.iter().sum::<f64>() / xs.len() as f64,
                    xs.iter().copied().fold(0.0, f64::max),
                )
            }
        };
        let (mean_q, max_q) = stats_of(&qubit_disp);
        let seg_only: Vec<f64> = seg_disp.iter().map(|&(_, d)| d).collect();
        let (mean_s, max_s) = stats_of(&seg_only);

        LegalReport {
            mean_qubit_displacement: mean_q,
            max_qubit_displacement: max_q,
            mean_segment_displacement: mean_s,
            max_segment_displacement: max_s,
            integrated_before: stats.integrated_before,
            integrated_after: stats.integrated_after,
            resonator_count: netlist.num_resonators(),
            segments_moved: stats.moved,
            segments_swapped: stats.swapped,
            remaining_overlaps,
        }
    }
}

/// The site-lattice pitch for a netlist: the largest pitch that divides
/// every distinct padded footprint side (within tolerance), searched among
/// integer fractions of the smallest footprint. When all footprints are
/// multiples of the pitch, placements brick-pack and free space never
/// fragments below one site.
pub(crate) fn site_pitch(netlist: &QuantumNetlist) -> f64 {
    let mut sizes: Vec<f64> = netlist
        .instances()
        .iter()
        .map(|inst| inst.padded_mm())
        .collect();
    sizes.sort_by(f64::total_cmp);
    sizes.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let Some(&smallest) = sizes.first() else {
        return 0.1;
    };
    let divides_all = |p: f64| {
        sizes.iter().all(|&s| {
            let ratio = s / p;
            (ratio - ratio.round()).abs() < 1e-6
        })
    };
    for k in 1..=64 {
        let p = smallest / k as f64;
        if p < 0.05 {
            break;
        }
        if divides_all(p) {
            return p;
        }
    }
    0.05
}

impl Default for Legalizer {
    fn default() -> Self {
        Self::new(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::NetlistConfig;
    use qplacer_place::{GlobalPlacer, PlacerConfig};
    use qplacer_topology::Topology;

    #[test]
    fn full_legalization_after_global_placement() {
        let t = Topology::grid(3, 3);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut nl = QuantumNetlist::build(&t, &freqs, &NetlistConfig::with_segment_size(0.4));
        GlobalPlacer::new(PlacerConfig::fast()).run(&mut nl);
        let report = Legalizer::default().run(&mut nl);
        assert_eq!(report.remaining_overlaps, 0);
        assert_eq!(report.resonator_count, 12);
        assert!(report.integrated_after >= report.integrated_before);
        assert!(report.mean_qubit_displacement <= report.max_qubit_displacement);
        assert!(report.mean_segment_displacement <= report.max_segment_displacement);
    }

    #[test]
    fn legalization_is_deterministic() {
        let t = Topology::grid(2, 2);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        let mut a = QuantumNetlist::build(&t, &freqs, &NetlistConfig::default());
        GlobalPlacer::new(PlacerConfig::fast()).run(&mut a);
        let mut b = a.clone();
        let ra = Legalizer::default().run(&mut a);
        let rb = Legalizer::default().run(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let _ = Legalizer::new(0.0);
    }
}
