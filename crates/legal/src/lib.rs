//! Integration-aware legalization (paper §IV-C2, Algorithm 1).
//!
//! Global placement leaves instances at continuous, possibly overlapping
//! positions. Legalization proceeds in the paper's three phases:
//!
//! 1. **Qubit legalization** — greedy spiral search to the nearest free
//!    site per qubit, followed by a min-cost-flow reassignment that
//!    minimizes total displacement ([`mcmf`]).
//! 2. **Segment legalization** — a Tetris-style left-to-right sweep
//!    placing resonator segments at their nearest free spots.
//! 3. **Resonator integration** (Algorithm 1) — every resonator's
//!    segments must form one contiguous cluster; resonators that fail
//!    grow their largest cluster by relocating or swapping scattered
//!    segments, gated by the resonance checker τ.
//!
//! # Examples
//!
//! ```
//! use qplacer_freq::FrequencyAssigner;
//! use qplacer_legal::Legalizer;
//! use qplacer_netlist::{NetlistConfig, QuantumNetlist};
//! use qplacer_place::{GlobalPlacer, PlacerConfig};
//! use qplacer_topology::Topology;
//!
//! let device = Topology::grid(2, 2);
//! let freqs = FrequencyAssigner::paper_defaults().assign(&device);
//! let mut netlist = QuantumNetlist::build(&device, &freqs, &NetlistConfig::default());
//! GlobalPlacer::new(PlacerConfig::fast()).run(&mut netlist);
//! let report = Legalizer::default().run(&mut netlist);
//! assert_eq!(report.remaining_overlaps, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abacus;
mod bitmap;
mod integration;
mod legalizer;
pub mod mcmf;
mod qubits;
mod resonance;
mod tetris;
mod workspace;

pub use abacus::legalize_qubits_abacus;
pub use bitmap::OccupancyBitmap;
pub use legalizer::{LegalReport, Legalizer, QubitLegalizerKind};
pub use resonance::ResonanceTracker;
pub use workspace::LegalWorkspace;
