//! Abacus row-based qubit legalization (Spindler et al., ISPD'08 — the
//! classical standard-cell legalizer the paper cites in §VII).
//!
//! Qubits are uniform-height cells, so the region slices into rows of the
//! padded qubit height. Cells are processed in x order; each cell tries
//! nearby rows, and within a row the classic *PlaceRow* clustering places
//! it with provably minimal total quadratic displacement for that row's
//! cells: overlapping cells merge into clusters whose optimal position is
//! the weighted mean of their desired positions, clamped into the row.
//!
//! This is an alternative to the paper's spiral + min-cost-flow qubit
//! legalizer, exposed for the ablation study (the `ablation`
//! experiment binary): Abacus yields lower displacement on row-friendly layouts but
//! ignores resonance; the default legalizer's strict pass trades a little
//! displacement for frequency isolation.

use qplacer_geometry::Point;
use qplacer_netlist::QuantumNetlist;

use crate::OccupancyBitmap;

/// One cell being legalized into rows.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Device qubit index.
    qubit: usize,
    /// Desired (global placement) x of the cell's *left edge*.
    desired_left: f64,
    /// Cell width.
    width: f64,
}

/// A cluster of abutting cells within one row (the Abacus invariant:
/// clusters never overlap and sit at their clamped optimal positions).
#[derive(Debug, Clone)]
struct Cluster {
    /// Indices into the row's cell list.
    cells: Vec<usize>,
    /// Sum of desired left-edge positions minus intra-cluster offsets.
    q: f64,
    /// Total width.
    width: f64,
    /// Current left edge.
    x: f64,
}

/// Legalizes all qubits with Abacus rows, marking final footprints into
/// `bitmap`. Returns per-qubit displacement (mm), indexed by device
/// qubit.
///
/// # Panics
///
/// Panics if the qubits cannot fit in the region's rows (over-utilized
/// configuration).
pub fn legalize_qubits_abacus(
    netlist: &mut QuantumNetlist,
    bitmap: &mut OccupancyBitmap,
) -> Vec<f64> {
    let num_qubits = netlist.num_qubits();
    if num_qubits == 0 {
        return Vec::new();
    }
    let region = netlist.region();
    let cell_h = netlist.instance(netlist.qubit_instance(0)).padded_mm();
    let num_rows = ((region.height() / cell_h).floor() as usize).max(1);

    // Cells in x order.
    let mut cells: Vec<Cell> = (0..num_qubits)
        .map(|q| {
            let id = netlist.qubit_instance(q);
            let inst = netlist.instance(id);
            Cell {
                qubit: q,
                desired_left: netlist.position(id).x - 0.5 * inst.padded_mm(),
                width: inst.padded_mm(),
            }
        })
        .collect();
    cells.sort_by(|a, b| a.desired_left.total_cmp(&b.desired_left));

    // Row state: cells assigned so far (in placement order).
    let mut rows: Vec<Vec<Cell>> = vec![Vec::new(); num_rows];
    let row_y = |r: usize| region.min.y + (r as f64 + 0.5) * cell_h;
    let row_capacity = region.width();

    for cell in cells {
        let id = netlist.qubit_instance(cell.qubit);
        let desired_y = netlist.position(id).y;
        // Rows ordered by vertical distance from the desired position.
        let mut row_order: Vec<usize> = (0..num_rows).collect();
        row_order.sort_by(|&a, &b| {
            (row_y(a) - desired_y)
                .abs()
                .total_cmp(&(row_y(b) - desired_y).abs())
        });
        let mut best: Option<(usize, f64, Vec<f64>)> = None;
        for &r in row_order.iter().take(4.max(num_rows / 2)) {
            let used: f64 = rows[r].iter().map(|c| c.width).sum();
            if used + cell.width > row_capacity + 1e-9 {
                continue;
            }
            let mut trial = rows[r].clone();
            trial.push(cell);
            let xs = place_row(&trial, region.min.x, region.max.x);
            let cost: f64 = trial
                .iter()
                .zip(&xs)
                .map(|(c, &x)| {
                    let dy = if c.qubit == cell.qubit {
                        (row_y(r) - desired_y).abs()
                    } else {
                        0.0
                    };
                    (x - c.desired_left).abs() + dy
                })
                .sum();
            if best.as_ref().is_none_or(|(_, b, _)| cost < *b) {
                best = Some((r, cost, xs));
            }
            // A nearby row with near-zero marginal cost is good enough.
            if best.as_ref().is_some_and(|(_, b, _)| *b < 0.25) {
                break;
            }
        }
        let (r, _, _) =
            best.unwrap_or_else(|| panic!("abacus: no row can host qubit {}", cell.qubit));
        rows[r].push(cell);
    }

    // Final positions.
    let mut displacement = vec![0.0; num_qubits];
    for (r, row_cells) in rows.iter().enumerate() {
        if row_cells.is_empty() {
            continue;
        }
        let xs = place_row(row_cells, region.min.x, region.max.x);
        for (c, &left) in row_cells.iter().zip(&xs) {
            let id = netlist.qubit_instance(c.qubit);
            let before = netlist.position(id);
            let center = Point::new(left + 0.5 * c.width, row_y(r));
            netlist.set_position(id, center);
            bitmap.mark(&netlist.instance(id).padded_rect(center));
            displacement[c.qubit] = before.distance(center);
        }
    }
    displacement
}

/// The Abacus PlaceRow kernel: optimal non-overlapping left-edge
/// positions for `cells` (in insertion order) within `[row_min, row_max]`,
/// minimizing Σ|x − desired|² by cluster merging.
fn place_row(cells: &[Cell], row_min: f64, row_max: f64) -> Vec<f64> {
    // Process cells sorted by desired position for the classic invariant.
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| cells[a].desired_left.total_cmp(&cells[b].desired_left));

    let mut clusters: Vec<Cluster> = Vec::new();
    for &ci in &order {
        let c = &cells[ci];
        let mut cluster = Cluster {
            cells: vec![ci],
            q: c.desired_left,
            width: c.width,
            x: c.desired_left,
        };
        clamp(&mut cluster, row_min, row_max);
        // Merge while overlapping the previous cluster.
        while let Some(prev) = clusters.last() {
            if prev.x + prev.width > cluster.x + 1e-12 {
                let prev = clusters.pop().expect("checked non-empty");
                // New cluster = prev ⧺ cluster; desired aggregate adjusts
                // for the offset of the appended cells.
                let mut merged = Cluster {
                    q: prev.q + cluster.q - prev.width * cluster.cells.len() as f64,
                    width: prev.width + cluster.width,
                    cells: prev.cells,
                    x: 0.0,
                };
                merged.cells.extend(cluster.cells);
                merged.x = merged.q / merged.cells.len() as f64;
                clamp(&mut merged, row_min, row_max);
                cluster = merged;
            } else {
                break;
            }
        }
        clusters.push(cluster);
    }

    let mut xs = vec![0.0; cells.len()];
    for cl in &clusters {
        let mut cursor = cl.x;
        for &ci in &cl.cells {
            xs[ci] = cursor;
            cursor += cells[ci].width;
        }
    }
    xs
}

fn clamp(cl: &mut Cluster, row_min: f64, row_max: f64) {
    cl.x = cl.x.clamp(row_min, (row_max - cl.width).max(row_min));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::NetlistConfig;
    use qplacer_topology::Topology;

    fn netlist(t: &Topology) -> QuantumNetlist {
        let freqs = FrequencyAssigner::paper_defaults().assign(t);
        QuantumNetlist::build(t, &freqs, &NetlistConfig::default())
    }

    #[test]
    fn place_row_respects_order_and_bounds() {
        let cells = vec![
            Cell {
                qubit: 0,
                desired_left: -1.0,
                width: 1.0,
            },
            Cell {
                qubit: 1,
                desired_left: -0.5,
                width: 1.0,
            },
            Cell {
                qubit: 2,
                desired_left: 3.0,
                width: 1.0,
            },
        ];
        let xs = place_row(&cells, 0.0, 10.0);
        // First two clamp + cluster at the left edge, third stays put.
        assert!((xs[0] - 0.0).abs() < 1e-9);
        assert!((xs[1] - 1.0).abs() < 1e-9);
        assert!((xs[2] - 3.0).abs() < 1e-9);
        // Non-overlap.
        assert!(xs[1] >= xs[0] + 1.0 - 1e-9);
    }

    #[test]
    fn place_row_merges_overlapping_desires() {
        let cells = vec![
            Cell {
                qubit: 0,
                desired_left: 2.0,
                width: 1.0,
            },
            Cell {
                qubit: 1,
                desired_left: 2.2,
                width: 1.0,
            },
            Cell {
                qubit: 2,
                desired_left: 2.4,
                width: 1.0,
            },
        ];
        let xs = place_row(&cells, 0.0, 10.0);
        // Cluster centers on the mean of desires: left edge ≈ 1.2.
        assert!((xs[0] - 1.2).abs() < 1e-9, "{xs:?}");
        assert!((xs[1] - 2.2).abs() < 1e-9);
        assert!((xs[2] - 3.2).abs() < 1e-9);
    }

    #[test]
    fn qubits_are_disjoint_after_abacus() {
        let t = Topology::grid(3, 3);
        let mut nl = netlist(&t);
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let disp = legalize_qubits_abacus(&mut nl, &mut bm);
        assert_eq!(disp.len(), 9);
        for a in 0..9 {
            for b in a + 1..9 {
                let ra = nl.padded_rect(nl.qubit_instance(a));
                let rb = nl.padded_rect(nl.qubit_instance(b));
                assert!(!ra.overlaps(&rb), "qubits {a}/{b} overlap");
            }
        }
        let region = nl.region().inflated(1e-6);
        for q in 0..9 {
            assert!(region.contains_rect(&nl.padded_rect(nl.qubit_instance(q))));
        }
    }

    #[test]
    fn near_legal_input_moves_little() {
        let t = Topology::grid(2, 2);
        let mut nl = netlist(&t);
        let cell = nl.instance(nl.qubit_instance(0)).padded_mm();
        for q in 0..4 {
            nl.set_position(
                nl.qubit_instance(q),
                Point::new(
                    (q % 2) as f64 * (cell + 0.1) - 0.6,
                    (q / 2) as f64 * (cell + 0.1) - 0.6,
                ),
            );
        }
        let mut bm = OccupancyBitmap::new(nl.region(), 0.05);
        let disp = legalize_qubits_abacus(&mut nl, &mut bm);
        for (q, d) in disp.iter().enumerate() {
            assert!(*d < cell, "qubit {q} moved {d}");
        }
    }
}
