//! Resonance checking during legalization (the τ(·) of Algorithm 1).
//!
//! While the legalizers place instances one by one, this tracker answers
//! "would parking instance `i` at `p` violate the resonant safety margin
//! against anything already placed?". The strict legalization passes
//! consult it so candidate spots next to near-resonant neighbors are
//! skipped whenever an alternative exists; relaxed passes ignore it
//! (feasibility beats isolation as a last resort, exactly like the paper's
//! Classic arm, which shares this legalizer but has nothing to protect).

use qplacer_geometry::{Point, Rect, SpatialGrid};
use qplacer_netlist::QuantumNetlist;

/// Tracks placed instances and checks candidate positions for resonant
/// proximity violations.
#[derive(Debug, Clone)]
pub struct ResonanceTracker {
    grid: SpatialGrid,
    margin: f64,
}

impl ResonanceTracker {
    /// Creates a tracker for `netlist` with the given resonant safety
    /// margin (mm); a margin of 0 disables all checks.
    #[must_use]
    pub fn new(netlist: &QuantumNetlist, margin: f64) -> Self {
        let pad = netlist.max_padded_side() + margin + 0.1;
        Self {
            grid: SpatialGrid::new(netlist.region().inflated(pad), pad),
            margin,
        }
    }

    /// A placeholder tracker over a unit region; call
    /// [`ResonanceTracker::reset`] before use. Exists so workspaces can
    /// own a tracker before the first netlist arrives.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            grid: SpatialGrid::new(Rect::from_center(Point::ORIGIN, 1.0, 1.0), 1.0),
            margin: 0.0,
        }
    }

    /// Re-targets the tracker at `netlist` with the given margin and
    /// forgets all placements. Grid storage is reused, so steady-state
    /// resets to the same netlist shape allocate nothing.
    pub fn reset(&mut self, netlist: &QuantumNetlist, margin: f64) {
        let pad = netlist.max_padded_side() + margin + 0.1;
        self.grid.reset(netlist.region().inflated(pad), pad);
        self.margin = margin;
    }

    /// The resonant safety margin.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.margin
    }

    fn inflated(&self, netlist: &QuantumNetlist, id: usize, at: Point) -> Rect {
        netlist
            .instance(id)
            .padded_rect(at)
            .inflated(0.5 * self.margin)
    }

    /// Registers instance `id` as placed at `at`.
    pub fn place(&mut self, netlist: &QuantumNetlist, id: usize, at: Point) {
        let r = self.inflated(netlist, id, at);
        self.grid.insert(id, &r);
    }

    /// Removes a previous registration of `id` at `at`.
    pub fn unplace(&mut self, netlist: &QuantumNetlist, id: usize, at: Point) {
        let r = self.inflated(netlist, id, at);
        self.grid.remove(id, &r);
    }

    /// `true` when placing `id` at `cand` keeps the resonant margin to
    /// every already-placed near-resonant foreign instance.
    #[must_use]
    pub fn is_clean(&self, netlist: &QuantumNetlist, id: usize, cand: Point) -> bool {
        let mut scratch = Vec::new();
        self.is_clean_with(netlist, id, cand, &mut scratch)
    }

    /// Like [`ResonanceTracker::is_clean`], but reuses a caller-owned
    /// query buffer so steady-state probes allocate nothing.
    #[must_use]
    pub fn is_clean_with(
        &self,
        netlist: &QuantumNetlist,
        id: usize,
        cand: Point,
        scratch: &mut Vec<usize>,
    ) -> bool {
        if self.margin <= 0.0 {
            return true;
        }
        let inst = netlist.instance(id);
        let probe = self.inflated(netlist, id, cand);
        let dc = netlist.detuning_threshold() * 0.999;
        self.grid.query_into(&probe, scratch);
        scratch.iter().all(|&other| {
            if other == id {
                return true;
            }
            let o = netlist.instance(other);
            if o.same_resonator(inst) || !o.frequency().is_resonant_with(inst.frequency(), dc) {
                return true;
            }
            // Exact test: margin-inflated footprints must not overlap.
            !self
                .inflated(netlist, other, netlist.position(other))
                .overlaps(&probe)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qplacer_freq::FrequencyAssigner;
    use qplacer_netlist::{NetlistConfig, QuantumNetlist};
    use qplacer_topology::Topology;

    fn netlist() -> QuantumNetlist {
        let t = Topology::grid(3, 3);
        let freqs = FrequencyAssigner::paper_defaults().assign(&t);
        QuantumNetlist::build(&t, &freqs, &NetlistConfig::default())
    }

    /// First qubit pair sharing a frequency slot, or `None` when the
    /// assignment has no such pair (a degenerate pair set must not crash
    /// the caller — tests relying on a pair skip instead).
    fn same_slot_qubits(nl: &QuantumNetlist) -> Option<(usize, usize)> {
        for a in 0..nl.num_qubits() {
            for b in a + 1..nl.num_qubits() {
                let ia = nl.qubit_instance(a);
                let ib = nl.qubit_instance(b);
                if nl
                    .instance(ia)
                    .frequency()
                    .is_resonant_with(nl.instance(ib).frequency(), nl.detuning_threshold() * 0.5)
                {
                    return Some((ia, ib));
                }
            }
        }
        None
    }

    /// The skip paths above must stay dead on the fixture: if the
    /// assigner ever stops producing a same-slot pair on the 3×3 grid,
    /// this fails loudly instead of letting the τ-check tests pass
    /// vacuously.
    #[test]
    fn fixture_topology_has_a_same_slot_pair() {
        assert!(
            same_slot_qubits(&netlist()).is_some(),
            "3×3 grid fixture lost its same-slot qubit pair; τ-check \
             tests are no longer exercising anything"
        );
    }

    #[test]
    fn clean_when_far_dirty_when_close() {
        let mut nl = netlist();
        let Some((ia, ib)) = same_slot_qubits(&nl) else {
            return; // degenerate pair set: nothing to check
        };
        let mut tracker = ResonanceTracker::new(&nl, 0.3);
        nl.set_position(ia, Point::new(0.0, 0.0));
        tracker.place(&nl, ia, Point::new(0.0, 0.0));
        // Far: clean.
        assert!(tracker.is_clean(&nl, ib, Point::new(3.0, 0.0)));
        // Within padded+margin: dirty.
        assert!(!tracker.is_clean(&nl, ib, Point::new(0.9, 0.0)));
    }

    #[test]
    fn detuned_neighbors_are_always_clean() {
        let mut nl = netlist();
        // Find two qubits in *different* slots.
        let mut pair = None;
        'outer: for a in 0..nl.num_qubits() {
            for b in a + 1..nl.num_qubits() {
                let ia = nl.qubit_instance(a);
                let ib = nl.qubit_instance(b);
                if !nl
                    .instance(ia)
                    .frequency()
                    .is_resonant_with(nl.instance(ib).frequency(), nl.detuning_threshold() * 0.999)
                {
                    pair = Some((ia, ib));
                    break 'outer;
                }
            }
        }
        let Some((ia, ib)) = pair else {
            return; // degenerate pair set: every pair is same-slot
        };
        let mut tracker = ResonanceTracker::new(&nl, 0.3);
        nl.set_position(ia, Point::new(0.0, 0.0));
        tracker.place(&nl, ia, Point::new(0.0, 0.0));
        assert!(tracker.is_clean(&nl, ib, Point::new(0.85, 0.0)));
    }

    #[test]
    fn zero_margin_disables_checks() {
        let mut nl = netlist();
        let Some((ia, ib)) = same_slot_qubits(&nl) else {
            return; // degenerate pair set: nothing to check
        };
        let mut tracker = ResonanceTracker::new(&nl, 0.0);
        nl.set_position(ia, Point::ORIGIN);
        tracker.place(&nl, ia, Point::ORIGIN);
        assert!(tracker.is_clean(&nl, ib, Point::ORIGIN));
    }

    #[test]
    fn unplace_restores_cleanliness() {
        let mut nl = netlist();
        let Some((ia, ib)) = same_slot_qubits(&nl) else {
            return; // degenerate pair set: nothing to check
        };
        let mut tracker = ResonanceTracker::new(&nl, 0.3);
        nl.set_position(ia, Point::ORIGIN);
        tracker.place(&nl, ia, Point::ORIGIN);
        assert!(!tracker.is_clean(&nl, ib, Point::new(0.9, 0.0)));
        tracker.unplace(&nl, ia, Point::ORIGIN);
        assert!(tracker.is_clean(&nl, ib, Point::new(0.9, 0.0)));
    }
}
