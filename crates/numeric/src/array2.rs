//! Dense row-major 2-D array with separable-transform helpers.

use std::fmt;

/// A dense `nx × ny` array of `f64` stored row-major by `y` (index
/// `(ix, iy)` maps to `iy * nx + ix`).
///
/// This is the carrier type for density maps, potentials, and field
/// components on the placement bin grid.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::Array2;
/// let mut a = Array2::zeros(4, 3);
/// a[(1, 2)] = 5.0;
/// assert_eq!(a[(1, 2)], 5.0);
/// assert_eq!(a.sum(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Array2 {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Array2 {
    /// Creates an `nx × ny` array of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "dimensions must be positive: {nx} x {ny}");
        Self {
            nx,
            ny,
            data: vec![0.0; nx * ny],
        }
    }

    /// Creates an array from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nx * ny` or either dimension is zero.
    #[must_use]
    pub fn from_data(nx: usize, ny: usize, data: Vec<f64>) -> Self {
        assert!(nx > 0 && ny > 0, "dimensions must be positive: {nx} x {ny}");
        assert_eq!(data.len(), nx * ny, "data length mismatch");
        Self { nx, ny, data }
    }

    /// Number of columns (x extent).
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows (y extent).
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Raw row-major data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum element (NaNs propagate as in `f64::max`).
    ///
    /// # Panics
    ///
    /// Never panics: arrays are non-empty by construction.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// One row (fixed `iy`) as a slice.
    #[must_use]
    pub fn row(&self, iy: usize) -> &[f64] {
        &self.data[iy * self.nx..(iy + 1) * self.nx]
    }

    /// Applies `f` to each row in place. `f` must return a vector of the
    /// same length.
    pub fn map_rows<F: Fn(&[f64]) -> Vec<f64>>(&mut self, f: F) {
        for iy in 0..self.ny {
            let out = f(self.row(iy));
            debug_assert_eq!(out.len(), self.nx);
            self.data[iy * self.nx..(iy + 1) * self.nx].copy_from_slice(&out);
        }
    }

    /// Applies `f` to each column in place. `f` must return a vector of the
    /// same length.
    pub fn map_cols<F: Fn(&[f64]) -> Vec<f64>>(&mut self, f: F) {
        let mut col = vec![0.0; self.ny];
        for ix in 0..self.nx {
            for iy in 0..self.ny {
                col[iy] = self[(ix, iy)];
            }
            let out = f(&col);
            debug_assert_eq!(out.len(), self.ny);
            for iy in 0..self.ny {
                self[(ix, iy)] = out[iy];
            }
        }
    }

    /// Elementwise combination with another array of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_apply<F: Fn(f64, f64) -> f64>(&mut self, other: &Array2, f: F) {
        assert_eq!(self.nx, other.nx, "shape mismatch");
        assert_eq!(self.ny, other.ny, "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Array2 {
    type Output = f64;
    fn index(&self, (ix, iy): (usize, usize)) -> &f64 {
        debug_assert!(ix < self.nx && iy < self.ny);
        &self.data[iy * self.nx + ix]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Array2 {
    fn index_mut(&mut self, (ix, iy): (usize, usize)) -> &mut f64 {
        debug_assert!(ix < self.nx && iy < self.ny);
        &mut self.data[iy * self.nx + ix]
    }
}

impl fmt::Display for Array2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Array2 {}x{}", self.nx, self.ny)?;
        for iy in (0..self.ny).rev() {
            for ix in 0..self.nx {
                write!(f, "{:9.3} ", self[(ix, iy)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major_by_y() {
        let a = Array2::from_data(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(2, 0)], 3.0);
        assert_eq!(a[(0, 1)], 4.0);
        assert_eq!(a[(2, 1)], 6.0);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn map_rows_and_cols_compose_to_transpose_free_2d_ops() {
        // Doubling rows then tripling columns scales everything by 6.
        let mut a = Array2::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.map_rows(|r| r.iter().map(|v| v * 2.0).collect());
        a.map_cols(|c| c.iter().map(|v| v * 3.0).collect());
        assert_eq!(a.data(), &[6.0, 12.0, 18.0, 24.0]);
    }

    #[test]
    fn aggregates() {
        let a = Array2::from_data(2, 2, vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(a.sum(), 2.5);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn zip_apply_elementwise() {
        let mut a = Array2::from_data(2, 1, vec![1.0, 2.0]);
        let b = Array2::from_data(2, 1, vec![10.0, 20.0]);
        a.zip_apply(&b, |x, y| x + y);
        assert_eq!(a.data(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_apply_shape_mismatch_panics() {
        let mut a = Array2::zeros(2, 2);
        let b = Array2::zeros(3, 2);
        a.zip_apply(&b, |x, _| x);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn bad_data_length_panics() {
        let _ = Array2::from_data(2, 2, vec![0.0; 3]);
    }
}
