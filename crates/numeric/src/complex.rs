//! A minimal complex-number type for the FFT kernels.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// Only the operations the FFT and DCT kernels need are provided; this is
/// deliberately not a general complex-math library.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::Complex64;
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}` — a unit phasor at angle `theta` radians.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiplication by a real scalar.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex64 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex64 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!((a * a.conj()).re, 25.0);
        assert!((a * a.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..8 {
            let theta = std::f64::consts::PI * k as f64 / 4.0;
            assert!((Complex64::cis(theta).norm() - 1.0).abs() < 1e-12);
        }
        let e = Complex64::cis(std::f64::consts::PI);
        assert!((e.re + 1.0).abs() < 1e-12 && e.im.abs() < 1e-12);
    }
}
