//! Small statistics helpers for metrics and benchmark reporting.

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(qplacer_numeric::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(qplacer_numeric::mean(&[]), 0.0);
/// ```
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of positive values; `0.0` for an empty slice.
///
/// The paper's headline "36.7× average fidelity improvement" style numbers
/// are ratios of per-benchmark values; geometric means are the right
/// aggregate for ratios.
///
/// # Examples
///
/// ```
/// let g = qplacer_numeric::geo_mean(&[1.0, 100.0]);
/// assert!((g - 10.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any value is not strictly positive.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geo_mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Sample standard deviation (n−1 denominator); `0.0` for fewer than two
/// samples.
///
/// # Examples
///
/// ```
/// let sd = qplacer_numeric::std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((sd - 2.138089935299395).abs() < 1e-12);
/// ```
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Pearson correlation coefficient of two equal-length samples; `None`
/// when fewer than two points or either variance vanishes.
///
/// Used to verify the paper's Fig. 12 observation that program fidelity
/// is inversely related to the hotspot proportion.
///
/// # Examples
///
/// ```
/// let r = qplacer_numeric::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// let anti = qplacer_numeric::pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
/// assert!((anti + 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "sample length mismatch");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[10.0]), 10.0);
        assert_eq!(mean(&[-1.0, 1.0]), 0.0);
    }

    #[test]
    fn geo_mean_of_equal_values_is_the_value() {
        assert!((geo_mean(&[5.0, 5.0, 5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geo_mean_rejects_zero() {
        let _ = geo_mean(&[1.0, 0.0]);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(std_dev(&[42.0]), 0.0);
    }

    #[test]
    fn pearson_edge_cases() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none(), "zero variance");
        let r = pearson(&[0.0, 1.0, 2.0, 3.0], &[5.0, 4.0, 6.0, 7.0]).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
