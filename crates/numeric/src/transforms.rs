//! Fast trigonometric transforms (DCT-II, DCT-III, IDXST) built on the FFT.
//!
//! Conventions (all *unnormalized*, matching the classical definitions):
//!
//! * DCT-II:  `X_k = Σ_{n=0}^{N-1} x_n · cos(π k (2n+1) / 2N)`
//! * DCT-III: `x_n = X_0/2 + Σ_{k=1}^{N-1} X_k · cos(π k (2n+1) / 2N)`
//! * IDXST:   `s_n = Σ_{k=1}^{N-1} b_k · sin(π k (2n+1) / 2N)`
//!
//! `dct3(dct2(x)) == (N/2)·x`. The IDXST is the sine-flavored inverse used
//! by DREAMPlace to evaluate the electric field from DCT coefficients; it
//! reduces to a DCT-III via `s_n = (-1)^n · dct3(c)` with `c_0 = 0`,
//! `c_j = b_{N-j}`.
//!
//! Naive O(N²) references are exported for testing and as a fallback for
//! non-power-of-two lengths.

use crate::{fft, Complex64};

/// Forward DCT-II of `x` (unnormalized). Uses the FFT (Makhoul's
/// even-odd permutation) when `x.len()` is a power of two, and the naive
/// O(N²) sum otherwise.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{dct2, naive_dct2};
/// let x = [0.5, -1.0, 2.0, 0.0, 1.5, 3.0, -0.5, 1.0];
/// let fast = dct2(&x);
/// let slow = naive_dct2(&x);
/// for (a, b) in fast.iter().zip(&slow) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[must_use]
pub fn dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if !n.is_power_of_two() {
        return naive_dct2(x);
    }
    // Even-odd permutation: v = [x0, x2, ..., x_{N-2}, x_{N-1}, ..., x3, x1].
    let mut v = vec![Complex64::ZERO; n];
    for i in 0..n / 2 {
        v[i] = Complex64::new(x[2 * i], 0.0);
        v[n - 1 - i] = Complex64::new(x[2 * i + 1], 0.0);
    }
    if n == 1 {
        v[0] = Complex64::new(x[0], 0.0);
    }
    fft(&mut v);
    let mut out = vec![0.0; n];
    for (k, item) in out.iter_mut().enumerate() {
        let phase = Complex64::cis(-std::f64::consts::PI * k as f64 / (2.0 * n as f64));
        *item = (v[k] * phase).re;
    }
    out
}

/// DCT-III of `y` (unnormalized); the inverse of [`dct2`] up to the factor
/// `N/2`. Falls back to the naive sum for non-power-of-two lengths.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{dct2, dct3};
/// let x = [1.0, 4.0, 9.0, 16.0];
/// let restored: Vec<f64> = dct3(&dct2(&x)).iter().map(|v| v / 2.0).collect();
/// for (a, b) in x.iter().zip(&restored) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[must_use]
pub fn dct3(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    if n == 0 {
        return Vec::new();
    }
    if !n.is_power_of_two() {
        return naive_dct3(y);
    }
    if n == 1 {
        return vec![y[0] / 2.0];
    }
    // Inverse of the Makhoul factorization:
    //   V_k = 0.5 · e^{iπk/2N} · (y_k - i·y_{N-k}),  y_N := 0
    // then v = IFFT(V) (with the *forward* exponent convention used in
    // `fft`, the inverse needs conjugation), and de-permutation.
    let mut big_v = vec![Complex64::ZERO; n];
    for k in 0..n {
        let y_k = y[k];
        let y_nk = if k == 0 { 0.0 } else { y[n - k] };
        let phase = Complex64::cis(std::f64::consts::PI * k as f64 / (2.0 * n as f64));
        big_v[k] = (Complex64::new(y_k, -y_nk) * phase).scale(0.5);
    }
    crate::ifft(&mut big_v);
    // ifft divides by n; the unnormalized DCT-III needs the raw sum, so
    // multiply back.
    let mut out = vec![0.0; n];
    for i in 0..n / 2 {
        out[2 * i] = big_v[i].re * n as f64;
        out[2 * i + 1] = big_v[n - 1 - i].re * n as f64;
    }
    out
}

/// IDXST — the half-sample inverse sine transform
/// `s_n = Σ_{k=1}^{N-1} b_k · sin(π k (2n+1) / 2N)` (`b_0` is ignored,
/// matching the zero sine frequency).
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{idxst, naive_idxst};
/// let b = [0.0, 1.0, -0.5, 0.25];
/// let fast = idxst(&b);
/// let slow = naive_idxst(&b);
/// for (a, c) in fast.iter().zip(&slow) {
///     assert!((a - c).abs() < 1e-9);
/// }
/// ```
#[must_use]
pub fn idxst(b: &[f64]) -> Vec<f64> {
    let n = b.len();
    if n == 0 {
        return Vec::new();
    }
    // s_n = (-1)^n · DCT-III(c), c_0 = 0, c_j = b_{N-j}.
    let mut c = vec![0.0; n];
    for j in 1..n {
        c[j] = b[n - j];
    }
    let mut s = dct3(&c);
    for (i, v) in s.iter_mut().enumerate() {
        if i % 2 == 1 {
            *v = -*v;
        }
    }
    s
}

/// Naive O(N²) DCT-II reference.
#[must_use]
pub fn naive_dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| {
                    v * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2.0 * n as f64))
                        .cos()
                })
                .sum()
        })
        .collect()
}

/// Naive O(N²) DCT-III reference.
#[must_use]
pub fn naive_dct3(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    (0..n)
        .map(|i| {
            let mut acc = y[0] / 2.0;
            for (k, &v) in y.iter().enumerate().skip(1) {
                acc += v
                    * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2.0 * n as f64))
                        .cos();
            }
            acc
        })
        .collect()
}

/// Naive O(N²) IDXST reference.
#[must_use]
pub fn naive_idxst(b: &[f64]) -> Vec<f64> {
    let n = b.len();
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            for (k, &v) in b.iter().enumerate().skip(1) {
                acc += v
                    * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2.0 * n as f64))
                        .sin();
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + (i as f64 * 0.11).cos() - 0.3)
            .collect()
    }

    #[test]
    fn fast_dct2_matches_naive() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let x = test_signal(n);
            assert_close(&dct2(&x), &naive_dct2(&x), 1e-8);
        }
    }

    #[test]
    fn fast_dct3_matches_naive() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let y = test_signal(n);
            assert_close(&dct3(&y), &naive_dct3(&y), 1e-8);
        }
    }

    #[test]
    fn fast_idxst_matches_naive() {
        for &n in &[2usize, 4, 8, 32, 128] {
            let b = test_signal(n);
            assert_close(&idxst(&b), &naive_idxst(&b), 1e-8);
        }
    }

    #[test]
    fn dct_roundtrip_scales_by_half_n() {
        for &n in &[4usize, 16, 64] {
            let x = test_signal(n);
            let back = dct3(&dct2(&x));
            let restored: Vec<f64> = back.iter().map(|v| v * 2.0 / n as f64).collect();
            assert_close(&restored, &x, 1e-8);
        }
    }

    #[test]
    fn non_power_of_two_falls_back() {
        let x = test_signal(12);
        assert_close(&dct2(&x), &naive_dct2(&x), 1e-10);
        assert_close(&dct3(&x), &naive_dct3(&x), 1e-10);
    }

    #[test]
    fn dct2_of_constant_is_dc_only() {
        let x = vec![3.0; 16];
        let y = dct2(&x);
        assert!((y[0] - 48.0).abs() < 1e-9);
        for v in &y[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn idxst_ignores_b0() {
        let mut b = test_signal(16);
        let s1 = idxst(&b);
        b[0] += 42.0;
        let s2 = idxst(&b);
        assert_close(&s1, &s2, 1e-10);
    }
}
