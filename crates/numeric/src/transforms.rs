//! Fast trigonometric transforms (DCT-II, DCT-III, IDXST) built on the FFT.
//!
//! Conventions (all *unnormalized*, matching the classical definitions):
//!
//! * DCT-II:  `X_k = Σ_{n=0}^{N-1} x_n · cos(π k (2n+1) / 2N)`
//! * DCT-III: `x_n = X_0/2 + Σ_{k=1}^{N-1} X_k · cos(π k (2n+1) / 2N)`
//! * IDXST:   `s_n = Σ_{k=1}^{N-1} b_k · sin(π k (2n+1) / 2N)`
//!
//! `dct3(dct2(x)) == (N/2)·x`. The IDXST is the sine-flavored inverse used
//! by DREAMPlace to evaluate the electric field from DCT coefficients; it
//! reduces to a DCT-III via `s_n = (-1)^n · dct3(c)` with `c_0 = 0`,
//! `c_j = b_{N-j}`.
//!
//! Every positive length takes an O(N log N) planned kernel (radix-2,
//! mixed-radix, or Bluestein — see [`crate::FftPlan`]); the naive O(N²)
//! references are exported for testing only. Each naive call increments
//! the `qplacer_dct_naive_fallback_total` counter in the global
//! [`qplacer_obs`] metrics registry, so any code path that regresses to
//! the quadratic sums is diagnosable (`qplacer profile` surfaces it)
//! instead of silently slow. These free functions allocate their outputs
//! and look up the cached [`crate::FftPlan`] per call — hot loops should
//! hold a plan (or [`crate::SpectralPlan`]) and use the `*_inplace`
//! kernels instead.

use std::sync::OnceLock;

use crate::plan::fft_plan;
use crate::Complex64;

/// Cached handle to the naive-transform tripwire counter.
fn naive_fallback_counter() -> &'static std::sync::Arc<qplacer_obs::Counter> {
    static COUNTER: OnceLock<std::sync::Arc<qplacer_obs::Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| qplacer_obs::global().counter("qplacer_dct_naive_fallback_total"))
}

/// Forward DCT-II of `x` (unnormalized). Runs on the planned FFT kernel
/// for any length (Makhoul's even-odd permutation).
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{dct2, naive_dct2};
/// let x = [0.5, -1.0, 2.0, 0.0, 1.5, 3.0, -0.5, 1.0];
/// let fast = dct2(&x);
/// let slow = naive_dct2(&x);
/// for (a, b) in fast.iter().zip(&slow) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[must_use]
pub fn dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let plan = fft_plan(n);
    let mut out = x.to_vec();
    let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
    plan.dct2_inplace(&mut out, &mut scratch);
    out
}

/// DCT-III of `y` (unnormalized); the inverse of [`dct2`] up to the factor
/// `N/2`. Runs on the planned FFT kernel for any length.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{dct2, dct3};
/// let x = [1.0, 4.0, 9.0, 16.0];
/// let restored: Vec<f64> = dct3(&dct2(&x)).iter().map(|v| v / 2.0).collect();
/// for (a, b) in x.iter().zip(&restored) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[must_use]
pub fn dct3(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    if n == 0 {
        return Vec::new();
    }
    let plan = fft_plan(n);
    let mut out = y.to_vec();
    let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
    plan.dct3_inplace(&mut out, &mut scratch);
    out
}

/// IDXST — the half-sample inverse sine transform
/// `s_n = Σ_{k=1}^{N-1} b_k · sin(π k (2n+1) / 2N)` (`b_0` is ignored,
/// matching the zero sine frequency). Runs on the planned FFT kernel for
/// any length.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{idxst, naive_idxst};
/// let b = [0.0, 1.0, -0.5, 0.25];
/// let fast = idxst(&b);
/// let slow = naive_idxst(&b);
/// for (a, c) in fast.iter().zip(&slow) {
///     assert!((a - c).abs() < 1e-9);
/// }
/// ```
#[must_use]
pub fn idxst(b: &[f64]) -> Vec<f64> {
    let n = b.len();
    if n == 0 {
        return Vec::new();
    }
    let plan = fft_plan(n);
    let mut out = b.to_vec();
    let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
    plan.idxst_inplace(&mut out, &mut scratch);
    out
}

/// Naive O(N²) DCT-II reference. Increments the
/// `qplacer_dct_naive_fallback_total` metrics counter on every call.
#[must_use]
pub fn naive_dct2(x: &[f64]) -> Vec<f64> {
    naive_fallback_counter().inc();
    let n = x.len();
    (0..n)
        .map(|k| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| {
                    v * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2.0 * n as f64))
                        .cos()
                })
                .sum()
        })
        .collect()
}

/// Naive O(N²) DCT-III reference. Increments the
/// `qplacer_dct_naive_fallback_total` metrics counter on every call.
#[must_use]
pub fn naive_dct3(y: &[f64]) -> Vec<f64> {
    naive_fallback_counter().inc();
    let n = y.len();
    (0..n)
        .map(|i| {
            let mut acc = y[0] / 2.0;
            for (k, &v) in y.iter().enumerate().skip(1) {
                acc += v
                    * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2.0 * n as f64))
                        .cos();
            }
            acc
        })
        .collect()
}

/// Naive O(N²) IDXST reference. Increments the
/// `qplacer_dct_naive_fallback_total` metrics counter on every call.
#[must_use]
pub fn naive_idxst(b: &[f64]) -> Vec<f64> {
    naive_fallback_counter().inc();
    let n = b.len();
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            for (k, &v) in b.iter().enumerate().skip(1) {
                acc += v
                    * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2.0 * n as f64))
                        .sin();
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + (i as f64 * 0.11).cos() - 0.3)
            .collect()
    }

    #[test]
    fn fast_dct2_matches_naive() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let x = test_signal(n);
            assert_close(&dct2(&x), &naive_dct2(&x), 1e-8);
        }
    }

    #[test]
    fn fast_dct3_matches_naive() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let y = test_signal(n);
            assert_close(&dct3(&y), &naive_dct3(&y), 1e-8);
        }
    }

    #[test]
    fn fast_idxst_matches_naive() {
        for &n in &[2usize, 4, 8, 32, 128] {
            let b = test_signal(n);
            assert_close(&idxst(&b), &naive_idxst(&b), 1e-8);
        }
    }

    #[test]
    fn dct_roundtrip_scales_by_half_n() {
        // Non-power-of-two lengths round-trip too, now that every length
        // is planned.
        for &n in &[4usize, 16, 64, 12, 100, 127] {
            let x = test_signal(n);
            let back = dct3(&dct2(&x));
            let restored: Vec<f64> = back.iter().map(|v| v * 2.0 / n as f64).collect();
            assert_close(&restored, &x, 1e-8);
        }
    }

    #[test]
    fn non_power_of_two_takes_planned_path() {
        for &n in &[12usize, 100, 127] {
            let x = test_signal(n);
            assert_close(&dct2(&x), &naive_dct2(&x), 1e-9);
            assert_close(&dct3(&x), &naive_dct3(&x), 1e-9);
            assert_close(&idxst(&x), &naive_idxst(&x), 1e-9);
        }
    }

    #[test]
    fn naive_reference_increments_fallback_counter() {
        let counter = naive_fallback_counter();
        let before = counter.get();
        let _ = naive_dct2(&[1.0, 2.0, 3.0]);
        let _ = naive_dct3(&[1.0, 2.0, 3.0]);
        let _ = naive_idxst(&[1.0, 2.0, 3.0]);
        // Other tests may bump the global counter concurrently, so only
        // a lower bound is asserted.
        assert!(counter.get() >= before + 3);
    }

    #[test]
    fn dct2_of_constant_is_dc_only() {
        let x = vec![3.0; 16];
        let y = dct2(&x);
        assert!((y[0] - 48.0).abs() < 1e-9);
        for v in &y[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn idxst_ignores_b0() {
        let mut b = test_signal(16);
        let s1 = idxst(&b);
        b[0] += 42.0;
        let s2 = idxst(&b);
        assert_close(&s1, &s2, 1e-10);
    }
}
