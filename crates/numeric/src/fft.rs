//! Arbitrary-length FFT free functions.
//!
//! The free functions here are thin wrappers over the cached
//! [`crate::FftPlan`] for their length, so twiddle factors and the
//! bit-reversal permutation are computed once per length per process.
//! Power-of-two lengths run the radix-2 kernel, 2/3/5-smooth lengths the
//! mixed-radix Stockham kernel, and remaining lengths the Bluestein
//! chirp-z kernel — all O(n log n). Hot paths should hold a plan (or a
//! [`crate::SpectralPlan`]) directly.

use crate::plan::fft_plan;
use crate::Complex64;

/// In-place forward FFT: `X_k = Σ_n x_n e^{-2πi nk/N}`, for any length.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{fft, ifft, Complex64};
/// let mut x: Vec<Complex64> = (0..8).map(|n| Complex64::new(n as f64, 0.0)).collect();
/// let orig = x.clone();
/// fft(&mut x);
/// ifft(&mut x);
/// for (a, b) in x.iter().zip(&orig) {
///     assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
/// }
/// ```
pub fn fft(data: &mut [Complex64]) {
    if data.is_empty() {
        return;
    }
    fft_plan(data.len()).fft_inplace(data);
}

/// In-place inverse FFT, normalized by `1/N` so that `ifft(fft(x)) == x`,
/// for any length.
pub fn ifft(data: &mut [Complex64]) {
    if data.is_empty() {
        return;
    }
    fft_plan(data.len()).ifft_inplace(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (idx, &v) in x.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (k * idx) as f64 / n as f64;
                    acc += v * Complex64::cis(theta);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        // Radix-2, mixed-radix, and Bluestein lengths.
        for &n in &[1usize, 2, 4, 8, 16, 64, 3, 12, 45, 100, 127] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin() + 0.5, (i as f64 * 0.7).cos()))
                .collect();
            let expected = naive_dft(&x);
            let mut got = x.clone();
            fft(&mut got);
            assert_close(&got, &expected, 1e-9);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i * i % 17) as f64, (i % 5) as f64 - 2.0))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        assert_close(&y, &x, 1e-9);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn non_power_of_two_round_trips() {
        for &n in &[12usize, 100, 127, 250] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i * i % 17) as f64, (i % 5) as f64 - 2.0))
                .collect();
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            assert_close(&y, &x, 1e-9);
        }
    }
}
