//! Nesterov accelerated gradient descent with Barzilai–Borwein steps.
//!
//! This is the optimizer driving the placement objective (Eq. 14): smooth
//! wirelength + density penalty + frequency penalty. The scheme follows
//! ePlace's placement-tailored Nesterov method: momentum parameter
//! `a_{k+1} = (1 + √(4a_k² + 1))/2`, look-ahead reference points, and a
//! BB1 step size estimated from consecutive reference iterates.

/// Externally visible optimizer state after a step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverState {
    /// Iteration count so far.
    pub iteration: usize,
    /// Step length used by the most recent step.
    pub step: f64,
    /// Infinity norm of the most recent gradient.
    pub grad_inf_norm: f64,
}

/// Nesterov accelerated gradient solver over a flat `Vec<f64>` of
/// coordinates (the placer packs `x` then `y` positions into one vector).
///
/// The caller owns the objective: each [`step`](NesterovSolver::step) call
/// passes the gradient evaluated at the solver's current reference point.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::NesterovSolver;
/// // Minimize f(p) = Σ (p_i - 3)².
/// let mut solver = NesterovSolver::new(vec![10.0, -4.0], 0.1);
/// for _ in 0..200 {
///     let grad: Vec<f64> = solver
///         .reference()
///         .iter()
///         .map(|&v| 2.0 * (v - 3.0))
///         .collect();
///     solver.step(&grad);
/// }
/// for &v in solver.position() {
///     assert!((v - 3.0).abs() < 1e-6);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct NesterovSolver {
    /// Major iterate `u_k`.
    u: Vec<f64>,
    /// Reference (look-ahead) iterate `v_k` where gradients are evaluated.
    v: Vec<f64>,
    v_prev: Vec<f64>,
    g_prev: Vec<f64>,
    a: f64,
    step: f64,
    max_step: f64,
    iteration: usize,
    last_grad_inf: f64,
}

impl NesterovSolver {
    /// Creates a solver starting at `x0` with initial step length
    /// `initial_step` (in coordinate units per unit gradient).
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or `initial_step` is not positive/finite.
    #[must_use]
    pub fn new(x0: Vec<f64>, initial_step: f64) -> Self {
        assert!(!x0.is_empty(), "optimizer needs at least one coordinate");
        assert!(
            initial_step.is_finite() && initial_step > 0.0,
            "initial step must be positive"
        );
        let n = x0.len();
        Self {
            u: x0.clone(),
            v: x0,
            v_prev: vec![0.0; n],
            g_prev: vec![0.0; n],
            a: 1.0,
            step: initial_step,
            max_step: initial_step * 1e4,
            iteration: 0,
            last_grad_inf: f64::INFINITY,
        }
    }

    /// The reference point `v_k` at which the caller must evaluate the
    /// gradient before calling [`step`](NesterovSolver::step).
    #[must_use]
    pub fn reference(&self) -> &[f64] {
        &self.v
    }

    /// The best-known solution iterate `u_k`.
    #[must_use]
    pub fn position(&self) -> &[f64] {
        &self.u
    }

    /// Mutable access to the solution iterate; used by the placer to clamp
    /// positions into the placement region after a step. The reference
    /// point is kept consistent by copying the clamped values.
    pub fn override_position<F: FnMut(&mut [f64])>(&mut self, mut f: F) {
        f(&mut self.u);
        f(&mut self.v);
    }

    /// Current solver state.
    #[must_use]
    pub fn state(&self) -> SolverState {
        SolverState {
            iteration: self.iteration,
            step: self.step,
            grad_inf_norm: self.last_grad_inf,
        }
    }

    /// Performs one accelerated step given the gradient at
    /// [`reference`](NesterovSolver::reference).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the coordinate count.
    pub fn step(&mut self, grad: &[f64]) {
        assert_eq!(grad.len(), self.u.len(), "gradient length mismatch");
        let n = self.u.len();

        // Barzilai–Borwein step estimate from consecutive reference points.
        // BB2 (Δv·Δg / Δg·Δg) is the conservative estimate — an inverse
        // Rayleigh quotient of the local Hessian — and keeps the
        // accelerated iteration stable on ill-conditioned objectives; the
        // BB1-style √(Δv²/Δg²) is the fallback when curvature information
        // is negative (non-convex region).
        if self.iteration > 0 {
            let mut dv2 = 0.0;
            let mut dg2 = 0.0;
            let mut dvdg = 0.0;
            for (i, &g) in grad.iter().enumerate().take(n) {
                let dv = self.v[i] - self.v_prev[i];
                let dg = g - self.g_prev[i];
                dv2 += dv * dv;
                dg2 += dg * dg;
                dvdg += dv * dg;
            }
            if dg2 > 1e-30 && dv2 > 0.0 {
                let bb = if dvdg > 0.0 {
                    dvdg / dg2
                } else {
                    (dv2 / dg2).sqrt()
                };
                // Cap growth so one noisy estimate cannot blow up the
                // trajectory; shrinking is allowed freely.
                self.step = bb.clamp(1e-12, (self.step * 10.0).min(self.max_step));
            }
        }

        let grad_inf = grad.iter().fold(0.0_f64, |m, g| m.max(g.abs()));
        // Divergence guard: a sustained blow-up of the gradient norm means
        // the momentum direction went stale (e.g. after a penalty
        // re-weighting); restart the momentum sequence.
        if grad_inf > 10.0 * self.last_grad_inf && self.iteration > 2 {
            self.a = 1.0;
            self.v.copy_from_slice(&self.u);
        }
        self.last_grad_inf = grad_inf;

        let a_next = 0.5 * (1.0 + (4.0 * self.a * self.a + 1.0).sqrt());
        let coef = (self.a - 1.0) / a_next;

        self.v_prev.copy_from_slice(&self.v);
        self.g_prev.copy_from_slice(grad);

        // u_{k+1} = v_k - α g(v_k);  v_{k+1} = u_{k+1} + coef (u_{k+1} - u_k)
        for (i, &g) in grad.iter().enumerate().take(n) {
            let u_next = self.v[i] - self.step * g;
            let u_old = self.u[i];
            self.u[i] = u_next;
            self.v[i] = u_next + coef * (u_next - u_old);
        }

        self.a = a_next;
        self.iteration += 1;
    }

    /// Resets the momentum sequence (used when the placer re-weights the
    /// objective so aggressively that the old momentum direction is stale).
    pub fn restart_momentum(&mut self) {
        self.a = 1.0;
        self.v.copy_from_slice(&self.u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_grad(center: &[f64], scale: &[f64], at: &[f64]) -> Vec<f64> {
        at.iter()
            .zip(center)
            .zip(scale)
            .map(|((&x, &c), &s)| 2.0 * s * (x - c))
            .collect()
    }

    #[test]
    fn converges_on_isotropic_quadratic() {
        let center = vec![1.0, -2.0, 0.5];
        let scale = vec![1.0, 1.0, 1.0];
        let mut s = NesterovSolver::new(vec![50.0, 30.0, -9.0], 0.05);
        for _ in 0..300 {
            let g = quad_grad(&center, &scale, s.reference());
            s.step(&g);
        }
        for (x, c) in s.position().iter().zip(&center) {
            assert!((x - c).abs() < 1e-5, "{x} vs {c}");
        }
    }

    #[test]
    fn converges_on_anisotropic_quadratic() {
        // Condition number 100: BB steps should still converge quickly.
        let center = vec![3.0, -1.0];
        let scale = vec![100.0, 1.0];
        let mut s = NesterovSolver::new(vec![10.0, 10.0], 1e-3);
        for _ in 0..2000 {
            let g = quad_grad(&center, &scale, s.reference());
            s.step(&g);
        }
        for (x, c) in s.position().iter().zip(&center) {
            assert!((x - c).abs() < 1e-4, "{x} vs {c}");
        }
    }

    #[test]
    fn bb_step_adapts() {
        let mut s = NesterovSolver::new(vec![100.0], 1e-6);
        for _ in 0..50 {
            let g = quad_grad(&[0.0], &[1.0], s.reference());
            s.step(&g);
        }
        // The BB estimate should have grown far beyond the timid initial step.
        assert!(s.state().step > 1e-3, "step stayed at {}", s.state().step);
    }

    #[test]
    fn override_position_keeps_iterates_consistent() {
        let mut s = NesterovSolver::new(vec![5.0, -5.0], 0.1);
        s.step(&[1.0, -1.0]);
        s.override_position(|p| {
            for v in p.iter_mut() {
                *v = v.clamp(-1.0, 1.0);
            }
        });
        for (&u, &v) in s.position().iter().zip(s.reference()) {
            assert!(u.abs() <= 1.0);
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn restart_resets_reference_to_position() {
        let mut s = NesterovSolver::new(vec![1.0], 0.1);
        for _ in 0..5 {
            s.step(&[0.3]);
        }
        s.restart_momentum();
        assert_eq!(s.position(), s.reference());
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn wrong_gradient_length_panics() {
        let mut s = NesterovSolver::new(vec![0.0; 3], 0.1);
        s.step(&[1.0]);
    }
}
