//! Numerical kernels for the electrostatic placement engine.
//!
//! QPlacer's density model follows ePlace/DREAMPlace: the instance density
//! map is treated as a charge distribution, Poisson's equation is solved
//! spectrally with discrete cosine transforms, and the resulting field
//! drives instances apart. This crate supplies those kernels from scratch:
//!
//! * [`Complex64`] and a radix-2 [`fft`] / [`ifft`] pair.
//! * Fast [`dct2`] (DCT-II), [`dct3`] (DCT-III) and [`idxst`] (the
//!   half-sample inverse sine transform DREAMPlace uses for field
//!   computation), all FFT-backed with O(n log n) cost.
//! * [`Array2`] — a dense row-major 2-D array with separable transform
//!   helpers.
//! * [`PoissonSolver`] — density → potential ψ and field (ξx, ξy).
//! * [`NesterovSolver`] — accelerated gradient descent with
//!   Barzilai–Borwein step estimation, the paper's placement optimizer.
//! * Small statistics helpers ([`mean`], [`geo_mean`]) used by the metrics
//!   and benchmark reports.
//!
//! # Plans and workspaces (the hot path)
//!
//! The free-function transforms allocate per call; the placement loop
//! instead uses the *planned* API, mirroring FFTW/DREAMPlace:
//!
//! 1. Build an [`FftPlan`] (per length) or a 2-D [`SpectralPlan`] once —
//!    this precomputes bit-reversal tables, twiddle factors, and DCT
//!    phase tables.
//! 2. Allocate the matching workspaces once: a [`SpectralScratch`] (a
//!    transpose buffer plus one complex row buffer per worker) and, for
//!    Poisson solves, a [`PoissonField`] via [`PoissonField::zeros`].
//! 3. Call the `*_inplace` row kernels / [`SpectralPlan::apply_2d`] /
//!    [`PoissonSolver::solve_into`] in the loop: the kernel code itself
//!    performs **zero heap allocations** on any grid size and fans
//!    row passes across the current rayon pool width. Row results are
//!    computed independently, so outputs are bit-identical for any
//!    thread count. (Under a pool wider than one worker, the scoped
//!    worker threads themselves cost runtime thread-stack allocations —
//!    the strict zero-allocation steady state holds on a 1-thread pool,
//!    matching the vendored rayon's own spawn-per-call model.)
//!
//! Every positive length is planned in O(n log n): power-of-two lengths
//! on the radix-2 kernel, other 2/3/5-smooth lengths on the mixed-radix
//! Stockham kernel, and the rest on the Bluestein chirp-z kernel.
//! [`is_fast_path`] reports whether a length lands on a dedicated
//! butterfly kernel (smooth) or pays the Bluestein constant factor, and
//! [`next_smooth`] rounds a grid size up to the nearest smooth length.
//!
//! # Examples
//!
//! ```
//! use qplacer_numeric::{dct2, dct3};
//! let x = vec![1.0, 2.0, 3.0, 4.0];
//! let back: Vec<f64> = dct3(&dct2(&x))
//!     .iter()
//!     .map(|v| v * 2.0 / x.len() as f64)
//!     .collect();
//! for (a, b) in x.iter().zip(&back) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array2;
mod complex;
mod fft;
mod nesterov;
mod plan;
mod poisson;
mod stats;
mod transforms;

pub use array2::Array2;
pub use complex::Complex64;
pub use fft::{fft, ifft};
pub use nesterov::{NesterovSolver, SolverState};
pub use plan::{
    fft_plan, is_fast_path, next_smooth, transform_scratch_len, FftPlan, RowOp, SpectralPlan,
    SpectralScratch,
};
pub use poisson::{PoissonField, PoissonSolver};
pub use stats::{geo_mean, mean, pearson, std_dev};
pub use transforms::{dct2, dct3, idxst, naive_dct2, naive_dct3, naive_idxst};
