//! Spectral Poisson solver on the placement bin grid.
//!
//! Following ePlace (Lu et al.) and DREAMPlace, the density map `ρ` is the
//! charge distribution of an electrostatic system with Neumann boundary
//! conditions; the potential solves `∇²ψ = -ρ`. With the half-sample
//! cosine basis `cos(πu(2i+1)/2Nx)·cos(πv(2j+1)/2Ny)`, the solution is
//! diagonal in DCT space:
//!
//! ```text
//! a_uv = DCT2(ρ),   ψ̂_uv = a_uv / (w_u² + w_v²),   w_u = πu/Nx
//! ψ  = IDCT(ψ̂)
//! ξx = IDXST_x(IDCT_y(ψ̂ · w_u))   (= -∂ψ/∂x, the x-field)
//! ξy = IDCT_x(IDXST_y(ψ̂ · w_v))   (= -∂ψ/∂y, the y-field)
//! ```
//!
//! The DC coefficient is dropped (a neutralized system: forces are relative
//! to the uniform target density).

use crate::{dct2, dct3, idxst, Array2};

/// Result of one Poisson solve: potential and field maps on the bin grid.
#[derive(Debug, Clone)]
pub struct PoissonField {
    /// Electric potential ψ per bin (energy density contribution).
    pub psi: Array2,
    /// Field component ξx per bin (`-∂ψ/∂x`), in 1/bin units.
    pub ex: Array2,
    /// Field component ξy per bin (`-∂ψ/∂y`), in 1/bin units.
    pub ey: Array2,
}

/// Spectral Poisson solver bound to a fixed `nx × ny` bin grid.
///
/// The solver pre-computes the frequency weights once; [`PoissonSolver::solve`]
/// then costs four 2-D transforms.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{Array2, PoissonSolver};
/// let solver = PoissonSolver::new(16, 16);
/// let mut rho = Array2::zeros(16, 16);
/// rho[(4, 8)] = 1.0; // a point charge
/// let field = solver.solve(&rho);
/// // Field pushes away from the charge: left of it, ex is negative.
/// assert!(field.ex[(2, 8)] < 0.0);
/// assert!(field.ex[(6, 8)] > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonSolver {
    nx: usize,
    ny: usize,
    wu: Vec<f64>,
    wv: Vec<f64>,
}

impl PoissonSolver {
    /// Creates a solver for an `nx × ny` grid. Powers of two get the
    /// O(N log N) fast path; other sizes work through the naive transforms.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dims must be positive");
        let wu = (0..nx)
            .map(|u| std::f64::consts::PI * u as f64 / nx as f64)
            .collect();
        let wv = (0..ny)
            .map(|v| std::f64::consts::PI * v as f64 / ny as f64)
            .collect();
        Self { nx, ny, wu, wv }
    }

    /// Grid dimensions `(nx, ny)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Solves for the potential and field of the density map `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `rho`'s shape differs from the solver grid.
    #[must_use]
    pub fn solve(&self, rho: &Array2) -> PoissonField {
        assert_eq!(rho.nx(), self.nx, "density grid shape mismatch");
        assert_eq!(rho.ny(), self.ny, "density grid shape mismatch");

        // Forward 2-D DCT-II.
        let mut a = rho.clone();
        a.map_rows(dct2);
        a.map_cols(dct2);

        // Normalization: each dimension's DCT-II/DCT-III roundtrip scales
        // by N/2, so divide by (nx/2)(ny/2).
        let norm = 4.0 / (self.nx as f64 * self.ny as f64);

        let mut psi_hat = Array2::zeros(self.nx, self.ny);
        let mut bx = Array2::zeros(self.nx, self.ny);
        let mut by = Array2::zeros(self.nx, self.ny);
        for v in 0..self.ny {
            for u in 0..self.nx {
                if u == 0 && v == 0 {
                    continue; // neutralize DC
                }
                let w2 = self.wu[u] * self.wu[u] + self.wv[v] * self.wv[v];
                let coef = a[(u, v)] * norm / w2;
                psi_hat[(u, v)] = coef;
                bx[(u, v)] = coef * self.wu[u];
                by[(u, v)] = coef * self.wv[v];
            }
        }

        // ψ = IDCT_x(IDCT_y(ψ̂))
        let mut psi = psi_hat.clone();
        psi.map_rows(dct3);
        psi.map_cols(dct3);

        // ξx = IDXST along x, IDCT along y.
        let mut ex = bx;
        ex.map_rows(idxst);
        ex.map_cols(dct3);

        // ξy = IDCT along x, IDXST along y.
        let mut ey = by;
        ey.map_rows(dct3);
        ey.map_cols(idxst);

        PoissonField { psi, ex, ey }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Discrete Laplacian of ψ (interior bins, unit spacing).
    fn laplacian(psi: &Array2, ix: usize, iy: usize) -> f64 {
        psi[(ix + 1, iy)] + psi[(ix - 1, iy)] + psi[(ix, iy + 1)] + psi[(ix, iy - 1)]
            - 4.0 * psi[(ix, iy)]
    }

    #[test]
    fn potential_satisfies_poisson_interior() {
        let n = 32;
        let solver = PoissonSolver::new(n, n);
        let mut rho = Array2::zeros(n, n);
        // Smooth blob: the spectral solution matches the 5-point Laplacian
        // to discretization error.
        for iy in 0..n {
            for ix in 0..n {
                let dx = ix as f64 - 16.0;
                let dy = iy as f64 - 12.0;
                rho[(ix, iy)] = (-(dx * dx + dy * dy) / 18.0).exp();
            }
        }
        // Remove DC so the neutralized equation holds exactly.
        let mean = rho.sum() / (n * n) as f64;
        for v in rho.data_mut() {
            *v -= mean;
        }
        let field = solver.solve(&rho);
        let mut max_err: f64 = 0.0;
        for iy in 8..24 {
            for ix in 8..24 {
                let lap = laplacian(&field.psi, ix, iy);
                max_err = max_err.max((lap + rho[(ix, iy)]).abs());
            }
        }
        // Second-order finite-difference error on a smooth field.
        assert!(max_err < 0.05, "max Poisson residual {max_err}");
    }

    #[test]
    fn field_points_away_from_charge() {
        let n = 32;
        let solver = PoissonSolver::new(n, n);
        let mut rho = Array2::zeros(n, n);
        rho[(16, 16)] = 1.0;
        let f = solver.solve(&rho);
        assert!(f.ex[(12, 16)] < 0.0, "left of charge pushes -x");
        assert!(f.ex[(20, 16)] > 0.0, "right of charge pushes +x");
        assert!(f.ey[(16, 12)] < 0.0, "below charge pushes -y");
        assert!(f.ey[(16, 20)] > 0.0, "above charge pushes +y");
    }

    #[test]
    fn field_is_gradient_of_potential() {
        let n = 32;
        let solver = PoissonSolver::new(n, n);
        let mut rho = Array2::zeros(n, n);
        for iy in 0..n {
            for ix in 0..n {
                let dx = ix as f64 - 10.0;
                let dy = iy as f64 - 20.0;
                rho[(ix, iy)] = (-(dx * dx + dy * dy) / 30.0).exp();
            }
        }
        let f = solver.solve(&rho);
        let mut max_err: f64 = 0.0;
        for iy in 4..28 {
            for ix in 4..28 {
                let num_ex = -(f.psi[(ix + 1, iy)] - f.psi[(ix - 1, iy)]) / 2.0;
                let num_ey = -(f.psi[(ix, iy + 1)] - f.psi[(ix, iy - 1)]) / 2.0;
                max_err = max_err.max((num_ex - f.ex[(ix, iy)]).abs());
                max_err = max_err.max((num_ey - f.ey[(ix, iy)]).abs());
            }
        }
        assert!(max_err < 0.05, "field/potential mismatch {max_err}");
    }

    #[test]
    fn uniform_density_gives_zero_field() {
        let solver = PoissonSolver::new(16, 16);
        let mut rho = Array2::zeros(16, 16);
        for v in rho.data_mut() {
            *v = 0.7;
        }
        let f = solver.solve(&rho);
        for iy in 0..16 {
            for ix in 0..16 {
                assert!(f.ex[(ix, iy)].abs() < 1e-9);
                assert!(f.ey[(ix, iy)].abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rectangular_grid_works() {
        // A smooth blob (a point charge rings at this resolution: the
        // spectral derivative of a delta has Gibbs oscillations, which the
        // bin-smoothed densities of real placements never exhibit).
        let solver = PoissonSolver::new(32, 16);
        let mut rho = Array2::zeros(32, 16);
        for iy in 0..16 {
            for ix in 0..32 {
                let dx = ix as f64 - 12.0;
                let dy = iy as f64 - 8.0;
                rho[(ix, iy)] = (-(dx * dx + dy * dy) / 8.0).exp();
            }
        }
        let f = solver.solve(&rho);
        assert!(
            f.ex[(6, 8)] < 0.0,
            "left of blob pushes -x: {}",
            f.ex[(6, 8)]
        );
        assert!(
            f.ex[(18, 8)] > 0.0,
            "right of blob pushes +x: {}",
            f.ex[(18, 8)]
        );
        assert!(
            f.ey[(12, 4)] < 0.0,
            "below blob pushes -y: {}",
            f.ey[(12, 4)]
        );
        assert!(
            f.ey[(12, 12)] > 0.0,
            "above blob pushes +y: {}",
            f.ey[(12, 12)]
        );
    }
}
