//! Spectral Poisson solver on the placement bin grid.
//!
//! Following ePlace (Lu et al.) and DREAMPlace, the density map `ρ` is the
//! charge distribution of an electrostatic system with Neumann boundary
//! conditions; the potential solves `∇²ψ = -ρ`. With the half-sample
//! cosine basis `cos(πu(2i+1)/2Nx)·cos(πv(2j+1)/2Ny)`, the solution is
//! diagonal in DCT space:
//!
//! ```text
//! a_uv = DCT2(ρ),   ψ̂_uv = a_uv / (w_u² + w_v²),   w_u = πu/Nx
//! ψ  = IDCT(ψ̂)
//! ξx = IDXST_x(IDCT_y(ψ̂ · w_u))   (= -∂ψ/∂x, the x-field)
//! ξy = IDCT_x(IDXST_y(ψ̂ · w_v))   (= -∂ψ/∂y, the y-field)
//! ```
//!
//! The DC coefficient is dropped (a neutralized system: forces are relative
//! to the uniform target density).

use crate::plan::{RowOp, SpectralPlan, SpectralScratch};
use crate::Array2;

/// Result of one Poisson solve: potential and field maps on the bin grid.
///
/// Doubles as the caller-owned output workspace of
/// [`PoissonSolver::solve_into`]: allocate once with
/// [`PoissonField::zeros`], then reuse it across solves.
#[derive(Debug, Clone)]
pub struct PoissonField {
    /// Electric potential ψ per bin (energy density contribution).
    pub psi: Array2,
    /// Field component ξx per bin (`-∂ψ/∂x`), in 1/bin units.
    pub ex: Array2,
    /// Field component ξy per bin (`-∂ψ/∂y`), in 1/bin units.
    pub ey: Array2,
}

impl PoissonField {
    /// An all-zero field workspace on an `nx × ny` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(nx: usize, ny: usize) -> Self {
        Self {
            psi: Array2::zeros(nx, ny),
            ex: Array2::zeros(nx, ny),
            ey: Array2::zeros(nx, ny),
        }
    }
}

/// Spectral Poisson solver bound to a fixed `nx × ny` bin grid.
///
/// The solver pre-computes the frequency weights once; [`PoissonSolver::solve`]
/// then costs four 2-D transforms.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{Array2, PoissonSolver};
/// let solver = PoissonSolver::new(16, 16);
/// let mut rho = Array2::zeros(16, 16);
/// rho[(4, 8)] = 1.0; // a point charge
/// let field = solver.solve(&rho);
/// // Field pushes away from the charge: left of it, ex is negative.
/// assert!(field.ex[(2, 8)] < 0.0);
/// assert!(field.ex[(6, 8)] > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonSolver {
    nx: usize,
    ny: usize,
    wu: Vec<f64>,
    wv: Vec<f64>,
    /// Planned transforms; every grid size is O(N log N) (see
    /// [`crate::FftPlan`] for the per-length kernel selection).
    plan: SpectralPlan,
}

impl PoissonSolver {
    /// Creates a solver for an `nx × ny` grid. Every size runs the
    /// planned O(N log N) transforms; 2/3/5-smooth dimensions (see
    /// [`crate::is_fast_path`]) use the dedicated butterfly kernels,
    /// other sizes the Bluestein chirp-z kernel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dims must be positive");
        let wu = (0..nx)
            .map(|u| std::f64::consts::PI * u as f64 / nx as f64)
            .collect();
        let wv = (0..ny)
            .map(|v| std::f64::consts::PI * v as f64 / ny as f64)
            .collect();
        let plan = SpectralPlan::new(nx, ny);
        Self {
            nx,
            ny,
            wu,
            wv,
            plan,
        }
    }

    /// Grid dimensions `(nx, ny)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// A transform scratch sized for this solver's grid, for use with
    /// [`PoissonSolver::solve_into`].
    #[must_use]
    pub fn make_scratch(&self) -> SpectralScratch {
        SpectralScratch::new(self.nx, self.ny)
    }

    /// Solves for the potential and field of the density map `rho`.
    ///
    /// Convenience wrapper over [`PoissonSolver::solve_into`] that
    /// allocates a fresh field and scratch per call; iterative callers
    /// should hold both and use `solve_into` directly.
    ///
    /// # Panics
    ///
    /// Panics if `rho`'s shape differs from the solver grid.
    #[must_use]
    pub fn solve(&self, rho: &Array2) -> PoissonField {
        let mut field = PoissonField::zeros(self.nx, self.ny);
        let mut scratch = self.make_scratch();
        self.solve_into(rho, &mut field, &mut scratch);
        field
    }

    /// Solves for the potential and field of `rho`, writing into the
    /// caller-owned `field` workspace.
    ///
    /// This performs **zero heap allocations** on any grid size: the
    /// four 2-D transforms run through the precomputed [`SpectralPlan`]
    /// with `scratch` as working memory, with row passes fanned across
    /// the current rayon pool width.
    ///
    /// # Panics
    ///
    /// Panics if `rho`'s shape differs from the solver grid or `scratch`
    /// was built for a smaller grid.
    pub fn solve_into(
        &self,
        rho: &Array2,
        field: &mut PoissonField,
        scratch: &mut SpectralScratch,
    ) {
        self.solve_into_impl(rho, field, scratch, true);
    }

    /// Like [`PoissonSolver::solve_into`], but computes only the field
    /// components (ξx, ξy), skipping the inverse transform that produces
    /// the potential ψ — one of the four 2-D transforms. Use when only
    /// gradients are needed (the placer's steady-state loop). After the
    /// call `field.psi` holds the *spectral* coefficients ψ̂, not ψ.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PoissonSolver::solve_into`].
    pub fn solve_field_into(
        &self,
        rho: &Array2,
        field: &mut PoissonField,
        scratch: &mut SpectralScratch,
    ) {
        self.solve_into_impl(rho, field, scratch, false);
    }

    fn solve_into_impl(
        &self,
        rho: &Array2,
        field: &mut PoissonField,
        scratch: &mut SpectralScratch,
        want_potential: bool,
    ) {
        assert_eq!(rho.nx(), self.nx, "density grid shape mismatch");
        assert_eq!(rho.ny(), self.ny, "density grid shape mismatch");
        assert_eq!(field.psi.nx(), self.nx, "field workspace shape mismatch");
        assert_eq!(field.psi.ny(), self.ny, "field workspace shape mismatch");
        let _span = qplacer_obs::span!("poisson_solve", grid = self.nx as u64);

        // Forward 2-D DCT-II of ρ, staged in the ψ buffer.
        {
            let _span = qplacer_obs::span!("dct2_2d", grid = self.nx as u64);
            field.psi.data_mut().copy_from_slice(rho.data());
            self.transform(&mut field.psi, scratch, RowOp::Dct2, RowOp::Dct2);
        }

        // Normalization: each dimension's DCT-II/DCT-III roundtrip scales
        // by N/2, so divide by (nx/2)(ny/2).
        let norm = 4.0 / (self.nx as f64 * self.ny as f64);

        // ψ̂ (in place over the forward coefficients) and the two
        // frequency-weighted field spectra.
        for v in 0..self.ny {
            for u in 0..self.nx {
                if u == 0 && v == 0 {
                    // Neutralize DC (workspace reuse: overwrite, not skip).
                    field.psi[(0, 0)] = 0.0;
                    field.ex[(0, 0)] = 0.0;
                    field.ey[(0, 0)] = 0.0;
                    continue;
                }
                let w2 = self.wu[u] * self.wu[u] + self.wv[v] * self.wv[v];
                let coef = field.psi[(u, v)] * norm / w2;
                field.psi[(u, v)] = coef;
                field.ex[(u, v)] = coef * self.wu[u];
                field.ey[(u, v)] = coef * self.wv[v];
            }
        }

        // ψ = IDCT_x(IDCT_y(ψ̂))
        if want_potential {
            self.transform(&mut field.psi, scratch, RowOp::Dct3, RowOp::Dct3);
        }
        // ξx = IDXST along x, IDCT along y.
        self.transform(&mut field.ex, scratch, RowOp::Idxst, RowOp::Dct3);
        // ξy = IDCT along x, IDXST along y.
        self.transform(&mut field.ey, scratch, RowOp::Dct3, RowOp::Idxst);
    }

    fn transform(
        &self,
        a: &mut Array2,
        scratch: &mut SpectralScratch,
        row_op: RowOp,
        col_op: RowOp,
    ) {
        self.plan.apply_2d(a, scratch, row_op, col_op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Discrete Laplacian of ψ (interior bins, unit spacing).
    fn laplacian(psi: &Array2, ix: usize, iy: usize) -> f64 {
        psi[(ix + 1, iy)] + psi[(ix - 1, iy)] + psi[(ix, iy + 1)] + psi[(ix, iy - 1)]
            - 4.0 * psi[(ix, iy)]
    }

    #[test]
    fn potential_satisfies_poisson_interior() {
        let n = 32;
        let solver = PoissonSolver::new(n, n);
        let mut rho = Array2::zeros(n, n);
        // Smooth blob: the spectral solution matches the 5-point Laplacian
        // to discretization error.
        for iy in 0..n {
            for ix in 0..n {
                let dx = ix as f64 - 16.0;
                let dy = iy as f64 - 12.0;
                rho[(ix, iy)] = (-(dx * dx + dy * dy) / 18.0).exp();
            }
        }
        // Remove DC so the neutralized equation holds exactly.
        let mean = rho.sum() / (n * n) as f64;
        for v in rho.data_mut() {
            *v -= mean;
        }
        let field = solver.solve(&rho);
        let mut max_err: f64 = 0.0;
        for iy in 8..24 {
            for ix in 8..24 {
                let lap = laplacian(&field.psi, ix, iy);
                max_err = max_err.max((lap + rho[(ix, iy)]).abs());
            }
        }
        // Second-order finite-difference error on a smooth field.
        assert!(max_err < 0.05, "max Poisson residual {max_err}");
    }

    #[test]
    fn field_points_away_from_charge() {
        let n = 32;
        let solver = PoissonSolver::new(n, n);
        let mut rho = Array2::zeros(n, n);
        rho[(16, 16)] = 1.0;
        let f = solver.solve(&rho);
        assert!(f.ex[(12, 16)] < 0.0, "left of charge pushes -x");
        assert!(f.ex[(20, 16)] > 0.0, "right of charge pushes +x");
        assert!(f.ey[(16, 12)] < 0.0, "below charge pushes -y");
        assert!(f.ey[(16, 20)] > 0.0, "above charge pushes +y");
    }

    #[test]
    fn field_is_gradient_of_potential() {
        let n = 32;
        let solver = PoissonSolver::new(n, n);
        let mut rho = Array2::zeros(n, n);
        for iy in 0..n {
            for ix in 0..n {
                let dx = ix as f64 - 10.0;
                let dy = iy as f64 - 20.0;
                rho[(ix, iy)] = (-(dx * dx + dy * dy) / 30.0).exp();
            }
        }
        let f = solver.solve(&rho);
        let mut max_err: f64 = 0.0;
        for iy in 4..28 {
            for ix in 4..28 {
                let num_ex = -(f.psi[(ix + 1, iy)] - f.psi[(ix - 1, iy)]) / 2.0;
                let num_ey = -(f.psi[(ix, iy + 1)] - f.psi[(ix, iy - 1)]) / 2.0;
                max_err = max_err.max((num_ex - f.ex[(ix, iy)]).abs());
                max_err = max_err.max((num_ey - f.ey[(ix, iy)]).abs());
            }
        }
        assert!(max_err < 0.05, "field/potential mismatch {max_err}");
    }

    #[test]
    fn uniform_density_gives_zero_field() {
        let solver = PoissonSolver::new(16, 16);
        let mut rho = Array2::zeros(16, 16);
        for v in rho.data_mut() {
            *v = 0.7;
        }
        let f = solver.solve(&rho);
        for iy in 0..16 {
            for ix in 0..16 {
                assert!(f.ex[(ix, iy)].abs() < 1e-9);
                assert!(f.ey[(ix, iy)].abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rectangular_grid_works() {
        // A smooth blob (a point charge rings at this resolution: the
        // spectral derivative of a delta has Gibbs oscillations, which the
        // bin-smoothed densities of real placements never exhibit).
        let solver = PoissonSolver::new(32, 16);
        let mut rho = Array2::zeros(32, 16);
        for iy in 0..16 {
            for ix in 0..32 {
                let dx = ix as f64 - 12.0;
                let dy = iy as f64 - 8.0;
                rho[(ix, iy)] = (-(dx * dx + dy * dy) / 8.0).exp();
            }
        }
        let f = solver.solve(&rho);
        assert!(
            f.ex[(6, 8)] < 0.0,
            "left of blob pushes -x: {}",
            f.ex[(6, 8)]
        );
        assert!(
            f.ex[(18, 8)] > 0.0,
            "right of blob pushes +x: {}",
            f.ex[(18, 8)]
        );
        assert!(
            f.ey[(12, 4)] < 0.0,
            "below blob pushes -y: {}",
            f.ey[(12, 4)]
        );
        assert!(
            f.ey[(12, 12)] > 0.0,
            "above blob pushes +y: {}",
            f.ey[(12, 12)]
        );
    }
}
