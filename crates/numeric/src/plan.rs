//! Planned, allocation-free transforms.
//!
//! The global placer runs four 2-D spectral transforms per Poisson solve,
//! hundreds of solves per placement. The free-function API
//! ([`crate::dct2`] & friends) allocates output vectors and recomputes
//! twiddle factors on every call; this module is the planned counterpart
//! used on the hot path:
//!
//! * [`FftPlan`] — a per-length plan holding the bit-reversal permutation,
//!   the twiddle-factor table, and the DCT phase tables. Its `*_inplace`
//!   row kernels write into the caller's buffer using caller-provided
//!   complex scratch, performing **zero heap allocations**.
//! * [`SpectralPlan`] — a 2-D separable-transform plan over an
//!   `nx × ny` grid. Row passes run in parallel on scoped threads (one
//!   scratch slot per worker, pre-sized in [`SpectralScratch`]), honoring
//!   the rayon pool installed by the caller: under a 1-thread pool the
//!   pass is sequential and allocation-free.
//! * [`fft_plan`] — a process-wide plan cache so the legacy free
//!   functions also stop recomputing twiddles per call.
//!
//! Row kernels are computed independently per row, so results are
//! bit-identical for any worker count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::{Array2, Complex64};

/// `true` when length-`n` transforms take the O(n log n) planned path
/// (power-of-two lengths); other lengths fall back to the naive O(n²)
/// reference sums.
#[must_use]
pub fn is_fast_path(n: usize) -> bool {
    n > 0 && n.is_power_of_two()
}

/// Which 1-D transform a row pass applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOp {
    /// Forward DCT-II.
    Dct2,
    /// DCT-III (inverse of DCT-II up to `N/2`).
    Dct3,
    /// Half-sample inverse sine transform.
    Idxst,
}

/// A reusable FFT/DCT plan for one power-of-two length.
///
/// Construction precomputes everything the transforms need; the kernels
/// themselves never allocate and never call `sin`/`cos`.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{naive_dct2, Complex64, FftPlan};
/// let plan = FftPlan::new(8);
/// let mut row = [0.5, -1.0, 2.0, 0.0, 1.5, 3.0, -0.5, 1.0];
/// let mut scratch = vec![Complex64::ZERO; 8];
/// let expected = naive_dct2(&row);
/// plan.dct2_inplace(&mut row, &mut scratch);
/// for (a, b) in row.iter().zip(&expected) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
    /// Forward twiddles `e^{-2πi k/n}` for `k < n/2`; the stage with
    /// butterfly span `len` indexes this with stride `n/len`.
    twiddle: Vec<Complex64>,
    /// DCT-II post-phases `e^{-iπk/2n}`.
    phase2: Vec<Complex64>,
    /// DCT-III pre-phases `½·e^{iπk/2n}`.
    phase3: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            is_fast_path(n),
            "FFT length must be a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if n == 1 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddle = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let phase2 = (0..n)
            .map(|k| Complex64::cis(-std::f64::consts::PI * k as f64 / (2.0 * n as f64)))
            .collect();
        let phase3 = (0..n)
            .map(|k| Complex64::cis(std::f64::consts::PI * k as f64 / (2.0 * n as f64)).scale(0.5))
            .collect();
        Self {
            n,
            rev,
            twiddle,
            phase2,
            phase3,
        }
    }

    /// The planned transform length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-0 plan, which cannot exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn permute(&self, data: &mut [Complex64]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for chunk in data.chunks_exact_mut(len) {
                for i in 0..half {
                    let w = self.twiddle[i * stride];
                    let w = if inverse { w.conj() } else { w };
                    let u = chunk[i];
                    let v = chunk[i + half] * w;
                    chunk[i] = u + v;
                    chunk[i + half] = u - v;
                }
            }
            len <<= 1;
        }
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn fft_inplace(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        self.permute(data);
        self.butterflies(data, false);
    }

    /// In-place inverse FFT normalized by `1/N` (`ifft(fft(x)) == x`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn ifft_inplace(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        self.permute(data);
        self.butterflies(data, true);
        let scale = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// Unnormalized inverse FFT: the raw conjugate-exponent sum, used by
    /// the DCT-III kernel where the `1/N · N` round trip cancels.
    fn ifft_unnormalized(&self, data: &mut [Complex64]) {
        self.permute(data);
        self.butterflies(data, true);
    }

    /// In-place DCT-II of `row` (unnormalized, matches [`crate::dct2`]).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.len()` or `scratch` is shorter than
    /// the plan length.
    pub fn dct2_inplace(&self, row: &mut [f64], scratch: &mut [Complex64]) {
        let n = self.n;
        assert_eq!(row.len(), n, "row length mismatch");
        let scratch = &mut scratch[..n];
        if n == 1 {
            return; // DCT-II of a single sample is the sample itself.
        }
        // Makhoul even-odd permutation into the complex buffer.
        for i in 0..n / 2 {
            scratch[i] = Complex64::new(row[2 * i], 0.0);
            scratch[n - 1 - i] = Complex64::new(row[2 * i + 1], 0.0);
        }
        self.fft_inplace(scratch);
        for (k, out) in row.iter_mut().enumerate() {
            *out = (scratch[k] * self.phase2[k]).re;
        }
    }

    /// In-place DCT-III of `row` (unnormalized, matches [`crate::dct3`]).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches as in [`FftPlan::dct2_inplace`].
    pub fn dct3_inplace(&self, row: &mut [f64], scratch: &mut [Complex64]) {
        let n = self.n;
        assert_eq!(row.len(), n, "row length mismatch");
        if n == 1 {
            row[0] *= 0.5;
            return;
        }
        let scratch = &mut scratch[..n];
        // V_k = ½·e^{iπk/2N}·(y_k − i·y_{N−k}), y_N := 0.
        scratch[0] = Complex64::new(row[0], 0.0) * self.phase3[0];
        for k in 1..n {
            scratch[k] = Complex64::new(row[k], -row[n - k]) * self.phase3[k];
        }
        // The unnormalized DCT-III needs the raw conjugate sum: the usual
        // 1/N of the inverse FFT and the ×N un-normalization cancel
        // exactly (N is a power of two).
        self.ifft_unnormalized(scratch);
        for i in 0..n / 2 {
            row[2 * i] = scratch[i].re;
            row[2 * i + 1] = scratch[n - 1 - i].re;
        }
    }

    /// In-place IDXST of `row` (matches [`crate::idxst`]; `row[0]` is
    /// ignored as the zero sine frequency).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches as in [`FftPlan::dct2_inplace`].
    pub fn idxst_inplace(&self, row: &mut [f64], scratch: &mut [Complex64]) {
        let n = self.n;
        assert_eq!(row.len(), n, "row length mismatch");
        if n == 1 {
            row[0] = 0.0;
            return;
        }
        let scratch = &mut scratch[..n];
        // s = (−1)^n-signed DCT-III of c with c_0 = 0, c_j = b_{N−j};
        // substituting c into the DCT-III factorization gives
        // V_k = ½·e^{iπk/2N}·(b_{N−k} − i·b_k) with V_0 = 0.
        scratch[0] = Complex64::ZERO;
        for k in 1..n {
            scratch[k] = Complex64::new(row[n - k], -row[k]) * self.phase3[k];
        }
        self.ifft_unnormalized(scratch);
        for i in 0..n / 2 {
            row[2 * i] = scratch[i].re;
            row[2 * i + 1] = -scratch[n - 1 - i].re;
        }
    }

    /// Dispatches one row kernel.
    pub fn apply_row(&self, op: RowOp, row: &mut [f64], scratch: &mut [Complex64]) {
        match op {
            RowOp::Dct2 => self.dct2_inplace(row, scratch),
            RowOp::Dct3 => self.dct3_inplace(row, scratch),
            RowOp::Idxst => self.idxst_inplace(row, scratch),
        }
    }
}

/// Returns the process-wide cached plan for length `n`, building it on
/// first use. Cached plans make the legacy free-function transforms
/// ([`crate::dct2`], [`crate::fft`], …) reuse twiddle/permutation tables
/// across calls.
///
/// # Panics
///
/// Panics if `n` is not a power of two (see [`is_fast_path`]).
#[must_use]
pub fn fft_plan(n: usize) -> Arc<FftPlan> {
    // Validate before taking the lock so a bad length can never poison
    // the cache for other threads.
    assert!(
        is_fast_path(n),
        "FFT length must be a power of two, got {n}"
    );
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))))
}

/// Caller-owned scratch for a [`SpectralPlan`]: a transpose buffer plus
/// one complex row buffer per worker slot. Building one costs two
/// allocations; reusing it across solves costs none.
#[derive(Debug, Clone)]
pub struct SpectralScratch {
    /// Transposed copy of the grid during column passes.
    transpose: Vec<f64>,
    /// `slots` contiguous complex row buffers of `slot_len` each.
    complex: Vec<Complex64>,
    slot_len: usize,
}

impl SpectralScratch {
    /// Scratch for an `nx × ny` grid, sized for every core the host can
    /// offer and never fewer than four slots (so modestly oversized
    /// pools — and the threaded code path on single-core CI — still get
    /// one slot per worker; wider pools are clamped to the slot count).
    #[must_use]
    pub fn new(nx: usize, ny: usize) -> Self {
        let slot_len = nx.max(ny).max(1);
        let slots = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .max(4);
        Self {
            transpose: vec![0.0; nx * ny],
            complex: vec![Complex64::ZERO; slots * slot_len],
            slot_len,
        }
    }
}

/// A 2-D separable-transform plan over an `nx × ny` grid (power-of-two
/// dimensions), running row passes in parallel across the current rayon
/// pool width.
///
/// Transforms are applied as `rows(x-plan) → transpose → rows(y-plan) →
/// transpose back`, so both passes stream over contiguous memory. Each
/// row is computed independently with a per-worker scratch slot, making
/// results bit-identical for any thread count.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{dct2, Array2, RowOp, SpectralPlan, SpectralScratch};
/// let plan = SpectralPlan::new(8, 4);
/// let mut scratch = SpectralScratch::new(8, 4);
/// let mut a = Array2::zeros(8, 4);
/// a[(3, 1)] = 1.0;
/// let mut b = a.clone();
/// plan.apply_2d(&mut a, &mut scratch, RowOp::Dct2, RowOp::Dct2);
/// b.map_rows(dct2);
/// b.map_cols(dct2);
/// for (x, y) in a.data().iter().zip(b.data()) {
///     assert!((x - y).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SpectralPlan {
    nx: usize,
    ny: usize,
    plan_x: Arc<FftPlan>,
    plan_y: Arc<FftPlan>,
}

impl SpectralPlan {
    /// Builds the 2-D plan.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not a power of two.
    #[must_use]
    pub fn new(nx: usize, ny: usize) -> Self {
        Self {
            nx,
            ny,
            plan_x: fft_plan(nx),
            plan_y: fft_plan(ny),
        }
    }

    /// Grid dimensions `(nx, ny)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Applies `row_op` along x and `col_op` along y, in place.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s shape differs from the plan or `scratch` was built
    /// for a smaller grid.
    pub fn apply_2d(
        &self,
        a: &mut Array2,
        scratch: &mut SpectralScratch,
        row_op: RowOp,
        col_op: RowOp,
    ) {
        assert_eq!(a.nx(), self.nx, "grid shape mismatch");
        assert_eq!(a.ny(), self.ny, "grid shape mismatch");
        assert!(
            scratch.transpose.len() >= self.nx * self.ny
                && scratch.slot_len >= self.nx.max(self.ny),
            "scratch too small for {}x{} grid",
            self.nx,
            self.ny
        );
        let SpectralScratch {
            transpose,
            complex,
            slot_len,
        } = scratch;
        let data = a.data_mut();
        par_rows(&self.plan_x, data, complex, *slot_len, row_op);
        transpose_into(data, transpose, self.nx, self.ny);
        par_rows(
            &self.plan_y,
            &mut transpose[..self.nx * self.ny],
            complex,
            *slot_len,
            col_op,
        );
        transpose_into(&transpose[..self.nx * self.ny], data, self.ny, self.nx);
    }
}

/// `dst[x*ny + y] = src[y*nx + x]` — row-major transpose of an `nx × ny`
/// grid (row length `nx`) into its `ny × nx` counterpart.
fn transpose_into(src: &[f64], dst: &mut [f64], nx: usize, ny: usize) {
    for y in 0..ny {
        let row = &src[y * nx..(y + 1) * nx];
        for (x, &v) in row.iter().enumerate() {
            dst[x * ny + y] = v;
        }
    }
}

/// Applies `op` to every contiguous length-`n` row of `data`, fanning
/// bands of rows across scoped worker threads (at most one per scratch
/// slot). With an effective width of 1 the pass runs inline and performs
/// no allocation at all.
///
/// Scoped spawns (rather than pool tasks) are deliberate: the vendored
/// rayon has no persistent workers and cannot lend out disjoint `&mut`
/// row bands, and its depth-1 nesting contract reports a width of 1
/// inside pool workers — so harness jobs running under an installed pool
/// take the inline path here and never oversubscribe the machine.
fn par_rows(
    plan: &FftPlan,
    data: &mut [f64],
    complex: &mut [Complex64],
    slot_len: usize,
    op: RowOp,
) {
    let n = plan.len();
    let rows = data.len() / n;
    let slots = complex.len() / slot_len;
    let threads = rayon::current_num_threads().min(rows).min(slots).max(1);
    if threads <= 1 {
        let scratch = &mut complex[..slot_len];
        for row in data.chunks_exact_mut(n) {
            plan.apply_row(op, row, scratch);
        }
        return;
    }
    let band = rows.div_ceil(threads) * n;
    std::thread::scope(|scope| {
        for (band_data, slot) in data.chunks_mut(band).zip(complex.chunks_mut(slot_len)) {
            scope.spawn(move || {
                for row in band_data.chunks_exact_mut(n) {
                    plan.apply_row(op, row, slot);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dct2, dct3, idxst, naive_dct2, naive_dct3, naive_idxst};

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + (i as f64 * 0.11).cos() - 0.3)
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn planned_rows_match_naive_references() {
        for &n in &[1usize, 2, 4, 8, 32, 128, 256] {
            let plan = FftPlan::new(n);
            let mut scratch = vec![Complex64::ZERO; n];
            let x = signal(n);

            let mut row = x.clone();
            plan.dct2_inplace(&mut row, &mut scratch);
            assert_close(&row, &naive_dct2(&x), 1e-8);

            let mut row = x.clone();
            plan.dct3_inplace(&mut row, &mut scratch);
            assert_close(&row, &naive_dct3(&x), 1e-8);

            let mut row = x.clone();
            plan.idxst_inplace(&mut row, &mut scratch);
            assert_close(&row, &naive_idxst(&x), 1e-8);
        }
    }

    #[test]
    fn planned_rows_match_free_functions_exactly() {
        // The free functions route through the same cached plans, so the
        // outputs must agree bit for bit.
        for &n in &[2usize, 16, 64] {
            let plan = fft_plan(n);
            let mut scratch = vec![Complex64::ZERO; n];
            let x = signal(n);
            for (op, reference) in [
                (RowOp::Dct2, dct2(&x)),
                (RowOp::Dct3, dct3(&x)),
                (RowOp::Idxst, idxst(&x)),
            ] {
                let mut row = x.clone();
                plan.apply_row(op, &mut row, &mut scratch);
                assert_eq!(row, reference, "{op:?} n={n}");
            }
        }
    }

    #[test]
    fn spectral_plan_matches_map_rows_cols() {
        let (nx, ny) = (16, 8);
        let plan = SpectralPlan::new(nx, ny);
        let mut scratch = SpectralScratch::new(nx, ny);
        let mut a = Array2::zeros(nx, ny);
        for iy in 0..ny {
            for ix in 0..nx {
                a[(ix, iy)] = ((ix * 5 + iy * 3) % 11) as f64 - 4.0;
            }
        }
        for (row_op, col_op, rf, cf) in [
            (
                RowOp::Dct2,
                RowOp::Dct2,
                dct2 as fn(&[f64]) -> Vec<f64>,
                dct2 as fn(&[f64]) -> Vec<f64>,
            ),
            (RowOp::Dct3, RowOp::Dct3, dct3, dct3),
            (RowOp::Idxst, RowOp::Dct3, idxst, dct3),
            (RowOp::Dct3, RowOp::Idxst, dct3, idxst),
        ] {
            let mut fast = a.clone();
            plan.apply_2d(&mut fast, &mut scratch, row_op, col_op);
            let mut slow = a.clone();
            slow.map_rows(rf);
            slow.map_cols(cf);
            assert_close(fast.data(), slow.data(), 1e-9);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let (nx, ny) = (32, 32);
        let plan = SpectralPlan::new(nx, ny);
        let mut a = Array2::zeros(nx, ny);
        for iy in 0..ny {
            for ix in 0..nx {
                a[(ix, iy)] = ((ix * 7 + iy) % 13) as f64 * 0.25;
            }
        }
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut scratch = SpectralScratch::new(nx, ny);
            let mut grid = a.clone();
            pool.install(|| plan.apply_2d(&mut grid, &mut scratch, RowOp::Dct2, RowOp::Dct2));
            grid
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn fast_path_predicate() {
        assert!(is_fast_path(1));
        assert!(is_fast_path(256));
        assert!(!is_fast_path(0));
        assert!(!is_fast_path(12));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_plan_panics() {
        let _ = FftPlan::new(12);
    }
}
