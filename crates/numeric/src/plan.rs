//! Planned, allocation-free transforms.
//!
//! The global placer runs four 2-D spectral transforms per Poisson solve,
//! hundreds of solves per placement. The free-function API
//! ([`crate::dct2`] & friends) allocates output vectors and recomputes
//! twiddle factors on every call; this module is the planned counterpart
//! used on the hot path:
//!
//! * [`FftPlan`] — a per-length plan. Power-of-two lengths use the
//!   iterative radix-2 kernel; 2/3/5-smooth lengths use a mixed-radix
//!   Stockham autosort kernel; every remaining length uses a Bluestein
//!   chirp-z kernel over an embedded power-of-two FFT. All three are
//!   O(n log n). The `*_inplace` row kernels write into the caller's
//!   buffer using caller-provided complex scratch (sized by
//!   [`FftPlan::scratch_len`]), performing **zero heap allocations**.
//! * [`SpectralPlan`] — a 2-D separable-transform plan over an
//!   `nx × ny` grid. Row passes run in parallel on scoped threads (one
//!   scratch slot per worker, pre-sized in [`SpectralScratch`]), honoring
//!   the rayon pool installed by the caller: under a 1-thread pool the
//!   pass is sequential and allocation-free.
//! * [`fft_plan`] — a process-wide plan cache so the legacy free
//!   functions also stop recomputing twiddles per call.
//!
//! Row kernels are computed independently per row, so results are
//! bit-identical for any worker count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::{Array2, Complex64};

/// `true` when length-`n` transforms run on a dedicated butterfly kernel
/// (`n` is 2/3/5-smooth, powers of two included). Other positive lengths
/// still run in O(n log n) via the Bluestein chirp-z kernel, but pay a
/// constant-factor overhead (an embedded FFT of roughly `4n`); placement
/// bin grids should prefer smooth sizes (see [`next_smooth`]).
#[must_use]
pub fn is_fast_path(n: usize) -> bool {
    if n == 0 {
        return false;
    }
    let mut m = n;
    for f in [2usize, 3, 5] {
        while m.is_multiple_of(f) {
            m /= f;
        }
    }
    m == 1
}

/// The smallest 2/3/5-smooth length `≥ n` (and `≥ 1`), i.e. the nearest
/// grid size at or above `n` that [`is_fast_path`] accepts. Used to round
/// coarse-level placement grids up to a butterfly-friendly size.
#[must_use]
pub fn next_smooth(n: usize) -> usize {
    let mut m = n.max(1);
    while !is_fast_path(m) {
        m += 1;
    }
    m
}

/// Complex scratch length (in elements) that length-`n` transforms
/// require: `n` for power-of-two lengths, `2n` for other smooth lengths
/// (signal + ping-pong buffer), and `n` plus the embedded
/// power-of-two convolution length for Bluestein lengths. Matches
/// [`FftPlan::scratch_len`] without building the plan.
#[must_use]
pub fn transform_scratch_len(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    if n.is_power_of_two() {
        n
    } else if is_fast_path(n) {
        2 * n
    } else {
        n + (2 * n - 1).next_power_of_two()
    }
}

/// Which 1-D transform a row pass applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOp {
    /// Forward DCT-II.
    Dct2,
    /// DCT-III (inverse of DCT-II up to `N/2`).
    Dct3,
    /// Half-sample inverse sine transform.
    Idxst,
}

/// The iterative radix-2 Cooley–Tukey kernel (bit-reversal permutation +
/// in-place butterflies), used directly for power-of-two lengths and as
/// the convolution engine inside the Bluestein kernel.
#[derive(Debug, Clone)]
struct Radix2 {
    n: usize,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
    /// Forward twiddles `e^{-2πi k/n}` for `k < n/2`; the stage with
    /// butterfly span `len` indexes this with stride `n/len`.
    twiddle: Vec<Complex64>,
}

impl Radix2 {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if n == 1 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddle = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Self { n, rev, twiddle }
    }

    /// Unnormalized transform: the raw (conjugate-)exponent sum.
    fn fft_raw(&self, data: &mut [Complex64], inverse: bool) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for chunk in data.chunks_exact_mut(len) {
                for i in 0..half {
                    let w = self.twiddle[i * stride];
                    let w = if inverse { w.conj() } else { w };
                    let u = chunk[i];
                    let v = chunk[i + half] * w;
                    chunk[i] = u + v;
                    chunk[i + half] = u - v;
                }
            }
            len <<= 1;
        }
    }
}

/// One Stockham stage of the mixed-radix kernel: splits the current
/// sub-transform length `radix·m` at stride `s`.
#[derive(Debug, Clone)]
struct Stage {
    radix: usize,
    m: usize,
    s: usize,
    /// `twiddle[p·radix + j] = e^{-2πi·p·j/(radix·m)}` for `p < m`,
    /// `j < radix`.
    twiddle: Vec<Complex64>,
    /// The radix-point DFT roots `e^{-2πi·t/radix}` for `t < radix`.
    roots: Vec<Complex64>,
}

/// Largest butterfly radix the mixed-radix kernel emits.
const MAX_RADIX: usize = 5;

fn mixed_stages(n: usize) -> Vec<Stage> {
    let mut stages = Vec::new();
    let mut n_cur = n;
    let mut s = 1usize;
    while n_cur > 1 {
        let radix = if n_cur.is_multiple_of(5) {
            5
        } else if n_cur.is_multiple_of(3) {
            3
        } else {
            2
        };
        let m = n_cur / radix;
        let twiddle = (0..m)
            .flat_map(|p| {
                (0..radix).map(move |j| {
                    Complex64::cis(-2.0 * std::f64::consts::PI * (p * j) as f64 / n_cur as f64)
                })
            })
            .collect();
        let roots = (0..radix)
            .map(|t| Complex64::cis(-2.0 * std::f64::consts::PI * t as f64 / radix as f64))
            .collect();
        stages.push(Stage {
            radix,
            m,
            s,
            twiddle,
            roots,
        });
        n_cur = m;
        s *= radix;
    }
    stages
}

/// Stockham autosort pass over all stages. `work` must hold `n`
/// elements; the result always ends in `data` (an odd stage count copies
/// back from the ping-pong buffer).
fn mixed_fft_raw(
    stages: &[Stage],
    n: usize,
    data: &mut [Complex64],
    work: &mut [Complex64],
    inverse: bool,
) {
    let work = &mut work[..n];
    let mut src: &mut [Complex64] = data;
    let mut dst: &mut [Complex64] = work;
    for stage in stages {
        let r = stage.radix;
        let m = stage.m;
        let s = stage.s;
        let mut a = [Complex64::ZERO; MAX_RADIX];
        for p in 0..m {
            for q in 0..s {
                for (c, slot) in a.iter_mut().enumerate().take(r) {
                    *slot = src[q + s * (p + c * m)];
                }
                if r == 2 {
                    // Exact ±1 butterfly, no root rounding.
                    let tw = stage.twiddle[2 * p + 1];
                    let tw = if inverse { tw.conj() } else { tw };
                    dst[q + s * (2 * p)] = a[0] + a[1];
                    dst[q + s * (2 * p + 1)] = (a[0] - a[1]) * tw;
                } else {
                    for j in 0..r {
                        let mut acc = a[0];
                        for (c, &v) in a.iter().enumerate().take(r).skip(1) {
                            let root = stage.roots[(c * j) % r];
                            let root = if inverse { root.conj() } else { root };
                            acc += v * root;
                        }
                        let tw = stage.twiddle[p * r + j];
                        let tw = if inverse { tw.conj() } else { tw };
                        dst[q + s * (r * p + j)] = acc * tw;
                    }
                }
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    if stages.len() % 2 == 1 {
        // `src` (the last-written buffer) is the ping-pong work area.
        dst.copy_from_slice(src);
    }
}

/// The per-length transform kernel behind an [`FftPlan`].
#[derive(Debug, Clone)]
enum Kernel {
    /// Power-of-two lengths: classic in-place radix-2, no work buffer.
    Radix2(Radix2),
    /// 2/3/5-smooth lengths: Stockham autosort, `n`-element work buffer.
    MixedRadix(Vec<Stage>),
    /// Everything else: Bluestein chirp-z over an embedded power-of-two
    /// circular convolution of length `inner.n ≥ 2n−1`.
    Bluestein {
        inner: Radix2,
        /// Chirp `w_t = e^{-iπ t²/n}` (with `t²` reduced mod `2n` so the
        /// angle stays in range at large `t`).
        w: Vec<Complex64>,
        /// FFT of the circularly extended conjugate chirp.
        b_fft: Vec<Complex64>,
    },
}

fn bluestein_kernel(n: usize) -> Kernel {
    let m = (2 * n - 1).next_power_of_two();
    let inner = Radix2::new(m);
    let w: Vec<Complex64> = (0..n)
        .map(|t| Complex64::cis(-std::f64::consts::PI * ((t * t) % (2 * n)) as f64 / n as f64))
        .collect();
    let mut b = vec![Complex64::ZERO; m];
    b[0] = w[0].conj();
    for t in 1..n {
        b[t] = w[t].conj();
        b[m - t] = w[t].conj();
    }
    inner.fft_raw(&mut b, false);
    Kernel::Bluestein { inner, w, b_fft: b }
}

/// Forward Bluestein: `X_k = w_k · (x·w ⊛ conj(w))[k]`, with the linear
/// convolution evaluated circularly at length `inner.n`.
fn bluestein_forward(
    inner: &Radix2,
    w: &[Complex64],
    b_fft: &[Complex64],
    data: &mut [Complex64],
    work: &mut [Complex64],
) {
    let n = data.len();
    let m = inner.n;
    let work = &mut work[..m];
    for t in 0..n {
        work[t] = data[t] * w[t];
    }
    for slot in work[n..].iter_mut() {
        *slot = Complex64::ZERO;
    }
    inner.fft_raw(work, false);
    for (v, &b) in work.iter_mut().zip(b_fft) {
        *v *= b;
    }
    inner.fft_raw(work, true);
    // The circular convolution needs the normalized inverse; fold the
    // 1/m into the final chirp multiply.
    let scale = 1.0 / m as f64;
    for (out, (&conv, &wk)) in data.iter_mut().zip(work.iter().zip(w)) {
        *out = (conv * wk).scale(scale);
    }
}

/// A reusable FFT/DCT plan for one length.
///
/// Construction precomputes everything the transforms need; the kernels
/// themselves never allocate and never call `sin`/`cos`. Power-of-two
/// lengths use the in-place radix-2 kernel, other 2/3/5-smooth lengths a
/// mixed-radix Stockham kernel, and remaining lengths the Bluestein
/// chirp-z kernel — all O(n log n).
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{naive_dct2, Complex64, FftPlan};
/// for n in [8usize, 12, 7] {
///     let plan = FftPlan::new(n);
///     let mut row: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
///     let expected = naive_dct2(&row);
///     let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
///     plan.dct2_inplace(&mut row, &mut scratch);
///     for (a, b) in row.iter().zip(&expected) {
///         assert!((a - b).abs() < 1e-9);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    kernel: Kernel,
    /// DCT-II post-phases `e^{-iπk/2n}`.
    phase2: Vec<Complex64>,
    /// DCT-III pre-phases `½·e^{iπk/2n}`.
    phase3: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let kernel = if n.is_power_of_two() {
            Kernel::Radix2(Radix2::new(n))
        } else if is_fast_path(n) {
            Kernel::MixedRadix(mixed_stages(n))
        } else {
            bluestein_kernel(n)
        };
        let phase2 = (0..n)
            .map(|k| Complex64::cis(-std::f64::consts::PI * k as f64 / (2.0 * n as f64)))
            .collect();
        let phase3 = (0..n)
            .map(|k| Complex64::cis(std::f64::consts::PI * k as f64 / (2.0 * n as f64)).scale(0.5))
            .collect();
        Self {
            n,
            kernel,
            phase2,
            phase3,
        }
    }

    /// The planned transform length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-0 plan, which cannot exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Complex scratch (in elements) the row kernels need: the length-`n`
    /// signal buffer plus this kernel's work area (none for radix-2, `n`
    /// for mixed-radix ping-pong, the embedded convolution length for
    /// Bluestein). Equals [`transform_scratch_len`]`(self.len())`.
    #[must_use]
    pub fn scratch_len(&self) -> usize {
        self.n + self.work_len()
    }

    /// Work-buffer elements the complex FFT kernel needs beyond the
    /// signal itself.
    fn work_len(&self) -> usize {
        match &self.kernel {
            Kernel::Radix2(_) => 0,
            Kernel::MixedRadix(_) => self.n,
            Kernel::Bluestein { inner, .. } => inner.n,
        }
    }

    /// Core dispatch. `work` must hold at least [`FftPlan::work_len`]
    /// elements; `normalize` divides an inverse transform by `n`.
    fn fft_with(
        &self,
        data: &mut [Complex64],
        work: &mut [Complex64],
        inverse: bool,
        normalize: bool,
    ) {
        debug_assert_eq!(data.len(), self.n);
        match &self.kernel {
            Kernel::Radix2(r2) => r2.fft_raw(data, inverse),
            Kernel::MixedRadix(stages) => mixed_fft_raw(stages, self.n, data, work, inverse),
            Kernel::Bluestein { inner, w, b_fft } => {
                if inverse {
                    // Inverse DFT via the conjugation identity:
                    // idft(x) = conj(dft(conj(x))) / n (scaling applied
                    // below only when `normalize` is set).
                    for v in data.iter_mut() {
                        *v = v.conj();
                    }
                    bluestein_forward(inner, w, b_fft, data, work);
                    for v in data.iter_mut() {
                        *v = v.conj();
                    }
                } else {
                    bluestein_forward(inner, w, b_fft, data, work);
                }
            }
        }
        if inverse && normalize {
            let scale = 1.0 / self.n as f64;
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// In-place forward FFT.
    ///
    /// For power-of-two lengths this is allocation-free; other lengths
    /// allocate the kernel's work buffer internally (hot paths should use
    /// the `*_inplace` row kernels, which take caller scratch).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn fft_inplace(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        let mut work = vec![Complex64::ZERO; self.work_len()];
        self.fft_with(data, &mut work, false, false);
    }

    /// In-place inverse FFT normalized by `1/N` (`ifft(fft(x)) == x`).
    ///
    /// Allocation behavior matches [`FftPlan::fft_inplace`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn ifft_inplace(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        let mut work = vec![Complex64::ZERO; self.work_len()];
        self.fft_with(data, &mut work, true, true);
    }

    /// In-place DCT-II of `row` (unnormalized, matches [`crate::dct2`]).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.len()` or `scratch` is shorter than
    /// [`FftPlan::scratch_len`].
    pub fn dct2_inplace(&self, row: &mut [f64], scratch: &mut [Complex64]) {
        let n = self.n;
        assert_eq!(row.len(), n, "row length mismatch");
        if n == 1 {
            return; // DCT-II of a single sample is the sample itself.
        }
        let (signal, work) = scratch[..self.scratch_len()].split_at_mut(n);
        // Makhoul even-odd permutation into the complex buffer (valid for
        // any length: the odd tail is reversed into the upper half).
        for i in 0..n.div_ceil(2) {
            signal[i] = Complex64::new(row[2 * i], 0.0);
        }
        for i in 0..n / 2 {
            signal[n - 1 - i] = Complex64::new(row[2 * i + 1], 0.0);
        }
        self.fft_with(signal, work, false, false);
        for (k, out) in row.iter_mut().enumerate() {
            *out = (signal[k] * self.phase2[k]).re;
        }
    }

    /// In-place DCT-III of `row` (unnormalized, matches [`crate::dct3`]).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches as in [`FftPlan::dct2_inplace`].
    pub fn dct3_inplace(&self, row: &mut [f64], scratch: &mut [Complex64]) {
        let n = self.n;
        assert_eq!(row.len(), n, "row length mismatch");
        if n == 1 {
            row[0] *= 0.5;
            return;
        }
        let (signal, work) = scratch[..self.scratch_len()].split_at_mut(n);
        // V_k = ½·e^{iπk/2N}·(y_k − i·y_{N−k}), y_N := 0.
        signal[0] = Complex64::new(row[0], 0.0) * self.phase3[0];
        for k in 1..n {
            signal[k] = Complex64::new(row[k], -row[n - k]) * self.phase3[k];
        }
        // The unnormalized DCT-III needs the raw conjugate sum: the usual
        // 1/N of the inverse FFT and the ×N un-normalization cancel
        // exactly for every kernel.
        self.fft_with(signal, work, true, false);
        for i in 0..n / 2 {
            row[2 * i] = signal[i].re;
            row[2 * i + 1] = signal[n - 1 - i].re;
        }
        if n % 2 == 1 {
            // Odd lengths have one extra even output position, n−1.
            row[n - 1] = signal[n / 2].re;
        }
    }

    /// In-place IDXST of `row` (matches [`crate::idxst`]; `row[0]` is
    /// ignored as the zero sine frequency).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches as in [`FftPlan::dct2_inplace`].
    pub fn idxst_inplace(&self, row: &mut [f64], scratch: &mut [Complex64]) {
        let n = self.n;
        assert_eq!(row.len(), n, "row length mismatch");
        if n == 1 {
            row[0] = 0.0;
            return;
        }
        let (signal, work) = scratch[..self.scratch_len()].split_at_mut(n);
        // s = (−1)^n-signed DCT-III of c with c_0 = 0, c_j = b_{N−j};
        // substituting c into the DCT-III factorization gives
        // V_k = ½·e^{iπk/2N}·(b_{N−k} − i·b_k) with V_0 = 0.
        signal[0] = Complex64::ZERO;
        for k in 1..n {
            signal[k] = Complex64::new(row[n - k], -row[k]) * self.phase3[k];
        }
        self.fft_with(signal, work, true, false);
        for i in 0..n / 2 {
            row[2 * i] = signal[i].re;
            row[2 * i + 1] = -signal[n - 1 - i].re;
        }
        if n % 2 == 1 {
            // Position n−1 is even for odd n, so no sign flip.
            row[n - 1] = signal[n / 2].re;
        }
    }

    /// Dispatches one row kernel.
    pub fn apply_row(&self, op: RowOp, row: &mut [f64], scratch: &mut [Complex64]) {
        match op {
            RowOp::Dct2 => self.dct2_inplace(row, scratch),
            RowOp::Dct3 => self.dct3_inplace(row, scratch),
            RowOp::Idxst => self.idxst_inplace(row, scratch),
        }
    }
}

/// Returns the process-wide cached plan for length `n`, building it on
/// first use. Cached plans make the legacy free-function transforms
/// ([`crate::dct2`], [`crate::fft`], …) reuse twiddle/permutation tables
/// across calls.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn fft_plan(n: usize) -> Arc<FftPlan> {
    // Validate before taking the lock so a bad length can never poison
    // the cache for other threads.
    assert!(n > 0, "FFT length must be positive");
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))))
}

/// Caller-owned scratch for a [`SpectralPlan`]: a transpose buffer plus
/// one complex row buffer per worker slot. Building one costs two
/// allocations; reusing it across solves costs none.
#[derive(Debug, Clone)]
pub struct SpectralScratch {
    /// Transposed copy of the grid during column passes.
    transpose: Vec<f64>,
    /// `slots` contiguous complex row buffers of `slot_len` each.
    complex: Vec<Complex64>,
    slot_len: usize,
}

impl SpectralScratch {
    /// Scratch for an `nx × ny` grid, sized for every core the host can
    /// offer and never fewer than four slots (so modestly oversized
    /// pools — and the threaded code path on single-core CI — still get
    /// one slot per worker; wider pools are clamped to the slot count).
    /// Each slot holds [`transform_scratch_len`] elements for the larger
    /// dimension, so non-power-of-two grids get their kernel work area.
    #[must_use]
    pub fn new(nx: usize, ny: usize) -> Self {
        let slot_len = transform_scratch_len(nx)
            .max(transform_scratch_len(ny))
            .max(1);
        let slots = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .max(4);
        Self {
            transpose: vec![0.0; nx * ny],
            complex: vec![Complex64::ZERO; slots * slot_len],
            slot_len,
        }
    }
}

/// A 2-D separable-transform plan over an `nx × ny` grid, running row
/// passes in parallel across the current rayon pool width. Any positive
/// dimensions work; 2/3/5-smooth sizes run on the butterfly kernels (see
/// [`is_fast_path`]).
///
/// Transforms are applied as `rows(x-plan) → transpose → rows(y-plan) →
/// transpose back`, so both passes stream over contiguous memory. Each
/// row is computed independently with a per-worker scratch slot, making
/// results bit-identical for any thread count.
///
/// # Examples
///
/// ```
/// use qplacer_numeric::{dct2, Array2, RowOp, SpectralPlan, SpectralScratch};
/// let plan = SpectralPlan::new(8, 4);
/// let mut scratch = SpectralScratch::new(8, 4);
/// let mut a = Array2::zeros(8, 4);
/// a[(3, 1)] = 1.0;
/// let mut b = a.clone();
/// plan.apply_2d(&mut a, &mut scratch, RowOp::Dct2, RowOp::Dct2);
/// b.map_rows(dct2);
/// b.map_cols(dct2);
/// for (x, y) in a.data().iter().zip(b.data()) {
///     assert!((x - y).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SpectralPlan {
    nx: usize,
    ny: usize,
    plan_x: Arc<FftPlan>,
    plan_y: Arc<FftPlan>,
}

impl SpectralPlan {
    /// Builds the 2-D plan.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(nx: usize, ny: usize) -> Self {
        Self {
            nx,
            ny,
            plan_x: fft_plan(nx),
            plan_y: fft_plan(ny),
        }
    }

    /// Grid dimensions `(nx, ny)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Applies `row_op` along x and `col_op` along y, in place.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s shape differs from the plan or `scratch` was built
    /// for a smaller grid.
    pub fn apply_2d(
        &self,
        a: &mut Array2,
        scratch: &mut SpectralScratch,
        row_op: RowOp,
        col_op: RowOp,
    ) {
        assert_eq!(a.nx(), self.nx, "grid shape mismatch");
        assert_eq!(a.ny(), self.ny, "grid shape mismatch");
        assert!(
            scratch.transpose.len() >= self.nx * self.ny
                && scratch.slot_len >= self.plan_x.scratch_len().max(self.plan_y.scratch_len()),
            "scratch too small for {}x{} grid",
            self.nx,
            self.ny
        );
        let SpectralScratch {
            transpose,
            complex,
            slot_len,
        } = scratch;
        let data = a.data_mut();
        par_rows(&self.plan_x, data, complex, *slot_len, row_op);
        transpose_into(data, transpose, self.nx, self.ny);
        par_rows(
            &self.plan_y,
            &mut transpose[..self.nx * self.ny],
            complex,
            *slot_len,
            col_op,
        );
        transpose_into(&transpose[..self.nx * self.ny], data, self.ny, self.nx);
    }
}

/// `dst[x*ny + y] = src[y*nx + x]` — row-major transpose of an `nx × ny`
/// grid (row length `nx`) into its `ny × nx` counterpart.
fn transpose_into(src: &[f64], dst: &mut [f64], nx: usize, ny: usize) {
    for y in 0..ny {
        let row = &src[y * nx..(y + 1) * nx];
        for (x, &v) in row.iter().enumerate() {
            dst[x * ny + y] = v;
        }
    }
}

/// Applies `op` to every contiguous length-`n` row of `data`, fanning
/// bands of rows across scoped worker threads (at most one per scratch
/// slot). With an effective width of 1 the pass runs inline and performs
/// no allocation at all.
///
/// Scoped spawns (rather than pool tasks) are deliberate: the vendored
/// rayon has no persistent workers and cannot lend out disjoint `&mut`
/// row bands, and its depth-1 nesting contract reports a width of 1
/// inside pool workers — so harness jobs running under an installed pool
/// take the inline path here and never oversubscribe the machine.
fn par_rows(
    plan: &FftPlan,
    data: &mut [f64],
    complex: &mut [Complex64],
    slot_len: usize,
    op: RowOp,
) {
    let n = plan.len();
    let rows = data.len() / n;
    let slots = complex.len() / slot_len;
    let threads = rayon::current_num_threads().min(rows).min(slots).max(1);
    if threads <= 1 {
        let scratch = &mut complex[..slot_len];
        for row in data.chunks_exact_mut(n) {
            plan.apply_row(op, row, scratch);
        }
        return;
    }
    let band = rows.div_ceil(threads) * n;
    std::thread::scope(|scope| {
        for (band_data, slot) in data.chunks_mut(band).zip(complex.chunks_mut(slot_len)) {
            scope.spawn(move || {
                for row in band_data.chunks_exact_mut(n) {
                    plan.apply_row(op, row, slot);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dct2, dct3, idxst, naive_dct2, naive_dct3, naive_idxst};

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + (i as f64 * 0.11).cos() - 0.3)
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn planned_rows_match_naive_references() {
        // Power-of-two, mixed-radix (incl. odd), and Bluestein lengths.
        for &n in &[
            1usize, 2, 3, 4, 5, 7, 8, 12, 15, 27, 32, 100, 127, 128, 250, 256,
        ] {
            let plan = FftPlan::new(n);
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            let x = signal(n);
            // The naive sums accumulate O(n) rounding; scale accordingly.
            let tol = 1e-11 * (1.0 + n as f64);

            let mut row = x.clone();
            plan.dct2_inplace(&mut row, &mut scratch);
            assert_close(&row, &naive_dct2(&x), tol);

            let mut row = x.clone();
            plan.dct3_inplace(&mut row, &mut scratch);
            assert_close(&row, &naive_dct3(&x), tol);

            let mut row = x.clone();
            plan.idxst_inplace(&mut row, &mut scratch);
            assert_close(&row, &naive_idxst(&x), tol);
        }
    }

    #[test]
    fn planned_rows_match_free_functions_exactly() {
        // The free functions route through the same cached plans, so the
        // outputs must agree bit for bit — including non-power-of-two
        // lengths on the mixed-radix and Bluestein kernels.
        for &n in &[2usize, 16, 64, 12, 100, 127] {
            let plan = fft_plan(n);
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            let x = signal(n);
            for (op, reference) in [
                (RowOp::Dct2, dct2(&x)),
                (RowOp::Dct3, dct3(&x)),
                (RowOp::Idxst, idxst(&x)),
            ] {
                let mut row = x.clone();
                plan.apply_row(op, &mut row, &mut scratch);
                assert_eq!(row, reference, "{op:?} n={n}");
            }
        }
    }

    #[test]
    fn complex_fft_round_trips_on_every_kernel() {
        for &n in &[2usize, 8, 12, 45, 100, 127, 251] {
            let plan = FftPlan::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
                .collect();
            let mut y = x.clone();
            plan.fft_inplace(&mut y);
            plan.ifft_inplace(&mut y);
            for (a, b) in y.iter().zip(&x) {
                assert!(
                    (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                    "n={n}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn spectral_plan_matches_map_rows_cols() {
        // One smooth non-power-of-two dimension exercises the mixed-radix
        // kernel through the full 2-D pass.
        for (nx, ny) in [(16usize, 8usize), (12, 8), (16, 10)] {
            let plan = SpectralPlan::new(nx, ny);
            let mut scratch = SpectralScratch::new(nx, ny);
            let mut a = Array2::zeros(nx, ny);
            for iy in 0..ny {
                for ix in 0..nx {
                    a[(ix, iy)] = ((ix * 5 + iy * 3) % 11) as f64 - 4.0;
                }
            }
            for (row_op, col_op, rf, cf) in [
                (
                    RowOp::Dct2,
                    RowOp::Dct2,
                    dct2 as fn(&[f64]) -> Vec<f64>,
                    dct2 as fn(&[f64]) -> Vec<f64>,
                ),
                (RowOp::Dct3, RowOp::Dct3, dct3, dct3),
                (RowOp::Idxst, RowOp::Dct3, idxst, dct3),
                (RowOp::Dct3, RowOp::Idxst, dct3, idxst),
            ] {
                let mut fast = a.clone();
                plan.apply_2d(&mut fast, &mut scratch, row_op, col_op);
                let mut slow = a.clone();
                slow.map_rows(rf);
                slow.map_cols(cf);
                assert_close(fast.data(), slow.data(), 1e-9);
            }
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        for (nx, ny) in [(32usize, 32usize), (24, 20)] {
            let plan = SpectralPlan::new(nx, ny);
            let mut a = Array2::zeros(nx, ny);
            for iy in 0..ny {
                for ix in 0..nx {
                    a[(ix, iy)] = ((ix * 7 + iy) % 13) as f64 * 0.25;
                }
            }
            let run = |threads: usize| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut scratch = SpectralScratch::new(nx, ny);
                let mut grid = a.clone();
                pool.install(|| plan.apply_2d(&mut grid, &mut scratch, RowOp::Dct2, RowOp::Dct2));
                grid
            };
            assert_eq!(run(1), run(4));
        }
    }

    #[test]
    fn fast_path_predicate() {
        assert!(is_fast_path(1));
        assert!(is_fast_path(256));
        assert!(is_fast_path(12));
        assert!(is_fast_path(100));
        assert!(is_fast_path(96));
        assert!(!is_fast_path(0));
        assert!(!is_fast_path(7));
        assert!(!is_fast_path(127));
        assert!(!is_fast_path(14)); // 2·7
    }

    #[test]
    fn next_smooth_rounds_up() {
        assert_eq!(next_smooth(0), 1);
        assert_eq!(next_smooth(1), 1);
        assert_eq!(next_smooth(7), 8);
        assert_eq!(next_smooth(96), 96);
        assert_eq!(next_smooth(97), 100);
        assert_eq!(next_smooth(127), 128);
        assert_eq!(next_smooth(161), 162); // 2·3⁴
    }

    #[test]
    fn scratch_len_matches_kernel() {
        assert_eq!(transform_scratch_len(0), 0);
        assert_eq!(transform_scratch_len(64), 64);
        assert_eq!(transform_scratch_len(12), 24);
        // Bluestein: n + next_pow2(2n−1).
        assert_eq!(transform_scratch_len(127), 127 + 256);
        for &n in &[1usize, 8, 12, 100, 127] {
            assert_eq!(FftPlan::new(n).scratch_len(), transform_scratch_len(n));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_plan_panics() {
        let _ = FftPlan::new(0);
    }
}
