//! Property tests for the planned transform pipeline: the FFT-backed
//! plans and the parallel 2-D spectral passes must agree with the naive
//! O(N²) reference sums for arbitrary lengths and data, and must be
//! invariant under the rayon pool width.

use proptest::prelude::*;
use qplacer_numeric::{
    dct2, dct3, fft_plan, idxst, is_fast_path, naive_dct2, naive_dct3, naive_idxst, Array2,
    Complex64, RowOp, SpectralPlan, SpectralScratch,
};

/// Deterministic pseudo-random signal derived from a seed.
fn signal(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
        })
        .collect()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planned_transforms_match_naive_for_random_pow2(seed in 0u64..1000, log_n in 0u32..9) {
        let n = 1usize << log_n;
        let x = signal(seed, n);
        let plan = fft_plan(n);
        let mut scratch = vec![Complex64::ZERO; n];
        // The naive sums accumulate O(n) rounding on O(n)-magnitude
        // terms; scale the tolerance with the signal mass.
        let tol = 1e-11 * (1.0 + x.iter().map(|v| v.abs()).sum::<f64>()) * n as f64;

        for (op, reference) in [
            (RowOp::Dct2, naive_dct2(&x)),
            (RowOp::Dct3, naive_dct3(&x)),
            (RowOp::Idxst, naive_idxst(&x)),
        ] {
            let mut row = x.clone();
            plan.apply_row(op, &mut row, &mut scratch);
            assert_close(&row, &reference, tol);
        }
    }

    #[test]
    fn free_functions_match_naive_for_any_length(seed in 0u64..1000, n in 1usize..80) {
        // Every length is planned now (radix-2, mixed-radix, or
        // Bluestein) and must agree with the naive reference sums.
        let x = signal(seed, n);
        let tol = 1e-11 * (1.0 + x.iter().map(|v| v.abs()).sum::<f64>()) * n as f64;
        assert_close(&dct2(&x), &naive_dct2(&x), tol);
        assert_close(&dct3(&x), &naive_dct3(&x), tol);
        assert_close(&idxst(&x), &naive_idxst(&x), tol);
        // Round trip through the planned pair: dct3(dct2(x)) == (n/2)·x.
        let back = dct3(&dct2(&x));
        let restored: Vec<f64> = back.iter().map(|v| v * 2.0 / n as f64).collect();
        assert_close(&restored, &x, 1e-8);
    }

    #[test]
    fn planned_transforms_match_naive_for_non_pow2(seed in 0u64..1000, pick in 0usize..8) {
        // Mixed-radix (96, 100, 250, 81, 45) and Bluestein (127, 97, 77)
        // kernels against the naive O(N²) sums, to ≤1e-9 *relative*
        // error (relative to the signal mass, the natural scale of the
        // unnormalized transforms).
        let n = [96usize, 100, 127, 250, 81, 45, 97, 77][pick];
        prop_assert_eq!(is_fast_path(n), ![127usize, 97, 77].contains(&n));
        let x = signal(seed, n);
        let scale = 1.0 + x.iter().map(|v| v.abs()).sum::<f64>();
        let plan = fft_plan(n);
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];

        for (op, reference) in [
            (RowOp::Dct2, naive_dct2(&x)),
            (RowOp::Dct3, naive_dct3(&x)),
            (RowOp::Idxst, naive_idxst(&x)),
        ] {
            let mut row = x.clone();
            plan.apply_row(op, &mut row, &mut scratch);
            for (i, (got, want)) in row.iter().zip(&reference).enumerate() {
                let rel = (got - want).abs() / scale;
                prop_assert!(rel <= 1e-9, "{op:?} n={n} index {i}: {got} vs {want} (rel {rel:e})");
            }
        }

        // DCT-2/DCT-3 round trip restores the signal: dct3(dct2(x)) == (n/2)·x.
        let mut row = x.clone();
        plan.dct2_inplace(&mut row, &mut scratch);
        plan.dct3_inplace(&mut row, &mut scratch);
        for (i, (got, want)) in row.iter().zip(&x).enumerate() {
            let rel = (got * 2.0 / n as f64 - want).abs() / scale;
            prop_assert!(rel <= 1e-9, "round trip n={n} index {i} (rel {rel:e})");
        }
    }

    #[test]
    fn spectral_plan_is_thread_count_invariant(seed in 0u64..500, log_nx in 2u32..6, log_ny in 2u32..6) {
        let (nx, ny) = (1usize << log_nx, 1usize << log_ny);
        let data = signal(seed, nx * ny);
        let plan = SpectralPlan::new(nx, ny);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool builds");
            let mut grid = Array2::from_data(nx, ny, data.clone());
            let mut scratch = SpectralScratch::new(nx, ny);
            pool.install(|| {
                plan.apply_2d(&mut grid, &mut scratch, RowOp::Dct2, RowOp::Idxst);
            });
            grid
        };
        let single = run(1);
        prop_assert_eq!(single.data(), run(3).data());
        prop_assert_eq!(single.data(), run(8).data());
    }

    #[test]
    fn spectral_plan_matches_sequential_map_rows_cols(seed in 0u64..500, log_n in 2u32..6) {
        let n = 1usize << log_n;
        let data = signal(seed, n * n);
        let plan = SpectralPlan::new(n, n);
        let mut scratch = SpectralScratch::new(n, n);
        let mut fast = Array2::from_data(n, n, data.clone());
        plan.apply_2d(&mut fast, &mut scratch, RowOp::Dct3, RowOp::Dct3);
        let mut slow = Array2::from_data(n, n, data);
        slow.map_rows(dct3);
        slow.map_cols(dct3);
        // Same plans under the hood: rows agree exactly, columns to
        // rounding (the transpose changes the summation layout, not the
        // kernels), so exact equality is expected.
        prop_assert_eq!(fast.data(), slow.data());
    }
}
