//! Property-based tests for the numerical kernels.

use proptest::prelude::*;
use qplacer_numeric::{
    dct2, dct3, fft, idxst, ifft, naive_dct2, naive_dct3, naive_idxst, Array2, Complex64,
    NesterovSolver, PoissonSolver,
};

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #[test]
    fn fft_roundtrip(re in prop::collection::vec(-100.0f64..100.0, 1..=64)) {
        let n = re.len().next_power_of_two();
        let mut x: Vec<Complex64> = re.iter().map(|&r| Complex64::new(r, -r * 0.5)).collect();
        x.resize(n, Complex64::ZERO);
        let orig = x.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!(close(a.re, b.re, 1e-9));
            prop_assert!(close(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn fft_linearity(
        a in prop::collection::vec(-10.0f64..10.0, 16),
        b in prop::collection::vec(-10.0f64..10.0, 16),
        s in -5.0f64..5.0,
    ) {
        let mut fa: Vec<Complex64> = a.iter().map(|&v| v.into()).collect();
        let mut fb: Vec<Complex64> = b.iter().map(|&v| v.into()).collect();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| (x + s * y).into()).collect();
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fab);
        for i in 0..16 {
            let expect = fa[i] + fb[i].scale(s);
            prop_assert!(close(fab[i].re, expect.re, 1e-9));
            prop_assert!(close(fab[i].im, expect.im, 1e-9));
        }
    }

    #[test]
    fn dct2_matches_naive(x in prop::collection::vec(-50.0f64..50.0, 1..=64)) {
        let fast = dct2(&x);
        let slow = naive_dct2(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn dct3_matches_naive(x in prop::collection::vec(-50.0f64..50.0, 1..=64)) {
        let fast = dct3(&x);
        let slow = naive_dct3(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn idxst_matches_naive(x in prop::collection::vec(-50.0f64..50.0, 2..=64)) {
        let fast = idxst(&x);
        let slow = naive_idxst(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn dct_roundtrip_recovers_signal(x in prop::collection::vec(-50.0f64..50.0, 1..=32)) {
        let n = x.len();
        let back = dct3(&dct2(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!(close(*a, b * 2.0 / n as f64, 1e-8));
        }
    }

    #[test]
    fn poisson_solver_is_linear(
        a in prop::collection::vec(((0usize..16), (0usize..16), 0.1f64..5.0), 1..6),
        b in prop::collection::vec(((0usize..16), (0usize..16), 0.1f64..5.0), 1..6),
        alpha in 0.5f64..3.0,
    ) {
        let solver = PoissonSolver::new(16, 16);
        let mut rho_a = Array2::zeros(16, 16);
        for &(ix, iy, q) in &a {
            rho_a[(ix, iy)] += q;
        }
        let mut rho_b = Array2::zeros(16, 16);
        for &(ix, iy, q) in &b {
            rho_b[(ix, iy)] += q;
        }
        let mut combined = rho_a.clone();
        combined.zip_apply(&rho_b, |x, y| x + alpha * y);
        let fa = solver.solve(&rho_a);
        let fb = solver.solve(&rho_b);
        let fc = solver.solve(&combined);
        for i in 0..fc.ex.data().len() {
            let expect = fa.ex.data()[i] + alpha * fb.ex.data()[i];
            prop_assert!((fc.ex.data()[i] - expect).abs() < 1e-8);
            let expect_y = fa.ey.data()[i] + alpha * fb.ey.data()[i];
            prop_assert!((fc.ey.data()[i] - expect_y).abs() < 1e-8);
        }
    }

    #[test]
    fn nesterov_minimizes_shifted_quadratics(
        center in prop::collection::vec(-10.0f64..10.0, 1..6),
        start in -20.0f64..20.0,
    ) {
        let x0 = vec![start; center.len()];
        let mut s = NesterovSolver::new(x0, 0.05);
        for _ in 0..500 {
            let g: Vec<f64> = s
                .reference()
                .iter()
                .zip(&center)
                .map(|(&x, &c)| 2.0 * (x - c))
                .collect();
            s.step(&g);
        }
        for (x, c) in s.position().iter().zip(&center) {
            prop_assert!((x - c).abs() < 1e-4, "{} vs {}", x, c);
        }
    }
}
