//! Property-based tests for circuit generation, routing, optimization,
//! and scheduling.

use proptest::prelude::*;
use qplacer_circuits::{
    generators, optimize_peephole, Circuit, Gate, RoutedCircuit, Router, SabreRouter, Schedule,
};
use qplacer_topology::{random_connected_subset, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8).prop_flat_map(|n| {
        prop::collection::vec(
            prop_oneof![
                (0..n).prop_map(Gate::H),
                (0..n).prop_map(Gate::X),
                (0..n).prop_map(Gate::Sx),
                ((0..n), -3.0f64..3.0).prop_map(|(q, a)| Gate::Rz(q, a)),
                ((0..n), (0..n))
                    .prop_filter_map("distinct", |(a, b)| { (a != b).then_some(Gate::Cx(a, b)) }),
            ],
            0..40,
        )
        .prop_map(move |gates| {
            let mut c = Circuit::new(n);
            c.extend(gates);
            c
        })
    })
}

fn routed_is_valid(device: &Topology, routed: &RoutedCircuit, original: &Circuit) -> bool {
    let on_edges = routed.gates.iter().all(|g| match *g {
        Gate::Cx(a, b) | Gate::Cz(a, b) => device.are_coupled(a, b),
        _ => true,
    });
    let count_ok = routed.gates.len() == original.len() + 3 * routed.swap_count;
    let usage_total: usize = routed.edge_usage.iter().map(|&(_, n)| n).sum();
    let two_q = routed.gates.iter().filter(|g| g.is_two_qubit()).count();
    on_edges && count_ok && usage_total == two_q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn greedy_router_output_is_always_valid(c in arb_circuit(), seed in 0u64..100) {
        let device = Topology::falcon27();
        let mut rng = StdRng::seed_from_u64(seed);
        let subset = random_connected_subset(&device, c.num_qubits().max(2), &mut rng).unwrap();
        let routed = Router::new(&device).route(&c, &subset).unwrap();
        prop_assert!(routed_is_valid(&device, &routed, &c));
    }

    #[test]
    fn sabre_router_output_is_always_valid(c in arb_circuit(), seed in 0u64..100) {
        let device = Topology::falcon27();
        let mut rng = StdRng::seed_from_u64(seed);
        let subset = random_connected_subset(&device, c.num_qubits().max(2), &mut rng).unwrap();
        let routed = SabreRouter::new(&device).route(&c, &subset).unwrap();
        prop_assert!(routed_is_valid(&device, &routed, &c));
    }

    #[test]
    fn peephole_never_grows_and_preserves_qubits(c in arb_circuit()) {
        let mut optimized = c.clone();
        let removed = optimize_peephole(&mut optimized);
        prop_assert_eq!(optimized.len() + removed, c.len());
        // Optimization must not invent gates on untouched qubits.
        let touched = |circ: &Circuit| -> std::collections::HashSet<usize> {
            circ.gates().iter().flat_map(Gate::qubits).collect()
        };
        prop_assert!(touched(&optimized).is_subset(&touched(&c)));
        // Idempotent.
        let mut again = optimized.clone();
        prop_assert_eq!(optimize_peephole(&mut again), 0);
    }

    #[test]
    fn schedule_invariants(c in arb_circuit(), seed in 0u64..50) {
        let device = Topology::eagle127();
        let mut rng = StdRng::seed_from_u64(seed);
        let subset = random_connected_subset(&device, c.num_qubits().max(2), &mut rng).unwrap();
        let routed = Router::new(&device).route(&c, &subset).unwrap();
        let s = Schedule::asap(&routed);
        // Ops never overlap on a qubit.
        let mut timeline: std::collections::HashMap<usize, f64> = Default::default();
        for op in s.ops() {
            for q in op.gate.qubits() {
                let ready = timeline.get(&q).copied().unwrap_or(0.0);
                prop_assert!(op.start.ns() >= ready - 1e-9, "op starts before qubit free");
                timeline.insert(q, op.start.ns() + op.duration.ns());
            }
        }
        // Makespan = max end.
        let max_end = timeline.values().fold(0.0_f64, |a, &b| a.max(b));
        prop_assert!((s.total_duration().ns() - max_end).abs() < 1e-9);
        // busy + idle = makespan per active qubit.
        for &q in &routed.active_qubits {
            let sum = s.busy_time(q).ns() + s.idle_time(q).ns();
            prop_assert!((sum - s.total_duration().ns()).abs() < 1e-9);
        }
    }

    #[test]
    fn generators_scale_sanely(n in 4usize..12) {
        let bv = generators::bv(n);
        prop_assert_eq!(bv.num_qubits(), n);
        let qaoa = generators::qaoa(n, 1, 3);
        prop_assert_eq!(qaoa.two_qubit_count(), 2 * n); // ring edges × 2 CX
        let ising = generators::ising(n, 2);
        prop_assert_eq!(ising.two_qubit_count(), 2 * 2 * (n - 1));
    }
}
