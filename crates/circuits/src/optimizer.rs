//! Peephole circuit optimization (the Qiskit-L3 substitute).
//!
//! Two passes run to a fixed point:
//!
//! 1. **Self-inverse cancellation** — adjacent identical H/X/CX/CZ pairs
//!    on the same qubit(s) with nothing touching those qubits in between
//!    annihilate (this removes most of the router's swap padding around
//!    cancelled entanglers).
//! 2. **Rotation merging** — consecutive `Rz` on the same qubit merge;
//!    rotations that reduce to the identity (mod 2π) are dropped.

use crate::{Circuit, Gate};

/// Optimizes `circuit` in place; returns the number of gates removed.
///
/// # Examples
///
/// ```
/// use qplacer_circuits::{optimize_peephole, Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// let removed = optimize_peephole(&mut c);
/// assert_eq!(removed, 2);
/// assert_eq!(c.len(), 1);
/// ```
pub fn optimize_peephole(circuit: &mut Circuit) -> usize {
    let before = circuit.len();
    loop {
        let cancelled = cancel_self_inverse(circuit);
        let merged = merge_rotations(circuit);
        if cancelled + merged == 0 {
            break;
        }
    }
    before - circuit.len()
}

/// One sweep of self-inverse cancellation; returns removed-gate count.
fn cancel_self_inverse(circuit: &mut Circuit) -> usize {
    let gates = circuit.gates();
    let n = gates.len();
    let mut keep = vec![true; n];
    // last_open[q] = index of a pending self-inverse gate whose window on
    // qubit q is still clean.
    let mut pending: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for i in 0..n {
        let g = gates[i];
        let qs = g.qubits();
        if g.is_self_inverse() {
            // A pending identical gate on exactly the same qubits cancels.
            let candidate = pending[qs[0]];
            let matches = candidate
                .map(|j| gates[j] == g && qs.iter().all(|&q| pending[q] == candidate))
                .unwrap_or(false);
            if matches {
                let j = candidate.expect("checked above");
                keep[i] = false;
                keep[j] = false;
                for &q in &qs {
                    pending[q] = None;
                }
                continue;
            }
            for &q in &qs {
                pending[q] = Some(i);
            }
        } else {
            for &q in &qs {
                pending[q] = None;
            }
        }
    }
    let removed = keep.iter().filter(|&&k| !k).count();
    if removed > 0 {
        let new_gates: Vec<Gate> = gates
            .iter()
            .zip(&keep)
            .filter_map(|(g, &k)| k.then_some(*g))
            .collect();
        circuit.set_gates(new_gates);
    }
    removed
}

/// One sweep of Rz merging; returns removed-gate count.
fn merge_rotations(circuit: &mut Circuit) -> usize {
    let gates = circuit.gates().to_vec();
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    // Index into `out` of a trailing Rz per qubit, still mergeable.
    let mut open_rz: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for g in gates {
        match g {
            Gate::Rz(q, a) => {
                if let Some(j) = open_rz[q] {
                    if let Gate::Rz(_, prev) = out[j] {
                        out[j] = Gate::Rz(q, prev + a);
                        continue;
                    }
                }
                out.push(g);
                open_rz[q] = Some(out.len() - 1);
            }
            other => {
                for q in other.qubits() {
                    open_rz[q] = None;
                }
                out.push(other);
            }
        }
    }
    // Drop identity rotations.
    out.retain(|g| match g {
        Gate::Rz(_, a) => {
            let r = a.rem_euclid(std::f64::consts::TAU);
            r.min(std::f64::consts::TAU - r) > 1e-12
        }
        _ => true,
    });
    let removed = circuit.len() - out.len();
    if removed > 0 {
        circuit.set_gates(out);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_adjacent_cx_pairs() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 1));
        assert_eq!(optimize_peephole(&mut c), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn does_not_cancel_across_interference() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::H(1)); // touches qubit 1 -> blocks cancellation
        c.push(Gate::Cx(0, 1));
        assert_eq!(optimize_peephole(&mut c), 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn does_not_cancel_reversed_cx() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 0));
        assert_eq!(optimize_peephole(&mut c), 0);
    }

    #[test]
    fn merges_rz_chains() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.4));
        c.push(Gate::Rz(0, 0.6));
        optimize_peephole(&mut c);
        assert_eq!(c.len(), 1);
        match c.gates()[0] {
            Gate::Rz(0, a) => assert!((a - 1.0).abs() < 1e-12),
            ref g => panic!("unexpected {g}"),
        }
    }

    #[test]
    fn drops_identity_rotation() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, std::f64::consts::TAU));
        optimize_peephole(&mut c);
        assert!(c.is_empty());
        // And merged-to-identity chains vanish entirely.
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 1.0));
        c.push(Gate::Rz(0, -1.0));
        optimize_peephole(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn fixed_point_cascades() {
        // H X X H -> H H -> empty (needs two sweeps).
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::X(0));
        c.push(Gate::X(0));
        c.push(Gate::H(0));
        assert_eq!(optimize_peephole(&mut c), 4);
        assert!(c.is_empty());
    }

    #[test]
    fn preserves_non_trivial_circuits() {
        let mut c = crate::generators::qaoa(4, 1, 5);
        let before_2q = c.two_qubit_count();
        optimize_peephole(&mut c);
        // QAOA's CX-RZ-CX blocks must survive (RZ in the middle blocks
        // cancellation).
        assert_eq!(c.two_qubit_count(), before_2q);
    }
}
