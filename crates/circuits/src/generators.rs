//! Benchmark circuit generators (Table I).
//!
//! Each generator produces the canonical structure of its algorithm at the
//! paper's qubit counts. Angles are deterministic (seeded) so that the
//! whole evaluation is reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Circuit, Gate};

/// Bernstein–Vazirani over `n` qubits: `n−1` data qubits plus one ancilla
/// (Table I: BV-4/9/16). The hidden string alternates bits, giving the
/// densest CX pattern of the standard construction.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let c = qplacer_circuits::generators::bv(4);
/// assert_eq!(c.num_qubits(), 4);
/// // CX from every set secret bit to the ancilla.
/// assert!(c.two_qubit_count() >= 1);
/// ```
#[must_use]
pub fn bv(n: usize) -> Circuit {
    assert!(n >= 2, "BV needs a data qubit and an ancilla");
    let data = n - 1;
    let ancilla = n - 1;
    let mut c = Circuit::new(n);
    // Ancilla in |−⟩, data in superposition.
    c.push(Gate::X(ancilla));
    for q in 0..n {
        c.push(Gate::H(q));
    }
    // Oracle: CX from each secret-1 data qubit to the ancilla.
    for q in (0..data).step_by(2) {
        c.push(Gate::Cx(q, ancilla));
    }
    // Uncompute superposition on data.
    for q in 0..data {
        c.push(Gate::H(q));
    }
    c
}

/// QAOA on a ring of `n` vertices with `layers` (γ, β) rounds
/// (Table I: QAOA-4/9). Ring MaxCut is the standard hardware-efficient
/// QAOA benchmark; each layer contributes one ZZ interaction per ring
/// edge (2 CX + RZ) and an RX mixer per qubit.
///
/// # Panics
///
/// Panics if `n < 3` or `layers == 0`.
#[must_use]
pub fn qaoa(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 3, "QAOA ring needs at least 3 vertices");
    assert!(layers > 0, "QAOA needs at least one layer");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for _ in 0..layers {
        let gamma: f64 = rng.random_range(0.1..std::f64::consts::PI);
        let beta: f64 = rng.random_range(0.1..std::f64::consts::PI);
        for q in 0..n {
            let r = (q + 1) % n;
            // exp(-iγ Z⊗Z) = CX · RZ(2γ) · CX.
            c.push(Gate::Cx(q, r));
            c.push(Gate::Rz(r, 2.0 * gamma));
            c.push(Gate::Cx(q, r));
        }
        for q in 0..n {
            // RX(2β) = H · RZ(2β) · H in the restricted gate set.
            c.push(Gate::H(q));
            c.push(Gate::Rz(q, 2.0 * beta));
            c.push(Gate::H(q));
        }
    }
    c
}

/// First-order Trotterized linear Ising spin chain over `n` spins for
/// `steps` Trotter steps (Table I: Ising-4, citing the digitized adiabatic
/// simulation of Barends et al.).
///
/// # Panics
///
/// Panics if `n < 2` or `steps == 0`.
#[must_use]
pub fn ising(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2, "a spin chain needs at least 2 spins");
    assert!(steps > 0, "need at least one Trotter step");
    let dt = 0.35;
    let j = 1.0; // coupling
    let h = 0.8; // transverse field
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for _ in 0..steps {
        // ZZ couplings along the chain.
        for q in 0..n - 1 {
            c.push(Gate::Cx(q, q + 1));
            c.push(Gate::Rz(q + 1, 2.0 * j * dt));
            c.push(Gate::Cx(q, q + 1));
        }
        // Transverse field.
        for q in 0..n {
            c.push(Gate::H(q));
            c.push(Gate::Rz(q, 2.0 * h * dt));
            c.push(Gate::H(q));
        }
    }
    c
}

/// GHZ state preparation over `n` qubits: one Hadamard followed by a CX
/// chain. The canonical entanglement-distribution workload — its CX
/// pattern is a single path, so it sizes to any connected device.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let c = qplacer_circuits::generators::ghz(16);
/// assert_eq!(c.num_qubits(), 16);
/// assert_eq!(c.two_qubit_count(), 15);
/// ```
#[must_use]
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.push(Gate::H(0));
    for q in 0..n - 1 {
        c.push(Gate::Cx(q, q + 1));
    }
    c
}

/// A quantum-volume-style model circuit over `n` qubits: `n` layers,
/// each a seeded random permutation of the qubits paired off, every
/// pair hit by a pseudo-SU(4) block (three CX alternating direction,
/// interleaved with seeded single-qubit rotations in the restricted
/// gate set). Angles and permutations derive only from `seed`, so the
/// whole family is reproducible.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let c = qplacer_circuits::generators::qv(4, 7);
/// assert_eq!(c.num_qubits(), 4);
/// // n/2 pairs × 3 CX × n layers.
/// assert_eq!(c.two_qubit_count(), 2 * 3 * 4);
/// ```
#[must_use]
pub fn qv(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "quantum volume needs at least 2 qubits");
    // A seeded Sx·Rz "random rotation" in the restricted gate set.
    fn rot(c: &mut Circuit, rng: &mut StdRng, q: usize) {
        let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        c.push(Gate::Sx(q));
        c.push(Gate::Rz(q, theta));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let mut order: Vec<usize> = (0..n).collect();
    for _layer in 0..n {
        // Fisher–Yates with the seeded rng: the layer's qubit pairing.
        for i in (1..n).rev() {
            let j = rng.random_range(0..i + 1);
            order.swap(i, j);
        }
        for pair in order.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            rot(&mut c, &mut rng, a);
            rot(&mut c, &mut rng, b);
            c.push(Gate::Cx(a, b));
            rot(&mut c, &mut rng, b);
            c.push(Gate::Cx(b, a));
            rot(&mut c, &mut rng, a);
            c.push(Gate::Cx(a, b));
        }
    }
    c
}

/// QGAN generator ansatz: `layers` of a hardware-efficient layered
/// entangler (RY-equivalent rotations + CX ladder), the circuit family of
/// quantum GAN generators (Table I: QGAN-4/9).
///
/// # Panics
///
/// Panics if `n < 2` or `layers == 0`.
#[must_use]
pub fn qgan(n: usize, layers: usize) -> Circuit {
    assert!(n >= 2, "QGAN ansatz needs at least 2 qubits");
    assert!(layers > 0, "QGAN needs at least one layer");
    let mut rng = StdRng::seed_from_u64(QGAN_SEED);
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            // RY(θ) ≡ Sx-Rz-Sx sandwich in the restricted set.
            let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
            c.push(Gate::Sx(q));
            c.push(Gate::Rz(q, theta));
            c.push(Gate::Sx(q));
        }
        // Linear entangling ladder; alternate direction per layer to
        // spread connectivity demand.
        if layer % 2 == 0 {
            for q in 0..n - 1 {
                c.push(Gate::Cx(q, q + 1));
            }
        } else {
            for q in (1..n).rev() {
                c.push(Gate::Cx(q, q - 1));
            }
        }
    }
    c
}

/// Fixed seed for the QGAN ansatz angles (0x47414E = "GAN").
const QGAN_SEED: u64 = 0x47_41_4e;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_sizes_match_table_i() {
        for n in [4usize, 9, 16] {
            let c = bv(n);
            assert_eq!(c.num_qubits(), n);
            // Oracle CX count = ceil((n-1)/2) with the alternating secret.
            assert_eq!(
                c.two_qubit_count(),
                n.div_ceil(2) - if n % 2 == 0 { 0 } else { 1 }
            );
        }
    }

    #[test]
    fn qaoa_structure() {
        let c = qaoa(4, 2, 11);
        assert_eq!(c.num_qubits(), 4);
        // 2 layers × 4 ring edges × 2 CX each.
        assert_eq!(c.two_qubit_count(), 16);
        assert!(c.depth() > 4);
    }

    #[test]
    fn qaoa_is_deterministic_per_seed() {
        assert_eq!(qaoa(9, 2, 13), qaoa(9, 2, 13));
        assert_ne!(qaoa(9, 2, 13), qaoa(9, 2, 14));
    }

    #[test]
    fn ising_chain_counts() {
        let c = ising(4, 3);
        // 3 steps × 3 chain edges × 2 CX.
        assert_eq!(c.two_qubit_count(), 18);
    }

    #[test]
    fn qgan_layer_scaling() {
        let one = qgan(4, 1).two_qubit_count();
        let two = qgan(4, 2).two_qubit_count();
        assert_eq!(two, 2 * one);
    }

    #[test]
    #[should_panic(expected = "ancilla")]
    fn bv_too_small_panics() {
        let _ = bv(1);
    }

    #[test]
    fn ghz_is_one_h_plus_a_cx_chain() {
        let c = ghz(9);
        assert_eq!(c.num_qubits(), 9);
        assert_eq!(c.len(), 9); // H + 8 CX
        assert_eq!(c.two_qubit_count(), 8);
    }

    #[test]
    fn qv_structure_and_determinism() {
        let c = qv(6, 3);
        assert_eq!(c.num_qubits(), 6);
        // 3 pairs × 3 CX × 6 layers.
        assert_eq!(c.two_qubit_count(), 54);
        assert_eq!(qv(6, 3), qv(6, 3));
        assert_ne!(qv(6, 3), qv(6, 4));
        // Odd sizes leave one qubit unpaired per layer.
        assert_eq!(qv(5, 1).two_qubit_count(), 2 * 3 * 5);
    }
}
