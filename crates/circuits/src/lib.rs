//! NISQ benchmark circuits, routing, and scheduling (paper §V-A, Table I).
//!
//! The fidelity metric (Eq. 15) evaluates *programs*, not bare layouts:
//! each benchmark is generated as a logical circuit, mapped onto a
//! connected subset of physical qubits, routed to respect the device
//! coupling graph, lightly optimized (the paper uses Qiskit's L3 preset;
//! we substitute a peephole pass — see `DESIGN.md`), and scheduled so the
//! error model knows how long each qubit is busy and idle.
//!
//! * [`Gate`] / [`Circuit`] — the gate set and circuit container.
//! * [`generators`] — BV, QAOA, Ising, QGAN (Table I benchmarks) plus
//!   the zoo families GHZ and quantum volume, all resolvable by name
//!   at any size via [`benchmark_by_name`].
//! * [`Router`] — greedy shortest-path swap insertion (SABRE-flavored
//!   lookahead) producing a physical-qubit circuit.
//! * [`optimize_peephole`] — gate cancellation/merging.
//! * [`Schedule`] — ASAP schedule with per-qubit busy/idle accounting.
//!
//! # Examples
//!
//! ```
//! use qplacer_circuits::{generators, Router, Schedule};
//! use qplacer_topology::Topology;
//!
//! let device = Topology::falcon27();
//! let circuit = generators::bv(4);
//! let subset: Vec<usize> = vec![0, 1, 2, 4];
//! let routed = Router::new(&device).route(&circuit, &subset).unwrap();
//! let schedule = Schedule::asap(&routed);
//! assert!(schedule.total_duration().ns() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod gate;
pub mod generators;
mod optimizer;
mod router;
mod sabre;
mod schedule;

pub use circuit::Circuit;
pub use gate::Gate;
pub use optimizer::optimize_peephole;
pub use router::{RoutedCircuit, Router, RoutingError};
pub use sabre::SabreRouter;
pub use schedule::Schedule;

/// A named benchmark: its Table-I label and generated circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (e.g. `"bv-9"`).
    pub name: String,
    /// The logical circuit.
    pub circuit: Circuit,
}

/// The paper's benchmark suite (Table I): BV-4/9/16, QAOA-4/9, Ising-4,
/// QGAN-4/9, in Fig. 11's column order.
///
/// # Examples
///
/// ```
/// let suite = qplacer_circuits::paper_suite();
/// assert_eq!(suite.len(), 8);
/// assert_eq!(suite[0].name, "bv-4");
/// ```
#[must_use]
pub fn paper_suite() -> Vec<Benchmark> {
    let mk = |name: &str, circuit: Circuit| Benchmark {
        name: name.to_string(),
        circuit,
    };
    vec![
        mk("bv-4", generators::bv(4)),
        mk("bv-9", generators::bv(9)),
        mk("bv-16", generators::bv(16)),
        mk("qaoa-4", generators::qaoa(4, 2, 11)),
        mk("qaoa-9", generators::qaoa(9, 2, 13)),
        mk("ising-4", generators::ising(4, 3)),
        mk("qgan-4", generators::qgan(4, 2)),
        mk("qgan-9", generators::qgan(9, 2)),
    ]
}

/// Largest qubit count [`benchmark_by_name`] will generate — a guard
/// against typo'd workload sizes allocating absurd circuits.
pub const MAX_BENCHMARK_QUBITS: usize = 4096;

/// Resolves any `<family>-<qubits>` workload name: the Table-I names
/// (at their exact paper parameters) plus the parametric zoo families
/// sized to any device — `bv-N`, `qaoa-N` (2 ring layers), `ising-N`
/// (3 Trotter steps), `qgan-N` (2 layers), `ghz-N`, and `qv-N`
/// (quantum volume, depth = N). Returns `None` for unknown families,
/// malformed sizes, sizes below the family minimum, or sizes above
/// [`MAX_BENCHMARK_QUBITS`].
///
/// # Examples
///
/// ```
/// let b = qplacer_circuits::benchmark_by_name("ghz-12").unwrap();
/// assert_eq!(b.circuit.num_qubits(), 12);
/// // Paper names resolve to their exact Table-I circuits.
/// let qaoa = qplacer_circuits::benchmark_by_name("qaoa-4").unwrap();
/// assert_eq!(qaoa.circuit, qplacer_circuits::paper_suite()[3].circuit);
/// assert!(qplacer_circuits::benchmark_by_name("teleport-9").is_none());
/// ```
#[must_use]
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    // Paper names win, at their exact paper parameters.
    if let Some(b) = paper_suite().into_iter().find(|b| b.name == name) {
        return Some(b);
    }
    let (family, size) = name.rsplit_once('-')?;
    let n: usize = size.parse().ok()?;
    if n > MAX_BENCHMARK_QUBITS {
        return None;
    }
    let circuit = match family {
        "bv" if n >= 2 => generators::bv(n),
        // Seed derived from the size so every ring instance is distinct
        // but reproducible (the paper's qaoa-4/9 resolve above).
        "qaoa" if n >= 3 => generators::qaoa(n, 2, 0x0A0A ^ n as u64),
        "ising" if n >= 2 => generators::ising(n, 3),
        "qgan" if n >= 2 => generators::qgan(n, 2),
        "ghz" if n >= 2 => generators::ghz(n),
        "qv" if n >= 2 => generators::qv(n, 0x5176 ^ n as u64),
        _ => return None,
    };
    Some(Benchmark {
        name: name.to_string(),
        circuit,
    })
}
