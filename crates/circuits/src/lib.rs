//! NISQ benchmark circuits, routing, and scheduling (paper §V-A, Table I).
//!
//! The fidelity metric (Eq. 15) evaluates *programs*, not bare layouts:
//! each benchmark is generated as a logical circuit, mapped onto a
//! connected subset of physical qubits, routed to respect the device
//! coupling graph, lightly optimized (the paper uses Qiskit's L3 preset;
//! we substitute a peephole pass — see `DESIGN.md`), and scheduled so the
//! error model knows how long each qubit is busy and idle.
//!
//! * [`Gate`] / [`Circuit`] — the gate set and circuit container.
//! * [`generators`] — BV, QAOA, Ising, QGAN (Table I benchmarks).
//! * [`Router`] — greedy shortest-path swap insertion (SABRE-flavored
//!   lookahead) producing a physical-qubit circuit.
//! * [`optimize_peephole`] — gate cancellation/merging.
//! * [`Schedule`] — ASAP schedule with per-qubit busy/idle accounting.
//!
//! # Examples
//!
//! ```
//! use qplacer_circuits::{generators, Router, Schedule};
//! use qplacer_topology::Topology;
//!
//! let device = Topology::falcon27();
//! let circuit = generators::bv(4);
//! let subset: Vec<usize> = vec![0, 1, 2, 4];
//! let routed = Router::new(&device).route(&circuit, &subset).unwrap();
//! let schedule = Schedule::asap(&routed);
//! assert!(schedule.total_duration().ns() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod gate;
pub mod generators;
mod optimizer;
mod router;
mod sabre;
mod schedule;

pub use circuit::Circuit;
pub use gate::Gate;
pub use optimizer::optimize_peephole;
pub use router::{RoutedCircuit, Router, RoutingError};
pub use sabre::SabreRouter;
pub use schedule::Schedule;

/// A named benchmark: its Table-I label and generated circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (e.g. `"bv-9"`).
    pub name: String,
    /// The logical circuit.
    pub circuit: Circuit,
}

/// The paper's benchmark suite (Table I): BV-4/9/16, QAOA-4/9, Ising-4,
/// QGAN-4/9, in Fig. 11's column order.
///
/// # Examples
///
/// ```
/// let suite = qplacer_circuits::paper_suite();
/// assert_eq!(suite.len(), 8);
/// assert_eq!(suite[0].name, "bv-4");
/// ```
#[must_use]
pub fn paper_suite() -> Vec<Benchmark> {
    let mk = |name: &str, circuit: Circuit| Benchmark {
        name: name.to_string(),
        circuit,
    };
    vec![
        mk("bv-4", generators::bv(4)),
        mk("bv-9", generators::bv(9)),
        mk("bv-16", generators::bv(16)),
        mk("qaoa-4", generators::qaoa(4, 2, 11)),
        mk("qaoa-9", generators::qaoa(9, 2, 13)),
        mk("ising-4", generators::ising(4, 3)),
        mk("qgan-4", generators::qgan(4, 2)),
        mk("qgan-9", generators::qgan(9, 2)),
    ]
}
