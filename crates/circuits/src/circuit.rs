//! Circuit container.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Gate;

/// An ordered list of gates over `num_qubits` logical qubits.
///
/// # Examples
///
/// ```
/// use qplacer_circuits::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// assert_eq!(c.two_qubit_count(), 1);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    #[must_use]
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "a circuit needs at least one qubit");
        Self {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of logical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate sequence.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the register.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.num_qubits,
                "gate {gate} references qubit {q} outside 0..{}",
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Appends all gates from an iterator.
    pub fn extend<I: IntoIterator<Item = Gate>>(&mut self, gates: I) {
        for g in gates {
            self.push(g);
        }
    }

    /// Total gate count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the circuit has no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates.
    #[must_use]
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Circuit depth under ASAP layering (each gate occupies one layer on
    /// each of its qubits).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let start = qs.iter().map(|&q| level[q]).max().unwrap_or(0);
            for q in qs {
                level[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// Replaces the gate list (used by the optimizer).
    pub(crate) fn set_gates(&mut self, gates: Vec<Gate>) {
        self.gates = gates;
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]",
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(4);
        // Layer 1: H on all; layer 2: CX(0,1) & CX(2,3); layer 3: CX(1,2).
        for q in 0..4 {
            c.push(Gate::H(q));
        }
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(2, 3));
        c.push(Gate::Cx(1, 2));
        assert_eq!(c.depth(), 3);
        assert_eq!(c.two_qubit_count(), 3);
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(1);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_gate_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 2));
    }
}
