//! ASAP scheduling and busy/idle accounting for the fidelity model.

use std::collections::HashMap;

use qplacer_physics::{constants, Duration};

use crate::{Gate, RoutedCircuit};

/// One scheduled operation: a physical gate with its start time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// The gate (physical qubit indices).
    pub gate: Gate,
    /// Start time from circuit begin.
    pub start: Duration,
    /// Gate duration.
    pub duration: Duration,
}

/// An ASAP schedule of a routed circuit with per-qubit busy time and the
/// total makespan — the exposure windows the crosstalk/decoherence error
/// model integrates over.
///
/// # Examples
///
/// ```
/// use qplacer_circuits::{generators, Router, Schedule};
/// use qplacer_topology::Topology;
///
/// let device = Topology::grid(3, 3);
/// let routed = Router::new(&device)
///     .route(&generators::bv(4), &[0, 1, 2, 4])
///     .unwrap();
/// let s = Schedule::asap(&routed);
/// assert!(s.total_duration() >= s.busy_time(0));
/// ```
#[derive(Debug, Clone)]
pub struct Schedule {
    ops: Vec<ScheduledOp>,
    total: Duration,
    busy: HashMap<usize, Duration>,
    two_qubit_busy: HashMap<usize, Duration>,
}

impl Schedule {
    /// Builds the as-soon-as-possible schedule of `routed` using the
    /// architecture's gate durations (35 ns single-qubit, 300 ns RIP CZ).
    #[must_use]
    pub fn asap(routed: &RoutedCircuit) -> Self {
        let mut available: HashMap<usize, Duration> = HashMap::new();
        let mut busy: HashMap<usize, Duration> = HashMap::new();
        let mut two_qubit_busy: HashMap<usize, Duration> = HashMap::new();
        let mut ops = Vec::with_capacity(routed.gates.len());
        let mut total = Duration::ZERO;

        for &gate in &routed.gates {
            let qs = gate.qubits();
            let duration = if gate.is_two_qubit() {
                constants::TWO_QUBIT_GATE_TIME
            } else {
                constants::SINGLE_QUBIT_GATE_TIME
            };
            let start = qs
                .iter()
                .map(|q| available.get(q).copied().unwrap_or(Duration::ZERO))
                .fold(Duration::ZERO, |a, b| if b > a { b } else { a });
            let end = start + duration;
            for &q in &qs {
                available.insert(q, end);
                *busy.entry(q).or_insert(Duration::ZERO) =
                    busy.get(&q).copied().unwrap_or(Duration::ZERO) + duration;
                if gate.is_two_qubit() {
                    *two_qubit_busy.entry(q).or_insert(Duration::ZERO) =
                        two_qubit_busy.get(&q).copied().unwrap_or(Duration::ZERO) + duration;
                }
            }
            if end > total {
                total = end;
            }
            ops.push(ScheduledOp {
                gate,
                start,
                duration,
            });
        }

        Self {
            ops,
            total,
            busy,
            two_qubit_busy,
        }
    }

    /// The scheduled operations in order.
    #[must_use]
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Total circuit duration (makespan).
    #[must_use]
    pub fn total_duration(&self) -> Duration {
        self.total
    }

    /// Time physical qubit `q` spends executing gates.
    #[must_use]
    pub fn busy_time(&self, q: usize) -> Duration {
        self.busy.get(&q).copied().unwrap_or(Duration::ZERO)
    }

    /// Time physical qubit `q` spends inside two-qubit gates.
    #[must_use]
    pub fn two_qubit_time(&self, q: usize) -> Duration {
        self.two_qubit_busy
            .get(&q)
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Idle exposure of qubit `q`: makespan minus busy time. This is the
    /// window during which spatial crosstalk acts on an otherwise inactive
    /// qubit (Eq. 16's idle-qubit error).
    #[must_use]
    pub fn idle_time(&self, q: usize) -> Duration {
        let b = self.busy_time(q);
        if self.total > b {
            self.total - b
        } else {
            Duration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Router};
    use qplacer_topology::Topology;

    fn routed_bv4() -> RoutedCircuit {
        let device = Topology::grid(3, 3);
        Router::new(&device)
            .route(&generators::bv(4), &[0, 1, 2, 4])
            .unwrap()
    }

    #[test]
    fn makespan_bounds() {
        let r = routed_bv4();
        let s = Schedule::asap(&r);
        // Serial lower bound: longest single-qubit chain; upper bound: sum
        // of all gate durations.
        let total_work: f64 = r
            .gates
            .iter()
            .map(|g| {
                if g.is_two_qubit() {
                    constants::TWO_QUBIT_GATE_TIME.ns()
                } else {
                    constants::SINGLE_QUBIT_GATE_TIME.ns()
                }
            })
            .sum();
        assert!(s.total_duration().ns() <= total_work);
        assert!(s.total_duration().ns() > 0.0);
    }

    #[test]
    fn busy_plus_idle_equals_makespan() {
        let r = routed_bv4();
        let s = Schedule::asap(&r);
        for &q in &r.active_qubits {
            let sum = s.busy_time(q) + s.idle_time(q);
            assert!((sum.ns() - s.total_duration().ns()).abs() < 1e-9);
        }
    }

    #[test]
    fn untouched_qubits_are_fully_idle() {
        let r = routed_bv4();
        let s = Schedule::asap(&r);
        assert_eq!(s.busy_time(99).ns(), 0.0);
        assert_eq!(s.idle_time(99), s.total_duration());
    }

    #[test]
    fn parallel_gates_overlap() {
        let device = Topology::grid(2, 2);
        let mut c = crate::Circuit::new(4);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(2, 3));
        let routed = Router::new(&device).route(&c, &[0, 1, 2, 3]).unwrap();
        let s = Schedule::asap(&routed);
        // Disjoint CXs run in parallel (plus any routing overhead on this
        // trivially-adjacent mapping there is none).
        assert_eq!(s.total_duration(), constants::TWO_QUBIT_GATE_TIME);
    }

    #[test]
    fn dependent_gates_serialize() {
        // Both gates share logical qubit 0, which the BFS mapping pins to
        // the path center — adjacent to both partners, so no swaps and the
        // two gates must strictly serialize.
        let device = Topology::grid(3, 1);
        let mut c = crate::Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 2));
        let routed = Router::new(&device).route(&c, &[0, 1, 2]).unwrap();
        assert_eq!(routed.swap_count, 0);
        let s = Schedule::asap(&routed);
        assert_eq!(
            s.total_duration().ns(),
            2.0 * constants::TWO_QUBIT_GATE_TIME.ns()
        );
    }
}
