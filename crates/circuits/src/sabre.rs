//! SABRE-style swap routing (Li, Ding, Xie — the algorithm behind the
//! Qiskit transpiler's default router the paper's flow relies on).
//!
//! Unlike the greedy router in [`crate::Router`], which walks each gate's
//! qubits together along one shortest path, SABRE maintains the circuit's
//! dependency DAG and picks swaps by scoring how much they shorten the
//! *front layer* (gates ready to execute) plus a discounted lookahead
//! window, with a per-qubit decay that discourages ping-ponging the same
//! token. It routinely produces fewer swaps on deeper circuits.

use std::collections::{HashMap, VecDeque};

use qplacer_topology::Topology;

use crate::router::{RoutedCircuit, RoutingError};
use crate::{Circuit, Gate};

/// Lookahead window size (gates beyond the front layer).
const EXTENDED_WINDOW: usize = 20;
/// Weight of the lookahead term relative to the front layer.
const EXTENDED_WEIGHT: f64 = 0.5;
/// Per-use decay added to a qubit's swap cost, decayed each round.
const DECAY_STEP: f64 = 0.001;
/// Rounds between decay resets.
const DECAY_RESET: usize = 5;

/// SABRE router over a device topology.
///
/// # Examples
///
/// ```
/// use qplacer_circuits::{generators, SabreRouter};
/// use qplacer_topology::Topology;
///
/// let device = Topology::falcon27();
/// let subset: Vec<usize> = (0..9).collect();
/// let routed = SabreRouter::new(&device)
///     .route(&generators::qaoa(9, 2, 13), &subset)
///     .unwrap();
/// assert!(!routed.gates.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SabreRouter<'a> {
    device: &'a Topology,
}

impl<'a> SabreRouter<'a> {
    /// Creates a SABRE router for `device`.
    #[must_use]
    pub fn new(device: &'a Topology) -> Self {
        Self { device }
    }

    /// Routes `circuit` onto the physical qubits `subset`.
    ///
    /// # Errors
    ///
    /// Same failure conditions as [`crate::Router::route`].
    pub fn route(
        &self,
        circuit: &Circuit,
        subset: &[usize],
    ) -> Result<RoutedCircuit, RoutingError> {
        let n_logical = circuit.num_qubits();
        if subset.len() < n_logical {
            return Err(RoutingError::SubsetTooSmall {
                needed: n_logical,
                available: subset.len(),
            });
        }
        for &q in subset {
            if q >= self.device.num_qubits() {
                return Err(RoutingError::UnknownQubit(q));
            }
        }
        let index_of: HashMap<usize, usize> =
            subset.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        let k = subset.len();
        let adj: Vec<Vec<usize>> = subset
            .iter()
            .map(|&q| {
                self.device
                    .neighbors(q)
                    .iter()
                    .filter_map(|n| index_of.get(n).copied())
                    .collect()
            })
            .collect();
        let dist = all_pairs_bfs(&adj);
        if dist.iter().flatten().any(|&d| d == usize::MAX) {
            return Err(RoutingError::SubsetDisconnected);
        }

        // Initial mapping: BFS from the highest-degree slot (same heuristic
        // as the greedy router so comparisons isolate the routing policy).
        let root = (0..k).max_by_key(|&i| adj[i].len()).unwrap_or(0);
        let mut log_to_slot: Vec<usize> =
            bfs_order(&adj, root).into_iter().take(n_logical).collect();

        // Dependency bookkeeping: for each gate, its unsatisfied
        // predecessor count; per-qubit "last gate seen" builds the DAG.
        let gates = circuit.gates();
        let mut preds = vec![0usize; gates.len()];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
        let mut last_on: Vec<Option<usize>> = vec![None; n_logical];
        for (gi, g) in gates.iter().enumerate() {
            for q in g.qubits() {
                if let Some(prev) = last_on[q] {
                    succs[prev].push(gi);
                    preds[gi] += 1;
                }
                last_on[q] = Some(gi);
            }
        }
        let mut front: VecDeque<usize> = (0..gates.len()).filter(|&g| preds[g] == 0).collect();

        let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
        let mut swap_count = 0usize;
        let mut decay = vec![1.0f64; k];
        let mut rounds = 0usize;

        let mut executed = vec![false; gates.len()];
        while !front.is_empty() {
            // Execute everything executable in the front layer.
            let mut progressed = false;
            let mut next_front = VecDeque::new();
            while let Some(gi) = front.pop_front() {
                let g = gates[gi];
                let executable = match g {
                    Gate::Cx(a, b) | Gate::Cz(a, b) => dist[log_to_slot[a]][log_to_slot[b]] == 1,
                    _ => true,
                };
                if executable {
                    out.push(g.remap(|q| subset[log_to_slot[q]]));
                    executed[gi] = true;
                    progressed = true;
                    for &s in &succs[gi] {
                        preds[s] -= 1;
                        if preds[s] == 0 {
                            next_front.push_back(s);
                        }
                    }
                } else {
                    next_front.push_back(gi);
                }
            }
            front = next_front;
            if progressed || front.is_empty() {
                continue;
            }

            // Blocked: choose the best swap among edges touching front-layer
            // qubits.
            let front_pairs: Vec<(usize, usize)> = front
                .iter()
                .filter_map(|&gi| match gates[gi] {
                    Gate::Cx(a, b) | Gate::Cz(a, b) => Some((log_to_slot[a], log_to_slot[b])),
                    _ => None,
                })
                .collect();
            // Extended window: the next few blocked 2q gates in program
            // order.
            let extended: Vec<(usize, usize)> = gates
                .iter()
                .enumerate()
                .filter(|&(gi, g)| !executed[gi] && g.is_two_qubit())
                .take(EXTENDED_WINDOW)
                .filter_map(|(_, g)| match *g {
                    Gate::Cx(a, b) | Gate::Cz(a, b) => Some((log_to_slot[a], log_to_slot[b])),
                    _ => None,
                })
                .collect();

            let mut slot_of_token: Vec<Option<usize>> = vec![None; k];
            for (logical, &slot) in log_to_slot.iter().enumerate() {
                slot_of_token[slot] = Some(logical);
            }

            let mut best: Option<((usize, usize), f64)> = None;
            let mut candidate_slots: Vec<usize> =
                front_pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
            candidate_slots.sort_unstable();
            candidate_slots.dedup();
            for (sa, nbrs) in candidate_slots.into_iter().map(|s| (s, &adj[s])) {
                for &sb in nbrs {
                    let score = swap_score((sa, sb), &front_pairs, &extended, &dist, &decay);
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some(((sa, sb), score));
                    }
                }
            }
            let ((sa, sb), _) = best.expect("blocked front implies swappable neighbors");
            // Apply the swap to the mapping and emit it.
            emit_swap(&mut out, subset[sa], subset[sb]);
            swap_count += 1;
            decay[sa] += DECAY_STEP;
            decay[sb] += DECAY_STEP;
            if let Some(t) = slot_of_token[sa] {
                log_to_slot[t] = sb;
            }
            if let Some(t) = slot_of_token[sb] {
                log_to_slot[t] = sa;
            }
            rounds += 1;
            if rounds.is_multiple_of(DECAY_RESET) {
                decay.fill(1.0);
            }
        }

        // Accounting (same shape as the greedy router).
        let mut active: Vec<usize> = out.iter().flat_map(Gate::qubits).collect();
        active.sort_unstable();
        active.dedup();
        let mut usage: HashMap<usize, usize> = HashMap::new();
        for g in &out {
            if let Gate::Cx(a, b) | Gate::Cz(a, b) = *g {
                let e = self
                    .device
                    .edge_index(a, b)
                    .expect("routed 2q gates use device edges");
                *usage.entry(e).or_insert(0) += 1;
            }
        }
        let mut edge_usage: Vec<(usize, usize)> = usage.into_iter().collect();
        edge_usage.sort_unstable();

        Ok(RoutedCircuit {
            gates: out,
            active_qubits: active,
            edge_usage,
            swap_count,
        })
    }
}

fn swap_score(
    swap: (usize, usize),
    front: &[(usize, usize)],
    extended: &[(usize, usize)],
    dist: &[Vec<usize>],
    decay: &[f64],
) -> f64 {
    let remap = |s: usize| {
        if s == swap.0 {
            swap.1
        } else if s == swap.1 {
            swap.0
        } else {
            s
        }
    };
    let sum = |pairs: &[(usize, usize)]| -> f64 {
        pairs
            .iter()
            .map(|&(a, b)| dist[remap(a)][remap(b)] as f64)
            .sum()
    };
    let front_term = sum(front) / front.len().max(1) as f64;
    let ext_term = if extended.is_empty() {
        0.0
    } else {
        EXTENDED_WEIGHT * sum(extended) / extended.len() as f64
    };
    decay[swap.0].max(decay[swap.1]) * (front_term + ext_term)
}

fn emit_swap(gates: &mut Vec<Gate>, a: usize, b: usize) {
    gates.push(Gate::Cx(a, b));
    gates.push(Gate::Cx(b, a));
    gates.push(Gate::Cx(a, b));
}

fn all_pairs_bfs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    (0..n)
        .map(|s| {
            let mut d = vec![usize::MAX; n];
            d[s] = 0;
            let mut queue = VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &u in &adj[v] {
                    if d[u] == usize::MAX {
                        d[u] = d[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
            d
        })
        .collect()
}

fn bfs_order(adj: &[Vec<usize>], root: usize) -> Vec<usize> {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::from([root]);
    seen[root] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in &adj[v] {
            if !seen[u] {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    for (v, &was_seen) in seen.iter().enumerate().take(n) {
        if !was_seen {
            order.push(v);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Router};

    fn check_validity(device: &Topology, routed: &RoutedCircuit, original: &Circuit) {
        // Every 2q gate lands on a device edge.
        for g in &routed.gates {
            if let Gate::Cx(a, b) | Gate::Cz(a, b) = *g {
                assert!(device.are_coupled(a, b), "2q gate on non-edge ({a},{b})");
            }
        }
        // Gate count = original + 3 per swap.
        assert_eq!(routed.gates.len(), original.len() + 3 * routed.swap_count);
    }

    #[test]
    fn routes_all_paper_benchmarks_on_falcon() {
        let device = Topology::falcon27();
        let router = SabreRouter::new(&device);
        let subset: Vec<usize> = (0..16).collect();
        for bench in crate::paper_suite() {
            let routed = router
                .route(&bench.circuit, &subset)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            check_validity(&device, &routed, &bench.circuit);
        }
    }

    #[test]
    fn matches_greedy_on_trivial_cases() {
        let device = Topology::grid(2, 2);
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let sabre = SabreRouter::new(&device).route(&c, &[0, 1]).unwrap();
        assert_eq!(sabre.swap_count, 0);
        assert_eq!(sabre.gates.len(), 2);
    }

    #[test]
    fn no_worse_than_greedy_on_deep_circuits() {
        // SABRE's lookahead should not lose badly to the greedy router on
        // the deeper benchmarks; allow slack since both are heuristics.
        let device = Topology::falcon27();
        let subset: Vec<usize> = (0..16).collect();
        let mut sabre_total = 0usize;
        let mut greedy_total = 0usize;
        for circuit in [
            generators::qaoa(9, 2, 13),
            generators::ising(4, 3),
            generators::qgan(9, 2),
            generators::bv(16),
        ] {
            sabre_total += SabreRouter::new(&device)
                .route(&circuit, &subset)
                .unwrap()
                .swap_count;
            greedy_total += Router::new(&device)
                .route(&circuit, &subset)
                .unwrap()
                .swap_count;
        }
        assert!(
            sabre_total <= greedy_total + greedy_total / 2 + 2,
            "sabre {sabre_total} vs greedy {greedy_total}"
        );
    }

    #[test]
    fn rejects_bad_subsets_like_greedy() {
        let device = Topology::grid(3, 3);
        let c = generators::bv(4);
        let r = SabreRouter::new(&device);
        assert!(matches!(
            r.route(&c, &[0, 1]),
            Err(RoutingError::SubsetTooSmall { .. })
        ));
        assert!(matches!(
            r.route(&c, &[0, 2, 6, 8]),
            Err(RoutingError::SubsetDisconnected)
        ));
    }

    #[test]
    fn deterministic() {
        let device = Topology::falcon27();
        let subset: Vec<usize> = (0..9).collect();
        let c = generators::qaoa(9, 2, 13);
        let a = SabreRouter::new(&device).route(&c, &subset).unwrap();
        let b = SabreRouter::new(&device).route(&c, &subset).unwrap();
        assert_eq!(a, b);
    }
}
