//! Routing logical circuits onto device subsets.
//!
//! The paper maps each benchmark onto 50 random physical-qubit subsets
//! using Qiskit at optimization level 3. This router is the substituted
//! artifact: a greedy shortest-path swap inserter with SABRE-style
//! distance lookahead for the initial mapping. It produces the object the
//! fidelity model needs — a physical-qubit gate list with realistic
//! depth, swap overhead, and edge usage.

use std::collections::HashMap;
use std::fmt;

use qplacer_topology::Topology;

use crate::{Circuit, Gate};

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The subset has fewer physical qubits than the circuit has logical.
    SubsetTooSmall {
        /// Logical qubits required.
        needed: usize,
        /// Physical qubits available.
        available: usize,
    },
    /// The subset is not connected inside the device, so some gate can
    /// never be routed.
    SubsetDisconnected,
    /// A subset entry is not a device qubit.
    UnknownQubit(usize),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::SubsetTooSmall { needed, available } => {
                write!(f, "subset has {available} qubits, circuit needs {needed}")
            }
            RoutingError::SubsetDisconnected => write!(f, "subset is not connected"),
            RoutingError::UnknownQubit(q) => write!(f, "subset qubit {q} not on device"),
        }
    }
}

impl std::error::Error for RoutingError {}

/// A circuit whose gates address *physical* device qubits, plus the
/// accounting the fidelity model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// Physical-qubit gate list (includes inserted swap decompositions).
    pub gates: Vec<Gate>,
    /// The physical qubits actually touched.
    pub active_qubits: Vec<usize>,
    /// Device edges used by two-qubit gates, as `(edge_index, use_count)`.
    pub edge_usage: Vec<(usize, usize)>,
    /// Number of swaps inserted by routing.
    pub swap_count: usize,
}

impl RoutedCircuit {
    /// Total gate count after routing.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when no gates were produced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }
}

/// Greedy swap router over a device topology.
#[derive(Debug, Clone)]
pub struct Router<'a> {
    device: &'a Topology,
}

impl<'a> Router<'a> {
    /// Creates a router for `device`.
    #[must_use]
    pub fn new(device: &'a Topology) -> Self {
        Self { device }
    }

    /// Routes `circuit` onto the physical qubits `subset`.
    ///
    /// The initial mapping assigns logical qubits to the subset in BFS
    /// order from the subset's most-connected qubit, which keeps heavily
    /// interacting logical neighbors physically close. Every two-qubit
    /// gate between non-adjacent qubits triggers swaps along a shortest
    /// path inside the subset; each swap is emitted as three `Cx`.
    ///
    /// # Errors
    ///
    /// Returns a [`RoutingError`] if the subset is too small, contains
    /// unknown qubits, or is disconnected.
    pub fn route(
        &self,
        circuit: &Circuit,
        subset: &[usize],
    ) -> Result<RoutedCircuit, RoutingError> {
        let n_logical = circuit.num_qubits();
        if subset.len() < n_logical {
            return Err(RoutingError::SubsetTooSmall {
                needed: n_logical,
                available: subset.len(),
            });
        }
        for &q in subset {
            if q >= self.device.num_qubits() {
                return Err(RoutingError::UnknownQubit(q));
            }
        }

        // Subset-internal adjacency and all-pairs distances (BFS per node;
        // subsets are small).
        let index_of: HashMap<usize, usize> =
            subset.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        let k = subset.len();
        let adj: Vec<Vec<usize>> = subset
            .iter()
            .map(|&q| {
                self.device
                    .neighbors(q)
                    .iter()
                    .filter_map(|n| index_of.get(n).copied())
                    .collect()
            })
            .collect();
        let dist = all_pairs_bfs(&adj);
        if dist.iter().flatten().any(|&d| d == usize::MAX) {
            return Err(RoutingError::SubsetDisconnected);
        }

        // Initial mapping: logical q -> subset slot, BFS order from the
        // highest-degree slot so chains embed contiguously.
        let root = (0..k).max_by_key(|&i| adj[i].len()).unwrap_or(0);
        let bfs_order = bfs_order(&adj, root);
        let mut log_to_slot: Vec<usize> = bfs_order.into_iter().take(n_logical).collect();

        let mut gates = Vec::with_capacity(circuit.len());
        let mut swap_count = 0usize;
        for g in circuit.gates() {
            match *g {
                Gate::Cx(a, b) | Gate::Cz(a, b) => {
                    // Bring a and b adjacent by swapping a's token along a
                    // shortest path toward b.
                    while dist[log_to_slot[a]][log_to_slot[b]] > 1 {
                        let sa = log_to_slot[a];
                        let sb = log_to_slot[b];
                        // Neighbor of sa on a shortest path to sb.
                        let next = *adj[sa]
                            .iter()
                            .min_by_key(|&&n| dist[n][sb])
                            .expect("connected subset has neighbors");
                        // Swap tokens on sa and next.
                        emit_swap(&mut gates, subset[sa], subset[next]);
                        swap_count += 1;
                        if let Some(other) = log_to_slot.iter().position(|&s| s == next) {
                            log_to_slot[other] = sa;
                        }
                        log_to_slot[a] = next;
                    }
                    let pa = subset[log_to_slot[a]];
                    let pb = subset[log_to_slot[b]];
                    gates.push(match g {
                        Gate::Cx(..) => Gate::Cx(pa, pb),
                        _ => Gate::Cz(pa, pb),
                    });
                }
                ref g1 => {
                    let q = g1.qubits()[0];
                    gates.push(g1.remap(|_| subset[log_to_slot[q]]));
                }
            }
        }

        // Accounting.
        let mut active: Vec<usize> = gates.iter().flat_map(Gate::qubits).collect();
        active.sort_unstable();
        active.dedup();
        let mut usage: HashMap<usize, usize> = HashMap::new();
        for g in &gates {
            if let Gate::Cx(a, b) | Gate::Cz(a, b) = *g {
                let e = self
                    .device
                    .edge_index(a, b)
                    .expect("routed 2q gates use device edges");
                *usage.entry(e).or_insert(0) += 1;
            }
        }
        let mut edge_usage: Vec<(usize, usize)> = usage.into_iter().collect();
        edge_usage.sort_unstable();

        Ok(RoutedCircuit {
            gates,
            active_qubits: active,
            edge_usage,
            swap_count,
        })
    }
}

fn emit_swap(gates: &mut Vec<Gate>, a: usize, b: usize) {
    gates.push(Gate::Cx(a, b));
    gates.push(Gate::Cx(b, a));
    gates.push(Gate::Cx(a, b));
}

fn all_pairs_bfs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    (0..n)
        .map(|s| {
            let mut d = vec![usize::MAX; n];
            d[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &u in &adj[v] {
                    if d[u] == usize::MAX {
                        d[u] = d[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
            d
        })
        .collect()
}

fn bfs_order(adj: &[Vec<usize>], root: usize) -> Vec<usize> {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::from([root]);
    seen[root] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in &adj[v] {
            if !seen[u] {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    // Disconnected leftovers appended (caller rejects disconnected subsets
    // for routing, but the order function stays total).
    for (v, &was_seen) in seen.iter().enumerate().take(n) {
        if !was_seen {
            order.push(v);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn routes_on_adjacent_subset_without_swaps() {
        let device = Topology::grid(3, 3);
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let routed = Router::new(&device).route(&c, &[0, 1]).unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.len(), 2);
        assert_eq!(routed.active_qubits, vec![0, 1]);
    }

    #[test]
    fn inserts_swaps_for_distant_gates() {
        // Path 0-1-2 cannot embed a logical triangle: at least one of the
        // three pairwise gates forces a swap, whatever the initial mapping.
        let device = Topology::from_edges("path", 3, [(0, 1), (1, 2)]).unwrap();
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 2));
        let routed = Router::new(&device).route(&c, &[0, 1, 2]).unwrap();
        assert!(routed.swap_count >= 1);
        // All emitted 2q gates are on real edges.
        for g in &routed.gates {
            if let Gate::Cx(a, b) = *g {
                assert!(device.are_coupled(a, b), "cx on non-edge ({a},{b})");
            }
        }
    }

    #[test]
    fn rejects_bad_subsets() {
        let device = Topology::grid(3, 3);
        let c = generators::bv(4);
        let r = Router::new(&device);
        assert!(matches!(
            r.route(&c, &[0, 1]),
            Err(RoutingError::SubsetTooSmall { .. })
        ));
        assert!(matches!(
            r.route(&c, &[0, 2, 6, 8]),
            Err(RoutingError::SubsetDisconnected)
        ));
        assert!(matches!(
            r.route(&c, &[0, 1, 2, 99]),
            Err(RoutingError::UnknownQubit(99))
        ));
    }

    #[test]
    fn paper_benchmarks_route_on_falcon() {
        let device = Topology::falcon27();
        let router = Router::new(&device);
        // A known-connected 16-qubit patch of Falcon.
        let subset: Vec<usize> = vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 16];
        for bench in crate::paper_suite() {
            let routed = router
                .route(&bench.circuit, &subset[..bench.circuit.num_qubits().max(2)])
                .or_else(|_| router.route(&bench.circuit, &subset))
                .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name));
            assert!(!routed.is_empty());
            for g in &routed.gates {
                if g.is_two_qubit() {
                    let qs = g.qubits();
                    assert!(device.are_coupled(qs[0], qs[1]));
                }
            }
        }
    }

    #[test]
    fn edge_usage_totals_match_two_qubit_count() {
        let device = Topology::grid(3, 3);
        let c = generators::qaoa(4, 2, 11);
        let routed = Router::new(&device).route(&c, &[0, 1, 4, 3]).unwrap();
        let total: usize = routed.edge_usage.iter().map(|&(_, n)| n).sum();
        let two_q = routed.gates.iter().filter(|g| g.is_two_qubit()).count();
        assert_eq!(total, two_q);
    }
}
