//! The gate set.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A quantum gate over abstract qubit indices (logical before routing,
/// physical after).
///
/// The set matches what the fidelity model distinguishes: single-qubit
/// rotations/Cliffords (35 ns class) and two-qubit entanglers (300 ns RIP
/// class). `Swap` exists only transiently inside the router, which
/// decomposes it into three `Cx`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// √X (the IBM basis `sx`).
    Sx(usize),
    /// Z-rotation by an angle in radians.
    Rz(usize, f64),
    /// Controlled-X.
    Cx(usize, usize),
    /// Controlled-Z (the native RIP two-qubit gate).
    Cz(usize, usize),
}

impl Gate {
    /// The qubits the gate touches (one or two entries).
    #[must_use]
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Sx(q) | Gate::Rz(q, _) => vec![q],
            Gate::Cx(a, b) | Gate::Cz(a, b) => vec![a, b],
        }
    }

    /// `true` for two-qubit gates.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cx(..) | Gate::Cz(..))
    }

    /// The same gate with qubit indices remapped through `f`.
    #[must_use]
    pub fn remap<F: Fn(usize) -> usize>(&self, f: F) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Sx(q) => Gate::Sx(f(q)),
            Gate::Rz(q, a) => Gate::Rz(f(q), a),
            Gate::Cx(a, b) => Gate::Cx(f(a), f(b)),
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
        }
    }

    /// Whether `self` is its own inverse and cancels against an identical
    /// neighbor (H, X, CX, CZ).
    #[must_use]
    pub fn is_self_inverse(&self) -> bool {
        matches!(self, Gate::H(_) | Gate::X(_) | Gate::Cx(..) | Gate::Cz(..))
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::Sx(q) => write!(f, "sx q{q}"),
            Gate::Rz(q, a) => write!(f, "rz({a:.3}) q{q}"),
            Gate::Cx(a, b) => write!(f, "cx q{a}, q{b}"),
            Gate::Cz(a, b) => write!(f, "cz q{a}, q{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(Gate::Cx(1, 2).qubits(), vec![1, 2]);
        assert!(Gate::Cz(0, 1).is_two_qubit());
        assert!(!Gate::Rz(0, 1.0).is_two_qubit());
    }

    #[test]
    fn remapping() {
        let g = Gate::Cx(0, 1).remap(|q| q + 10);
        assert_eq!(g, Gate::Cx(10, 11));
        assert_eq!(Gate::Rz(2, 0.5).remap(|q| q * 2), Gate::Rz(4, 0.5));
    }

    #[test]
    fn self_inverse_classification() {
        assert!(Gate::H(0).is_self_inverse());
        assert!(Gate::Cx(0, 1).is_self_inverse());
        assert!(!Gate::Rz(0, 0.3).is_self_inverse());
        assert!(!Gate::Sx(0).is_self_inverse());
    }
}
