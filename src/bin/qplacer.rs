//! `qplacer` — command-line front end for the placement pipeline.
//!
//! ```text
//! qplacer inventory
//! qplacer place    <topology> [--strategy qplacer|classic|human]
//!                  [--segment <mm>] [--levels N] [--svg FILE] [--gds FILE]
//! qplacer evaluate <topology> <benchmark> [--strategy ...] [--subsets N]
//!                  [--seed N] [--threads N]
//! qplacer sweep    <topology>            # l_b ablation on one device
//! qplacer e2e      [--devices a,b,..] [--strategy qplacer|classic]
//!                  [--segment <mm>] [--levels N] [--fast] [--trace FILE]
//!                  [--chrome FILE]
//! qplacer replace  <topology> (--drop-coupler A-B | --drop-qubit N
//!                  | --yield PCT [--seed S]) [--strategy S] [--fast]
//! qplacer profile  <topology> [--strategy qplacer|classic] [--levels N]
//!                  [--fast] [--chrome FILE] [--folded FILE]
//! qplacer suite    [--devices a,b,..] [--strategies s,..]
//!                  [--benchmarks b,..] [--subsets N] [--seeds N]
//!                  [--threads N] [--fast] [--levels N]
//!                  [--jsonl FILE] [--csv FILE]
//! qplacer serve    [--addr HOST:PORT] [--workers N] [--queue N]
//!                  [--cache N] [--batch N] [--flight N] [--store DIR]
//!                  [--tenant-quota N] [--shard-id I --shards N]
//! qplacer submit   <topology> [--strategy S] [--addr HOST:PORT] [--fast]
//!                  [--segment <mm>] [--count N] [--deadline MS]
//!                  [--priority high|normal|low] [--tenant NAME]
//! qplacer stats    [--addr HOST:PORT] [--format text|prometheus]
//! qplacer dump-trace [--addr HOST:PORT] [--out FILE]
//! qplacer shutdown [--addr HOST:PORT]
//! ```
//!
//! Topologies span the whole device zoo: the paper's six (`grid`,
//! `falcon`, `eagle`, `aspen11`, `aspenm`, `xtree`), the parametric
//! families (`grid-WxH`, `heavy-hex-dN`, `ring-N`, `ladder-N`), the
//! seeded defect wrapper (`defective-<base>[-yPCT][-sSEED]`), and JSON
//! device files (`path/to/device.json`, written by `qplacer export`).
//! Benchmarks: the Table-I eight (`bv-4` … `qgan-9`) plus any
//! parametric `bv-N`/`qaoa-N`/`ising-N`/`qgan-N`/`ghz-N`/`qv-N`.
//!
//! `--levels N` (on `place`, `e2e`, `profile`, and `suite`) switches
//! global placement to the multilevel V-cycle
//! ([`PlacerConfig::levels`](qplacer::PlacerConfig::levels)) — the
//! intended mode for Osprey/Condor-scale devices such as
//! `heavy-hex-d10` and `heavy-hex-d16`.
//!
//! `suite` runs the full paper evaluation grid through the
//! [`qplacer_harness`] runner: jobs fan out across a thread pool and the
//! per-job records stream (in deterministic plan order) to JSONL/CSV.
//! `serve` starts the [`qplacer_service`] placement daemon; `submit`,
//! `stats`, and `shutdown` talk to it over the JSON-lines protocol.
//! `serve --store DIR` makes results durable (an append-only log
//! replayed into the cache on restart); `--shard-id I --shards N`
//! labels the daemon as one shard of a consistent-hash fleet; `submit
//! --priority`/`--tenant` exercise the queue's scheduling lanes and
//! per-tenant admission quotas.
//!
//! Observability (the [`qplacer::obs`] layer): `e2e --trace FILE`
//! writes per-iteration / per-phase convergence telemetry as JSONL;
//! `profile` runs one placement with span timing enabled and prints the
//! aggregated span tree; `stats --format prometheus` fetches the
//! server's metrics in the Prometheus text exposition format.
//!
//! Event timelines: `profile --chrome FILE` / `--folded FILE` capture
//! the placement's begin/end event stream and export it as Chrome
//! Trace Event JSON (loads in Perfetto / `chrome://tracing`) or
//! collapsed flamegraph stacks; `e2e --chrome FILE` does the same
//! across the device list, one trace id per device. `serve` keeps an
//! always-on bounded flight recorder (`--flight N` events per thread,
//! overwrite-oldest), and `dump-trace` fetches it from a running
//! daemon as Chrome-trace JSON — the post-mortem view.

use std::process::ExitCode;

use qplacer::{
    paper_suite, ClientBuilder, CsvSink, DeviceSpec, ExecOptions, ExperimentPlan, JsonlSink,
    JsonlTraceSink, NetlistConfig, PipelineConfig, PipelineWorkspace, PlaceJob, PlacedLayout,
    Priority, Profile, Qplacer, RunOptions, Runner, Server, ServiceClient, ServiceConfig, Sink,
    Strategy, Summary, Topology, TopologyDelta,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "inventory" => cmd_inventory(),
        "export" => cmd_export(&args[1..]),
        "place" => cmd_place(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "e2e" => cmd_e2e(&args[1..]),
        "replace" => cmd_replace(&args[1..]),
        "profile" => cmd_profile(&args[1..]),
        "suite" => cmd_suite(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "submit" => cmd_submit(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "dump-trace" => cmd_dump_trace(&args[1..]),
        "shutdown" => cmd_shutdown(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  qplacer inventory
  qplacer export   <topology> [--out FILE]     # write the JSON device file
  qplacer place    <topology> [--strategy qplacer|classic|human]
                   [--segment <mm>] [--levels N] [--svg FILE] [--gds FILE]
  qplacer evaluate <topology> <benchmark> [--strategy S] [--subsets N]
                   [--seed N] [--threads N]
  qplacer sweep    <topology>
  qplacer e2e      [--devices a,b,..] [--strategy qplacer|classic]
                   [--segment <mm>] [--levels N] [--fast] [--trace FILE]
                   [--chrome FILE]
  qplacer replace  <topology> (--drop-coupler A-B[,C-D..] | --drop-qubit N[,M..]
                   | --yield PCT [--seed S]) [--strategy qplacer|classic] [--fast]
  qplacer profile  <topology> [--strategy qplacer|classic] [--levels N] [--fast]
                   [--chrome FILE] [--folded FILE]
  qplacer suite    [--devices a,b,..] [--strategies s,..] [--benchmarks b,..]
                   [--subsets N] [--seeds N] [--threads N] [--fast] [--levels N]
                   [--jsonl FILE] [--csv FILE]
  qplacer serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
                   [--batch N] [--flight N] [--store DIR] [--tenant-quota N]
                   [--shard-id I --shards N]
  qplacer submit   <topology> [--strategy S] [--addr HOST:PORT] [--fast]
                   [--segment <mm>] [--count N] [--deadline MS]
                   [--priority high|normal|low] [--tenant NAME]
  qplacer stats    [--addr HOST:PORT] [--format text|prometheus]
  qplacer dump-trace [--addr HOST:PORT] [--out FILE]
  qplacer shutdown [--addr HOST:PORT]

topologies (device zoo):
  paper devices:  grid falcon eagle aspen11 aspenm xtree
  parametric:     grid-WxH heavy-hex-dN ring-N ladder-N
  defect model:   defective-<base>[-yPCT][-sSEED]   (e.g. defective-eagle,
                  defective-heavy-hex-d7-y85-s3; defaults y90 s0)
  seed ranges:    defective-<base>[-yPCT]-sA..B expands to one suite job
                  per seed in A..B inclusive (e.g. defective-eagle-s0..4)
  JSON import:    any path ending in .json, or json:<path>
benchmarks: bv-4 bv-9 bv-16 qaoa-4 qaoa-9 ising-4 qgan-4 qgan-9,
  plus parametric bv-N qaoa-N ising-N qgan-N ghz-N qv-N at any size
--levels N runs the multilevel V-cycle (coarsen, place, refine) at depth
  N; 1 (the default) places flat. Use 2-4 for Osprey/Condor-scale devices.
default service address: 127.0.0.1:7177";

fn parse_topology(name: &str) -> Result<Topology, String> {
    // try_build so a bad spelling or an unplaceable device is a clean
    // `error:` line, not a panic.
    DeviceSpec::parse(name).and_then(|spec| spec.try_build().map_err(|e| e.to_string()))
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "qplacer" => Strategy::FrequencyAware,
        "classic" => Strategy::Classic,
        "human" => Strategy::Human,
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

/// Pulls `--flag value` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `--flag value` as a number, with a helpful error.
fn numeric_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    flag_value(args, flag)
        .map(|v| v.parse().map_err(|_| format!("bad {flag} `{v}`")))
        .transpose()
        .map(|opt| opt.unwrap_or(default))
}

/// Parses the optional `--levels N` multilevel depth (≥ 1; 1 = flat).
fn levels_flag(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--levels") {
        None => Ok(None),
        Some(v) => {
            let levels: usize = v.parse().map_err(|_| format!("bad --levels `{v}`"))?;
            if levels == 0 {
                return Err("--levels must be at least 1".into());
            }
            Ok(Some(levels))
        }
    }
}

/// Writes a device's JSON description — the round-trippable import
/// format `--devices <file>.json` (and `Topology::from_json`) consume.
fn cmd_export(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("export needs a topology")?;
    let device = parse_topology(name)?;
    let json = device.to_json();
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "wrote {path} ({}, {} qubits, {} couplers)",
                device.name(),
                device.num_qubits(),
                device.num_edges()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn cmd_inventory() -> Result<(), String> {
    println!("topologies:");
    for t in Topology::paper_suite() {
        println!(
            "  {:<10} {:>4} qubits {:>4} couplings  ({})",
            t.name(),
            t.num_qubits(),
            t.num_edges(),
            t.class()
        );
    }
    println!("benchmarks:");
    for b in paper_suite() {
        println!(
            "  {:<8} {:>3} qubits {:>4} gates ({} two-qubit, depth {})",
            b.name,
            b.circuit.num_qubits(),
            b.circuit.len(),
            b.circuit.two_qubit_count(),
            b.circuit.depth()
        );
    }
    Ok(())
}

fn run_pipeline(args: &[String], device: &Topology) -> Result<PlacedLayout, String> {
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    let mut config = PipelineConfig::paper();
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        if lb <= 0.0 {
            return Err("--segment must be positive".into());
        }
        config.netlist = NetlistConfig::with_segment_size(lb);
    }
    if let Some(levels) = levels_flag(args)? {
        config.placer.levels = levels;
    }
    Ok(Qplacer::new(config).execute(device, strategy, ExecOptions::default()))
}

fn cmd_place(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("place needs a topology")?;
    let device = parse_topology(name)?;
    let layout = run_pipeline(args, &device)?;

    let area = layout.area();
    let hs = layout.hotspots();
    println!("device:    {device}");
    println!("strategy:  {}", layout.strategy);
    if let Some(p) = &layout.placement {
        println!(
            "placement: {} iterations, overflow {:.3}, HPWL {:.1} mm, {:.2} s",
            p.iterations, p.final_overflow, p.hpwl, p.elapsed_seconds
        );
    }
    if let Some(l) = &layout.legalization {
        println!(
            "legalize:  {}/{} resonators integrated, {} overlaps",
            l.integrated_after, l.resonator_count, l.remaining_overlaps
        );
    }
    println!(
        "area:      {:.1} x {:.1} mm  (A_mer {:.1} mm², utilization {:.1}%)",
        area.mer.width(),
        area.mer.height(),
        area.mer_area,
        area.utilization * 100.0
    );
    println!(
        "hotspots:  P_h {:.2}%, {} violations, {} impacted qubits",
        hs.ph * 100.0,
        hs.violations.len(),
        hs.impacted_qubits.len()
    );

    if let Some(path) = flag_value(args, "--svg") {
        std::fs::write(path, layout.svg()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--gds") {
        std::fs::write(path, layout.gds(&device.name().to_uppercase()))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let tname = args.first().ok_or("evaluate needs a topology")?;
    let bname = args.get(1).ok_or("evaluate needs a benchmark")?;
    let device_spec = DeviceSpec::parse(tname)?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    let subsets: usize = numeric_flag(args, "--subsets", 50)?;
    let seed: u64 = numeric_flag(args, "--seed", 0xF1D0)?;
    let threads: usize = numeric_flag(args, "--threads", 0)?;

    // A single-job plan through the harness: the per-subset evaluation
    // fans out across the runner's thread pool.
    let mut plan = ExperimentPlan::grid(
        "evaluate",
        &[device_spec],
        &[strategy],
        &[bname],
        subsets,
        &[seed],
    );
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        plan.jobs[0].segment_size_mm = Some(lb);
    }
    let report = Runner::new(threads).run(&plan);
    let record = &report.records[0];
    if !record.status.is_ok() {
        return Err(format!("{:?}", record.status));
    }
    println!(
        "{} on {} ({}, {} mappings, {} skipped):",
        bname,
        record.device,
        record.strategy,
        record.subsets_evaluated,
        record.subsets_skipped_too_large + record.subsets_skipped_unroutable,
    );
    println!("  mean fidelity:  {:.4e}", record.mean_fidelity);
    println!("  worst fidelity: {:.4e}", record.min_fidelity);
    println!(
        "  mean active crosstalk violations: {:.1}",
        record.mean_active_violations
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("sweep needs a topology")?;
    let device_spec = DeviceSpec::parse(name)?;
    let plan = ExperimentPlan::placement_grid(
        "segment-sweep",
        &[device_spec],
        &[Strategy::FrequencyAware],
        &[Some(0.2), Some(0.3), Some(0.4)],
    );
    let report = Runner::new(0).run(&plan);
    println!(
        "{:>6} {:>7} {:>12} {:>8} {:>10}",
        "l_b", "#cells", "utilization", "Ph %", "runtime s"
    );
    for record in &report.records {
        println!(
            "{:>6.1} {:>7} {:>12.3} {:>8.2} {:>10.2}",
            record.segment_size_mm.unwrap_or_default(),
            record.instances,
            record.utilization,
            record.ph * 100.0,
            record.wall_ms / 1e3,
        );
    }
    Ok(())
}

/// Comma-separated flag list, with a default.
fn list_flag<'a>(args: &'a [String], flag: &str, default: &'a str) -> Vec<&'a str> {
    flag_value(args, flag)
        .unwrap_or(default)
        .split(',')
        .filter(|s| !s.is_empty())
        .collect()
}

/// Runs the full pipeline — frequency assignment, global placement,
/// legalization, area/hotspot metrics — on each device, reusing one
/// [`PipelineWorkspace`] across runs, and reports per-stage wall times.
/// Fails when any device's layout keeps residual overlaps, so CI can
/// smoke the whole loop with one command.
fn cmd_e2e(args: &[String]) -> Result<(), String> {
    let devices = list_flag(args, "--devices", "falcon,eagle")
        .into_iter()
        .map(DeviceSpec::parse)
        .collect::<Result<Vec<_>, _>>()?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    if strategy == Strategy::Human {
        return Err("e2e measures the engine pipeline; use qplacer or classic".into());
    }
    let mut config = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        if lb <= 0.0 {
            return Err("--segment must be positive".into());
        }
        config.netlist = NetlistConfig::with_segment_size(lb);
    }
    if let Some(levels) = levels_flag(args)? {
        config.placer.levels = levels;
    }
    let mut trace = flag_value(args, "--trace")
        .map(|path| JsonlTraceSink::create(path).map_err(|e| format!("create {path}: {e}")))
        .transpose()?;
    let chrome = flag_value(args, "--chrome");
    if chrome.is_some() {
        qplacer::obs::set_spans_enabled(true);
        qplacer::obs::set_event_mode(qplacer::obs::EventMode::Capture);
        qplacer::obs::clear_events();
    }
    let engine = Qplacer::new(config);
    let mut ws = PipelineWorkspace::new();
    println!(
        "{:<10} {:>6} {:>11} {:>10} {:>12} {:>11} {:>9} {:>8}",
        "device", "cells", "assign ms", "place s", "legalize ms", "integrated", "overlaps", "Ph %"
    );
    let mut dirty = 0usize;
    for spec in devices {
        let device = spec.try_build().map_err(|e| e.to_string())?;
        // One trace id per device keeps the exported timeline separable.
        let _scope = chrome
            .is_some()
            .then(|| qplacer::adopt_trace_id(qplacer::fresh_trace_id()));
        let layout = match trace.as_mut() {
            Some(sink) => {
                sink.set_label(Some(device.name().to_string()));
                engine.execute(
                    &device,
                    strategy,
                    ExecOptions {
                        workspace: Some(&mut ws),
                        sink: Some(sink),
                        ..Default::default()
                    },
                )
            }
            None => engine.execute(
                &device,
                strategy,
                ExecOptions {
                    workspace: Some(&mut ws),
                    ..Default::default()
                },
            ),
        };
        let legal = layout
            .legalization
            .as_ref()
            .expect("engine strategies legalize");
        let hs = layout.hotspots();
        println!(
            "{:<10} {:>6} {:>11.3} {:>10.2} {:>12.3} {:>7}/{:<3} {:>9} {:>8.2}",
            device.name(),
            layout.netlist.num_instances(),
            layout.timings.assign_ms,
            layout.timings.place_ms / 1e3,
            layout.timings.legalize_ms,
            legal.integrated_after,
            legal.resonator_count,
            legal.remaining_overlaps,
            hs.ph * 100.0,
        );
        if legal.remaining_overlaps > 0 {
            dirty += 1;
        }
    }
    if let Some(sink) = trace {
        sink.finish().map_err(|e| format!("writing trace: {e}"))?;
        println!("wrote {}", flag_value(args, "--trace").unwrap_or_default());
    }
    if let Some(path) = chrome {
        let snapshot = qplacer::event_snapshot();
        qplacer::obs::set_event_mode(qplacer::obs::EventMode::Off);
        std::fs::write(path, qplacer::chrome_trace_json(&snapshot.events))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path} ({} events)", snapshot.events.len());
    }
    if dirty > 0 {
        return Err(format!("{dirty} device(s) kept residual overlaps"));
    }
    Ok(())
}

/// Parses the `--drop-coupler A-B[,C-D..]` spelling into qubit pairs.
fn parse_coupler_list(value: &str) -> Result<Vec<(usize, usize)>, String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (a, b) = pair
                .split_once('-')
                .ok_or_else(|| format!("bad coupler `{pair}` (expected A-B)"))?;
            let a = a.parse().map_err(|_| format!("bad qubit `{a}`"))?;
            let b = b.parse().map_err(|_| format!("bad qubit `{b}`"))?;
            Ok((a, b))
        })
        .collect()
}

/// Incremental (ECO) re-placement: cold-place the base device, apply a
/// topology edit (dropped couplers, dropped qubits, or the seeded yield
/// model), then warm-start the whole pipeline from the cold layout and
/// report how local the edit stayed. Exits nonzero when the warm layout
/// keeps residual overlaps.
fn cmd_replace(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("replace needs a topology")?;
    let base = parse_topology(name)?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    if strategy == Strategy::Human {
        return Err("replace warm-starts the engine pipeline; use qplacer or classic".into());
    }

    let mut deltas: Vec<TopologyDelta> = Vec::new();
    if let Some(list) = flag_value(args, "--drop-coupler") {
        let pairs = parse_coupler_list(list)?;
        deltas.push(TopologyDelta::drop_couplers(&base, &pairs).map_err(|e| e.to_string())?);
    }
    if let Some(list) = flag_value(args, "--drop-qubit") {
        let qubits = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|q| q.parse().map_err(|_| format!("bad qubit `{q}`")))
            .collect::<Result<Vec<usize>, String>>()?;
        deltas.push(TopologyDelta::drop_qubits(&base, &qubits).map_err(|e| e.to_string())?);
    }
    if let Some(pct) = flag_value(args, "--yield") {
        let yield_pct: u32 = pct.parse().map_err(|_| format!("bad --yield `{pct}`"))?;
        let seed: u64 = numeric_flag(args, "--seed", 0)?;
        deltas.push(base.yield_delta(yield_pct, seed));
    }
    let delta = match deltas.len() {
        0 => return Err("replace needs an edit: --drop-coupler, --drop-qubit, or --yield".into()),
        1 => deltas.pop().expect("one delta"),
        _ => return Err("pick one edit: --drop-coupler, --drop-qubit, or --yield".into()),
    };

    let config = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    let engine = Qplacer::new(config);
    let mut ws = PipelineWorkspace::new();

    let start = std::time::Instant::now();
    let cold = engine.execute(
        &base,
        strategy,
        ExecOptions {
            workspace: Some(&mut ws),
            ..Default::default()
        },
    );
    let cold_s = start.elapsed().as_secs_f64();
    println!(
        "cold:    {} ({} qubits, {} instances) in {:.2} s",
        base.name(),
        base.num_qubits(),
        cold.netlist.num_instances(),
        cold_s
    );

    let start = std::time::Instant::now();
    let (warm, report) = engine
        .execute_replace(
            &base,
            &cold,
            &delta,
            ExecOptions {
                workspace: Some(&mut ws),
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;
    let warm_s = start.elapsed().as_secs_f64();
    println!(
        "replace: {} (-{} qubits, -{} +{} couplers) in {:.3} s ({:.1}x vs cold)",
        delta.name(),
        delta.removed_qubits().len(),
        delta.removed_couplers().len(),
        delta.added_couplers().len(),
        warm_s,
        cold_s / warm_s.max(1e-9),
    );

    let overlaps = warm.netlist.overlapping_pairs().len();
    println!(
        "replace ok: moved {}/{} instances ({} qubits), pinned {}, dirty {} qubits, {} overlaps",
        report.moved_instances,
        report.total_instances,
        warm.netlist.num_qubits(),
        report.pinned_instances,
        report.dirty_qubits,
        overlaps
    );
    if overlaps > 0 {
        return Err(format!("warm layout kept {overlaps} residual overlaps"));
    }
    Ok(())
}

/// Runs one placement with span timing enabled and prints the
/// aggregated span tree (count, total wall time, share of the parent
/// span) — the quick "where does the time go" view. With `--chrome` /
/// `--folded`, additionally captures the event timeline and writes it
/// as Chrome Trace Event JSON / collapsed flamegraph stacks — the same
/// spans, event by event instead of aggregated.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("profile needs a topology")?;
    let device = parse_topology(name)?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    if strategy == Strategy::Human {
        return Err("profile measures the engine pipeline; use qplacer or classic".into());
    }
    let mut config = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    if let Some(levels) = levels_flag(args)? {
        config.placer.levels = levels;
    }
    let chrome = flag_value(args, "--chrome");
    let folded = flag_value(args, "--folded");
    let capture_events = chrome.is_some() || folded.is_some();
    qplacer::obs::set_spans_enabled(true);
    qplacer::obs::reset_spans();
    if capture_events {
        qplacer::obs::set_event_mode(qplacer::obs::EventMode::Capture);
        qplacer::obs::clear_events();
    }
    let engine = Qplacer::new(config);
    let mut ws = PipelineWorkspace::new();
    let _scope = qplacer::adopt_trace_id(qplacer::fresh_trace_id());
    let layout = engine.execute(
        &device,
        strategy,
        ExecOptions {
            workspace: Some(&mut ws),
            ..Default::default()
        },
    );
    println!(
        "{} / {}: {} cells, {:.2} s wall",
        device.name(),
        layout.strategy,
        layout.netlist.num_instances(),
        (layout.timings.assign_ms + layout.timings.place_ms + layout.timings.legalize_ms) / 1e3,
    );
    print!("{}", qplacer::render_span_tree());
    if capture_events {
        let snapshot = qplacer::event_snapshot();
        qplacer::obs::set_event_mode(qplacer::obs::EventMode::Off);
        if let Some(path) = chrome {
            std::fs::write(path, qplacer::chrome_trace_json(&snapshot.events))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path} ({} events)", snapshot.events.len());
        }
        if let Some(path) = folded {
            std::fs::write(path, qplacer::folded_stacks(&snapshot.events))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    // How often the spectral solver fell back to the O(n²) naive DCT:
    // nonzero means some bin-grid length dodged every fast path.
    println!(
        "naive DCT fallbacks: {}",
        qplacer::obs::global()
            .counter("qplacer_dct_naive_fallback_total")
            .get()
    );
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    // parse_multi so seed-range spellings (defective-eagle-s0..4) fan
    // out into one job per seed.
    let devices = list_flag(args, "--devices", "grid,falcon,eagle,aspen11,aspenm,xtree")
        .into_iter()
        .map(DeviceSpec::parse_multi)
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .flatten()
        .collect::<Vec<_>>();
    let strategies = list_flag(args, "--strategies", "qplacer,classic,human")
        .into_iter()
        .map(parse_strategy)
        .collect::<Result<Vec<_>, _>>()?;
    let suite = paper_suite();
    let known: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
    let default_benchmarks = known.join(",");
    let benchmarks = list_flag(args, "--benchmarks", &default_benchmarks)
        .into_iter()
        .map(str::to_string)
        .collect::<Vec<_>>();
    for b in &benchmarks {
        // Paper names plus the parametric zoo (ghz-N, qv-N, …).
        if qplacer::circuits::benchmark_by_name(b).is_none() {
            return Err(format!("unknown benchmark `{b}`"));
        }
    }
    let subsets: usize = numeric_flag(args, "--subsets", 50)?;
    let num_seeds: usize = numeric_flag(args, "--seeds", 1)?;
    let threads: usize = numeric_flag(args, "--threads", 0)?;
    let seeds: Vec<u64> = (0..num_seeds as u64).map(|i| 0xF1D0 + i).collect();

    let benchmark_refs: Vec<&str> = benchmarks.iter().map(String::as_str).collect();
    let mut plan = ExperimentPlan::grid(
        "paper-suite",
        &devices,
        &strategies,
        &benchmark_refs,
        subsets,
        &seeds,
    );
    if args.iter().any(|a| a == "--fast") {
        plan = plan.with_profile(Profile::Fast);
    }
    if let Some(levels) = levels_flag(args)? {
        plan = plan.with_levels(levels);
    }

    let runner = Runner::new(threads);
    eprintln!(
        "running {} jobs on {} threads ...",
        plan.len(),
        runner.threads()
    );

    let mut jsonl = flag_value(args, "--jsonl")
        .map(|path| JsonlSink::create(path).map_err(|e| format!("create {path}: {e}")))
        .transpose()?;
    let mut csv = flag_value(args, "--csv")
        .map(|path| CsvSink::create(path).map_err(|e| format!("create {path}: {e}")))
        .transpose()?;
    let mut sinks: Vec<&mut dyn Sink> = Vec::new();
    if let Some(sink) = jsonl.as_mut() {
        sinks.push(sink);
    }
    if let Some(sink) = csv.as_mut() {
        sinks.push(sink);
    }
    let report = runner
        .execute(
            &plan,
            RunOptions {
                sinks,
                ..Default::default()
            },
        )
        .map_err(|e| format!("writing results: {e}"))?
        .report;

    print!("{}", Summary::table(&report.summaries()));
    println!(
        "{} jobs in {:.1} s on {} threads ({} failed)",
        report.records.len(),
        report.wall_ms / 1e3,
        report.threads,
        report.failures().len()
    );
    if let Some(path) = flag_value(args, "--jsonl") {
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--csv") {
        println!("wrote {path}");
    }
    // Results (including failure records) are written above; the exit
    // code still has to tell scripts the sweep was not clean, and the
    // per-job failure messages say why.
    let failures = Summary::failures(&report.records);
    if !failures.is_empty() {
        for line in &failures {
            eprintln!("  {line}");
        }
        return Err(format!(
            "{}/{} jobs failed",
            failures.len(),
            report.records.len()
        ));
    }
    Ok(())
}

/// Default service address for `serve`/`submit`/`stats`/`shutdown`.
const DEFAULT_ADDR: &str = "127.0.0.1:7177";

fn service_addr(args: &[String]) -> &str {
    flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR)
}

fn connect(args: &[String]) -> Result<ServiceClient, String> {
    let addr = service_addr(args);
    ClientBuilder::new(addr)
        .connect_timeout(std::time::Duration::from_secs(5))
        .connect()
        .map_err(|e| format!("connect {addr}: {e}"))
}

/// Runs the placement daemon until a `shutdown` request drains it.
///
/// The daemon keeps an always-on flight recorder: spans record into
/// bounded per-thread rings (`--flight N` events per thread,
/// overwrite-oldest, so memory stays fixed no matter the uptime), and
/// `qplacer dump-trace` fetches the retained window as Chrome-trace
/// JSON for post-mortem inspection.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flight: usize = numeric_flag(args, "--flight", qplacer::obs::DEFAULT_FLIGHT_CAPACITY)?;
    qplacer::obs::set_flight_capacity(flight);
    qplacer::obs::set_spans_enabled(true);
    qplacer::set_event_mode(qplacer::EventMode::Flight);
    let shards: usize = numeric_flag(args, "--shards", 1usize)?;
    let shard_id: usize = numeric_flag(args, "--shard-id", 0usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shard_id >= shards {
        return Err(format!(
            "--shard-id {shard_id} out of range for --shards {shards}"
        ));
    }
    let config = ServiceConfig {
        addr: service_addr(args).to_string(),
        workers: numeric_flag(args, "--workers", 0usize)?,
        queue_capacity: numeric_flag(args, "--queue", 128usize)?,
        cache_capacity: numeric_flag(args, "--cache", 256usize)?,
        batch_max: numeric_flag(args, "--batch", 8usize)?,
        store_dir: flag_value(args, "--store").map(std::path::PathBuf::from),
        tenant_quota: flag_value(args, "--tenant-quota")
            .map(|v| v.parse().map_err(|_| format!("bad --tenant-quota `{v}`")))
            .transpose()?,
        shard_id,
        shards,
    };
    let store_dir = config.store_dir.clone();
    let server = Server::start(config).map_err(|e| format!("start server: {e}"))?;
    println!(
        "qplacer-service listening on {} (shard {}/{})",
        server.local_addr(),
        shard_id,
        shards
    );
    if let Some(dir) = &store_dir {
        let stats = server.metrics();
        println!(
            "durable store at {} ({} results replayed into cache)",
            dir.display(),
            stats.store_replayed
        );
    }
    println!("stop with: qplacer shutdown --addr {}", server.local_addr());
    server.join();
    println!("drained; goodbye");
    Ok(())
}

/// Submits one or more placements and prints the reply envelopes.
fn cmd_submit(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("submit needs a topology")?;
    let device = DeviceSpec::parse(name)?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    let count: usize = numeric_flag(args, "--count", 1)?;
    let mut job = if args.iter().any(|a| a == "--fast") {
        PlaceJob::fast(device, strategy)
    } else {
        PlaceJob::new(device, strategy)
    };
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        if lb <= 0.0 {
            return Err("--segment must be positive".into());
        }
        job.segment_size_mm = Some(lb);
    }
    if let Some(ms) = flag_value(args, "--deadline") {
        job.deadline_ms = Some(ms.parse().map_err(|_| format!("bad --deadline `{ms}`"))?);
    }
    if let Some(priority) = flag_value(args, "--priority") {
        job.priority = priority
            .parse::<Priority>()
            .map_err(|e| format!("bad --priority `{priority}`: {e}"))?;
    }
    if let Some(tenant) = flag_value(args, "--tenant") {
        job.tenant = Some(tenant.to_string());
    }

    let mut client = connect(args)?;
    for i in 0..count.max(1) {
        let reply = client.place(&job).map_err(|e| e.to_string())?;
        let r = &reply.result;
        println!(
            "#{i} {} {} [{}] {:.1} ms: {} cells, {} iters, HPWL {:.1} mm, \
             A_mer {:.1} mm², P_h {:.2}%, {} overlaps",
            r.device,
            r.strategy,
            if reply.cached { "cached" } else { "fresh" },
            reply.wall_ms,
            r.instances,
            r.place_iterations,
            r.hpwl_mm,
            r.mer_area_mm2,
            r.ph * 100.0,
            r.remaining_overlaps,
        );
    }
    Ok(())
}

/// Prints the server's metrics snapshot (or Prometheus text).
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "prometheus") {
        return Err(format!("unknown --format `{format}` (text|prometheus)"));
    }
    let mut client = connect(args)?;
    if format == "prometheus" {
        let text = client.metrics_text().map_err(|e| e.to_string())?;
        print!("{text}");
        return Ok(());
    }
    let m = client.stats().map_err(|e| e.to_string())?;
    println!(
        "uptime {:.1} s  requests {}  placed {}  errors {}",
        m.uptime_ms as f64 / 1e3,
        m.requests,
        m.placed,
        m.errors
    );
    println!(
        "rejected: busy {}  invalid-device {}  deadline-expired {}",
        m.rejected_busy, m.rejected_invalid_device, m.deadline_expired
    );
    println!(
        "queue depth {}  in-flight {}  batches {} ({} jobs batched)",
        m.queue_depth, m.in_flight, m.batches, m.batched_jobs
    );
    println!(
        "cache: {:.1}% hit ({} hits / {} misses), {} entries, {} evictions",
        m.cache_hit_rate * 100.0,
        m.cache_hits,
        m.cache_misses,
        m.cache_entries,
        m.cache_evictions
    );
    println!("warm placements {}", m.warm_placements);
    for (name, h) in [
        ("assign", &m.assign),
        ("place", &m.place),
        ("legalize", &m.legalize),
        ("total", &m.total),
    ] {
        println!(
            "{name:>9}: n {:>5}  mean {:>8.2} ms  p50 <= {:>8.2} ms  p99 <= {:>8.2} ms",
            h.count,
            h.mean_ms,
            h.quantile_upper_bound_ms(0.5),
            h.quantile_upper_bound_ms(0.99),
        );
    }
    Ok(())
}

/// Fetches the daemon's flight recorder as Chrome-trace JSON — what
/// the server's threads were doing lately, loadable in Perfetto.
fn cmd_dump_trace(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    let dump = client.dump_trace().map_err(|e| e.to_string())?;
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &dump.chrome_json).map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "wrote {path} ({} events, {} overwritten by the ring)",
                dump.events, dump.dropped
            );
        }
        None => println!("{}", dump.chrome_json),
    }
    Ok(())
}

/// Asks the server to drain and exit.
fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    client.shutdown().map_err(|e| e.to_string())?;
    println!("server draining");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_parsing() {
        assert_eq!(parse_topology("falcon").unwrap().num_qubits(), 27);
        assert_eq!(parse_topology("eagle").unwrap().num_qubits(), 127);
        assert_eq!(parse_topology("aspenm").unwrap().num_qubits(), 80);
        assert!(parse_topology("sycamore").is_err());
        // Zoo spellings reach the CLI too.
        assert_eq!(parse_topology("heavy-hex-d5").unwrap().num_qubits(), 127);
        assert_eq!(parse_topology("ring-16").unwrap().num_qubits(), 16);
        assert_eq!(parse_topology("ladder-4").unwrap().num_qubits(), 8);
        let defective = parse_topology("defective-eagle").unwrap();
        assert!(defective.is_connected());
        assert!(defective.num_qubits() < 127);
    }

    #[test]
    fn export_round_trips_through_the_json_device_spelling() {
        let dir = std::env::temp_dir().join("qplacer-cli-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("falcon.json");
        let path_str = path.to_string_lossy().into_owned();
        let args: Vec<String> = ["falcon", "--out", path_str.as_str()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_export(&args).is_ok());
        let imported = parse_topology(&path_str).unwrap();
        assert_eq!(imported, Topology::falcon27());
        // And the whole pipeline runs on the imported device.
        let e2e_args: Vec<String> = ["--devices", path_str.as_str(), "--fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_e2e(&e2e_args).is_ok());
        // Export validates its topology argument.
        assert!(cmd_export(&["warp".to_string()]).is_err());
        assert!(cmd_export(&[]).is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(parse_strategy("qplacer").unwrap(), Strategy::FrequencyAware);
        assert_eq!(parse_strategy("classic").unwrap(), Strategy::Classic);
        assert_eq!(parse_strategy("human").unwrap(), Strategy::Human);
        assert!(parse_strategy("best").is_err());
    }

    #[test]
    fn flag_extraction() {
        let args: Vec<String> = ["--svg", "out.svg", "--subsets", "10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--svg"), Some("out.svg"));
        assert_eq!(flag_value(&args, "--subsets"), Some("10"));
        assert_eq!(flag_value(&args, "--seed"), None);
        // Flag at the end without a value.
        let dangling: Vec<String> = vec!["--svg".to_string()];
        assert_eq!(flag_value(&dangling, "--svg"), None);
    }

    #[test]
    fn list_flag_splits_and_defaults() {
        let args: Vec<String> = ["--devices", "grid,falcon"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(list_flag(&args, "--devices", "x"), vec!["grid", "falcon"]);
        assert_eq!(list_flag(&args, "--strategies", "a,b"), vec!["a", "b"]);
    }

    #[test]
    fn inventory_runs() {
        assert!(cmd_inventory().is_ok());
    }

    #[test]
    fn e2e_command_runs_on_a_grid() {
        let args: Vec<String> = ["--devices", "grid", "--fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_e2e(&args).is_ok());
        // Human is placement-free; e2e must refuse it.
        let bad: Vec<String> = ["--strategy", "human"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_e2e(&bad).is_err());
    }

    #[test]
    fn e2e_trace_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join("qplacer-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path_str = path.to_string_lossy().into_owned();
        let args: Vec<String> = ["--devices", "grid", "--fast", "--trace", path_str.as_str()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_e2e(&args).is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty());
        for line in text.lines() {
            let value: serde_json::Value =
                serde_json::from_str(line).expect("valid JSON trace line");
            assert!(value.as_map().is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_command_prints_a_span_tree_and_exports_timelines() {
        let args: Vec<String> = ["grid", "--fast"].iter().map(|s| s.to_string()).collect();
        assert!(cmd_profile(&args).is_ok());
        // At least the pipeline root span must have been recorded.
        assert!(qplacer::obs::span_report()
            .iter()
            .any(|s| s.name == "pipeline" && s.count > 0));
        assert!(cmd_profile(&[]).is_err());
        let bad: Vec<String> = ["grid", "--strategy", "human"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_profile(&bad).is_err());

        // --chrome / --folded capture the event timeline and write the
        // two export formats. Same test (not a sibling) because profile
        // toggles the process-global span/event gates.
        let dir = std::env::temp_dir().join("qplacer-cli-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let chrome = dir.join("trace.json").to_string_lossy().into_owned();
        let folded = dir.join("stacks.txt").to_string_lossy().into_owned();
        let args: Vec<String> = ["grid", "--fast", "--chrome", &chrome, "--folded", &folded]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_profile(&args).is_ok());
        let text = std::fs::read_to_string(&chrome).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid Chrome JSON");
        let map = value.as_map().expect("top-level object");
        assert!(map.iter().any(|(k, _)| k == "traceEvents"));
        assert!(text.contains("\"name\":\"pipeline\""));
        let stacks = std::fs::read_to_string(&folded).unwrap();
        assert!(
            stacks.lines().any(|l| l.starts_with("pipeline")),
            "folded stacks must root at the pipeline span: {stacks}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_format_is_validated_before_connecting() {
        let args: Vec<String> = ["--format", "xml"].iter().map(|s| s.to_string()).collect();
        // Invalid format errors without touching the network.
        assert!(cmd_stats(&args).unwrap_err().contains("unknown --format"));
    }

    #[test]
    fn service_commands_validate_arguments() {
        // submit needs a topology…
        assert!(cmd_submit(&[]).is_err());
        // …and rejects bad values before touching the network.
        let bad_seg: Vec<String> = ["falcon", "--segment", "-1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_submit(&bad_seg).is_err());
        let bad_deadline: Vec<String> = ["falcon", "--deadline", "soon"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_submit(&bad_deadline).is_err());
    }

    #[test]
    fn serve_submit_stats_shutdown_round_trip() {
        // Full CLI loop against an in-process server on an ephemeral
        // port (the CLI helpers talk to whatever --addr names).
        let server = Server::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("bind server");
        let addr = server.local_addr().to_string();
        let args = |rest: &[&str]| -> Vec<String> {
            rest.iter()
                .map(|s| s.to_string())
                .chain(["--addr".to_string(), addr.clone()])
                .collect()
        };
        assert!(cmd_submit(&args(&["grid", "--fast", "--count", "2"])).is_ok());
        assert!(cmd_stats(&args(&[])).is_ok());
        // dump-trace round-trips the flight-recorder wire pair; the
        // payload is valid Chrome JSON even with recording off.
        let dir = std::env::temp_dir().join("qplacer-cli-dump-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("dump.json").to_string_lossy().into_owned();
        assert!(cmd_dump_trace(&args(&["--out", &out])).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid Chrome JSON");
        assert!(value.as_map().is_some());
        std::fs::remove_dir_all(&dir).ok();
        assert!(cmd_shutdown(&args(&[])).is_ok());
        server.join();
    }

    #[test]
    fn replace_command_runs_each_edit_kind() {
        let to_args =
            |rest: &[&str]| -> Vec<String> { rest.iter().map(|s| s.to_string()).collect() };
        // Grid 3x3 edge (0,1) exists (row-major rows of 3).
        assert!(cmd_replace(&to_args(&["grid-3x3", "--drop-coupler", "0-1", "--fast"])).is_ok());
        assert!(cmd_replace(&to_args(&["grid-3x3", "--drop-qubit", "4", "--fast"])).is_ok());
        assert!(cmd_replace(&to_args(&[
            "grid-4x4", "--yield", "90", "--seed", "3", "--fast"
        ]))
        .is_ok());
        // Argument validation: an edit is required, only one edit kind
        // at a time, couplers must exist, and Human has no warm path.
        assert!(cmd_replace(&to_args(&["grid-3x3", "--fast"])).is_err());
        assert!(cmd_replace(&to_args(&[
            "grid-3x3",
            "--drop-coupler",
            "0-1",
            "--drop-qubit",
            "4"
        ]))
        .is_err());
        assert!(cmd_replace(&to_args(&["grid-3x3", "--drop-coupler", "0-8"])).is_err());
        assert!(cmd_replace(&to_args(&[
            "grid-3x3",
            "--drop-coupler",
            "0-1",
            "--strategy",
            "human"
        ]))
        .is_err());
        assert!(cmd_replace(&[]).is_err());
    }

    #[test]
    fn coupler_list_parsing() {
        assert_eq!(parse_coupler_list("0-1,4-5").unwrap(), vec![(0, 1), (4, 5)]);
        assert!(parse_coupler_list("01").is_err());
        assert!(parse_coupler_list("a-b").is_err());
    }

    #[test]
    fn suite_command_runs_a_tiny_grid() {
        let args: Vec<String> = [
            "--devices",
            "grid",
            "--strategies",
            "qplacer",
            "--benchmarks",
            "bv-4",
            "--subsets",
            "1",
            "--threads",
            "2",
            "--fast",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(cmd_suite(&args).is_ok());
    }
}
