//! `qplacer` — command-line front end for the placement pipeline.
//!
//! ```text
//! qplacer inventory
//! qplacer place    <topology> [--strategy qplacer|classic|human]
//!                  [--segment <mm>] [--svg FILE] [--gds FILE]
//! qplacer evaluate <topology> <benchmark> [--strategy ...] [--subsets N]
//!                  [--seed N] [--threads N]
//! qplacer sweep    <topology>            # l_b ablation on one device
//! qplacer e2e      [--devices a,b,..] [--strategy qplacer|classic]
//!                  [--segment <mm>] [--fast]
//! qplacer suite    [--devices a,b,..] [--strategies s,..]
//!                  [--benchmarks b,..] [--subsets N] [--seeds N]
//!                  [--threads N] [--fast] [--jsonl FILE] [--csv FILE]
//! ```
//!
//! Topologies: `grid`, `falcon`, `eagle`, `aspen11`, `aspenm`, `xtree`.
//! Benchmarks: `bv-4`, `bv-9`, `bv-16`, `qaoa-4`, `qaoa-9`, `ising-4`,
//! `qgan-4`, `qgan-9`.
//!
//! `suite` runs the full paper evaluation grid through the
//! [`qplacer_harness`] runner: jobs fan out across a thread pool and the
//! per-job records stream (in deterministic plan order) to JSONL/CSV.

use std::process::ExitCode;

use qplacer::{
    paper_suite, CsvSink, DeviceSpec, ExperimentPlan, JsonlSink, NetlistConfig, PipelineConfig,
    PipelineWorkspace, PlacedLayout, Profile, Qplacer, Runner, Sink, Strategy, Summary, Topology,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "inventory" => cmd_inventory(),
        "place" => cmd_place(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "e2e" => cmd_e2e(&args[1..]),
        "suite" => cmd_suite(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  qplacer inventory
  qplacer place    <topology> [--strategy qplacer|classic|human]
                   [--segment <mm>] [--svg FILE] [--gds FILE]
  qplacer evaluate <topology> <benchmark> [--strategy S] [--subsets N]
                   [--seed N] [--threads N]
  qplacer sweep    <topology>
  qplacer e2e      [--devices a,b,..] [--strategy qplacer|classic]
                   [--segment <mm>] [--fast]
  qplacer suite    [--devices a,b,..] [--strategies s,..] [--benchmarks b,..]
                   [--subsets N] [--seeds N] [--threads N] [--fast]
                   [--jsonl FILE] [--csv FILE]

topologies: grid falcon eagle aspen11 aspenm xtree
benchmarks: bv-4 bv-9 bv-16 qaoa-4 qaoa-9 ising-4 qgan-4 qgan-9";

fn parse_topology(name: &str) -> Result<Topology, String> {
    DeviceSpec::parse(name).map(|spec| spec.build())
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "qplacer" => Strategy::FrequencyAware,
        "classic" => Strategy::Classic,
        "human" => Strategy::Human,
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

/// Pulls `--flag value` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `--flag value` as a number, with a helpful error.
fn numeric_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    flag_value(args, flag)
        .map(|v| v.parse().map_err(|_| format!("bad {flag} `{v}`")))
        .transpose()
        .map(|opt| opt.unwrap_or(default))
}

fn cmd_inventory() -> Result<(), String> {
    println!("topologies:");
    for t in Topology::paper_suite() {
        println!(
            "  {:<10} {:>4} qubits {:>4} couplings  ({})",
            t.name(),
            t.num_qubits(),
            t.num_edges(),
            t.class()
        );
    }
    println!("benchmarks:");
    for b in paper_suite() {
        println!(
            "  {:<8} {:>3} qubits {:>4} gates ({} two-qubit, depth {})",
            b.name,
            b.circuit.num_qubits(),
            b.circuit.len(),
            b.circuit.two_qubit_count(),
            b.circuit.depth()
        );
    }
    Ok(())
}

fn run_pipeline(args: &[String], device: &Topology) -> Result<PlacedLayout, String> {
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    let mut config = PipelineConfig::paper();
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        if lb <= 0.0 {
            return Err("--segment must be positive".into());
        }
        config.netlist = NetlistConfig::with_segment_size(lb);
    }
    Ok(Qplacer::new(config).place(device, strategy))
}

fn cmd_place(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("place needs a topology")?;
    let device = parse_topology(name)?;
    let layout = run_pipeline(args, &device)?;

    let area = layout.area();
    let hs = layout.hotspots();
    println!("device:    {device}");
    println!("strategy:  {}", layout.strategy);
    if let Some(p) = &layout.placement {
        println!(
            "placement: {} iterations, overflow {:.3}, HPWL {:.1} mm, {:.2} s",
            p.iterations, p.final_overflow, p.hpwl, p.elapsed_seconds
        );
    }
    if let Some(l) = &layout.legalization {
        println!(
            "legalize:  {}/{} resonators integrated, {} overlaps",
            l.integrated_after, l.resonator_count, l.remaining_overlaps
        );
    }
    println!(
        "area:      {:.1} x {:.1} mm  (A_mer {:.1} mm², utilization {:.1}%)",
        area.mer.width(),
        area.mer.height(),
        area.mer_area,
        area.utilization * 100.0
    );
    println!(
        "hotspots:  P_h {:.2}%, {} violations, {} impacted qubits",
        hs.ph * 100.0,
        hs.violations.len(),
        hs.impacted_qubits.len()
    );

    if let Some(path) = flag_value(args, "--svg") {
        std::fs::write(path, layout.svg()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--gds") {
        std::fs::write(path, layout.gds(&device.name().to_uppercase()))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let tname = args.first().ok_or("evaluate needs a topology")?;
    let bname = args.get(1).ok_or("evaluate needs a benchmark")?;
    let device_spec = DeviceSpec::parse(tname)?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    let subsets: usize = numeric_flag(args, "--subsets", 50)?;
    let seed: u64 = numeric_flag(args, "--seed", 0xF1D0)?;
    let threads: usize = numeric_flag(args, "--threads", 0)?;

    // A single-job plan through the harness: the per-subset evaluation
    // fans out across the runner's thread pool.
    let mut plan = ExperimentPlan::grid(
        "evaluate",
        &[device_spec],
        &[strategy],
        &[bname],
        subsets,
        &[seed],
    );
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        plan.jobs[0].segment_size_mm = Some(lb);
    }
    let report = Runner::new(threads).run(&plan);
    let record = &report.records[0];
    if !record.status.is_ok() {
        return Err(format!("{:?}", record.status));
    }
    println!(
        "{} on {} ({}, {} mappings, {} skipped):",
        bname,
        record.device,
        record.strategy,
        record.subsets_evaluated,
        record.subsets_skipped_too_large + record.subsets_skipped_unroutable,
    );
    println!("  mean fidelity:  {:.4e}", record.mean_fidelity);
    println!("  worst fidelity: {:.4e}", record.min_fidelity);
    println!(
        "  mean active crosstalk violations: {:.1}",
        record.mean_active_violations
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("sweep needs a topology")?;
    let device_spec = DeviceSpec::parse(name)?;
    let plan = ExperimentPlan::placement_grid(
        "segment-sweep",
        &[device_spec],
        &[Strategy::FrequencyAware],
        &[Some(0.2), Some(0.3), Some(0.4)],
    );
    let report = Runner::new(0).run(&plan);
    println!(
        "{:>6} {:>7} {:>12} {:>8} {:>10}",
        "l_b", "#cells", "utilization", "Ph %", "runtime s"
    );
    for record in &report.records {
        println!(
            "{:>6.1} {:>7} {:>12.3} {:>8.2} {:>10.2}",
            record.segment_size_mm.unwrap_or_default(),
            record.instances,
            record.utilization,
            record.ph * 100.0,
            record.wall_ms / 1e3,
        );
    }
    Ok(())
}

/// Comma-separated flag list, with a default.
fn list_flag<'a>(args: &'a [String], flag: &str, default: &'a str) -> Vec<&'a str> {
    flag_value(args, flag)
        .unwrap_or(default)
        .split(',')
        .filter(|s| !s.is_empty())
        .collect()
}

/// Runs the full pipeline — frequency assignment, global placement,
/// legalization, area/hotspot metrics — on each device, reusing one
/// [`PipelineWorkspace`] across runs, and reports per-stage wall times.
/// Fails when any device's layout keeps residual overlaps, so CI can
/// smoke the whole loop with one command.
fn cmd_e2e(args: &[String]) -> Result<(), String> {
    let devices = list_flag(args, "--devices", "falcon,eagle")
        .into_iter()
        .map(DeviceSpec::parse)
        .collect::<Result<Vec<_>, _>>()?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    if strategy == Strategy::Human {
        return Err("e2e measures the engine pipeline; use qplacer or classic".into());
    }
    let mut config = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        if lb <= 0.0 {
            return Err("--segment must be positive".into());
        }
        config.netlist = NetlistConfig::with_segment_size(lb);
    }
    let engine = Qplacer::new(config);
    let mut ws = PipelineWorkspace::new();
    println!(
        "{:<10} {:>6} {:>11} {:>10} {:>12} {:>11} {:>9} {:>8}",
        "device", "cells", "assign ms", "place s", "legalize ms", "integrated", "overlaps", "Ph %"
    );
    let mut dirty = 0usize;
    for spec in devices {
        let device = spec.build();
        let layout = engine.place_with(&device, strategy, &mut ws);
        let legal = layout
            .legalization
            .as_ref()
            .expect("engine strategies legalize");
        let hs = layout.hotspots();
        println!(
            "{:<10} {:>6} {:>11.3} {:>10.2} {:>12.3} {:>7}/{:<3} {:>9} {:>8.2}",
            device.name(),
            layout.netlist.num_instances(),
            layout.timings.assign_ms,
            layout.timings.place_ms / 1e3,
            layout.timings.legalize_ms,
            legal.integrated_after,
            legal.resonator_count,
            legal.remaining_overlaps,
            hs.ph * 100.0,
        );
        if legal.remaining_overlaps > 0 {
            dirty += 1;
        }
    }
    if dirty > 0 {
        return Err(format!("{dirty} device(s) kept residual overlaps"));
    }
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let devices = list_flag(args, "--devices", "grid,falcon,eagle,aspen11,aspenm,xtree")
        .into_iter()
        .map(DeviceSpec::parse)
        .collect::<Result<Vec<_>, _>>()?;
    let strategies = list_flag(args, "--strategies", "qplacer,classic,human")
        .into_iter()
        .map(parse_strategy)
        .collect::<Result<Vec<_>, _>>()?;
    let suite = paper_suite();
    let known: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
    let default_benchmarks = known.join(",");
    let benchmarks = list_flag(args, "--benchmarks", &default_benchmarks)
        .into_iter()
        .map(str::to_string)
        .collect::<Vec<_>>();
    for b in &benchmarks {
        if !known.contains(&b.as_str()) {
            return Err(format!("unknown benchmark `{b}`"));
        }
    }
    let subsets: usize = numeric_flag(args, "--subsets", 50)?;
    let num_seeds: usize = numeric_flag(args, "--seeds", 1)?;
    let threads: usize = numeric_flag(args, "--threads", 0)?;
    let seeds: Vec<u64> = (0..num_seeds as u64).map(|i| 0xF1D0 + i).collect();

    let benchmark_refs: Vec<&str> = benchmarks.iter().map(String::as_str).collect();
    let mut plan = ExperimentPlan::grid(
        "paper-suite",
        &devices,
        &strategies,
        &benchmark_refs,
        subsets,
        &seeds,
    );
    if args.iter().any(|a| a == "--fast") {
        plan = plan.with_profile(Profile::Fast);
    }

    let runner = Runner::new(threads);
    eprintln!(
        "running {} jobs on {} threads ...",
        plan.len(),
        runner.threads()
    );

    let mut jsonl = flag_value(args, "--jsonl")
        .map(|path| JsonlSink::create(path).map_err(|e| format!("create {path}: {e}")))
        .transpose()?;
    let mut csv = flag_value(args, "--csv")
        .map(|path| CsvSink::create(path).map_err(|e| format!("create {path}: {e}")))
        .transpose()?;
    let mut sink_refs: Vec<&mut dyn Sink> = Vec::new();
    if let Some(sink) = jsonl.as_mut() {
        sink_refs.push(sink);
    }
    if let Some(sink) = csv.as_mut() {
        sink_refs.push(sink);
    }
    let report = runner
        .run_with_sinks(&plan, &mut sink_refs)
        .map_err(|e| format!("writing results: {e}"))?;

    print!("{}", Summary::table(&report.summaries()));
    println!(
        "{} jobs in {:.1} s on {} threads ({} failed)",
        report.records.len(),
        report.wall_ms / 1e3,
        report.threads,
        report.failures().len()
    );
    if let Some(path) = flag_value(args, "--jsonl") {
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--csv") {
        println!("wrote {path}");
    }
    // Results (including failure records) are written above; the exit
    // code still has to tell scripts the sweep was not clean.
    let failed = report.failures().len();
    if failed > 0 {
        return Err(format!("{failed}/{} jobs failed", report.records.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_parsing() {
        assert_eq!(parse_topology("falcon").unwrap().num_qubits(), 27);
        assert_eq!(parse_topology("eagle").unwrap().num_qubits(), 127);
        assert_eq!(parse_topology("aspenm").unwrap().num_qubits(), 80);
        assert!(parse_topology("sycamore").is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(parse_strategy("qplacer").unwrap(), Strategy::FrequencyAware);
        assert_eq!(parse_strategy("classic").unwrap(), Strategy::Classic);
        assert_eq!(parse_strategy("human").unwrap(), Strategy::Human);
        assert!(parse_strategy("best").is_err());
    }

    #[test]
    fn flag_extraction() {
        let args: Vec<String> = ["--svg", "out.svg", "--subsets", "10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--svg"), Some("out.svg"));
        assert_eq!(flag_value(&args, "--subsets"), Some("10"));
        assert_eq!(flag_value(&args, "--seed"), None);
        // Flag at the end without a value.
        let dangling: Vec<String> = vec!["--svg".to_string()];
        assert_eq!(flag_value(&dangling, "--svg"), None);
    }

    #[test]
    fn list_flag_splits_and_defaults() {
        let args: Vec<String> = ["--devices", "grid,falcon"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(list_flag(&args, "--devices", "x"), vec!["grid", "falcon"]);
        assert_eq!(list_flag(&args, "--strategies", "a,b"), vec!["a", "b"]);
    }

    #[test]
    fn inventory_runs() {
        assert!(cmd_inventory().is_ok());
    }

    #[test]
    fn e2e_command_runs_on_a_grid() {
        let args: Vec<String> = ["--devices", "grid", "--fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_e2e(&args).is_ok());
        // Human is placement-free; e2e must refuse it.
        let bad: Vec<String> = ["--strategy", "human"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_e2e(&bad).is_err());
    }

    #[test]
    fn suite_command_runs_a_tiny_grid() {
        let args: Vec<String> = [
            "--devices",
            "grid",
            "--strategies",
            "qplacer",
            "--benchmarks",
            "bv-4",
            "--subsets",
            "1",
            "--threads",
            "2",
            "--fast",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(cmd_suite(&args).is_ok());
    }
}
