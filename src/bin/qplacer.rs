//! `qplacer` — command-line front end for the placement pipeline.
//!
//! ```text
//! qplacer inventory
//! qplacer place    <topology> [--strategy qplacer|classic|human]
//!                  [--segment <mm>] [--svg FILE] [--gds FILE] [--json]
//! qplacer evaluate <topology> <benchmark> [--strategy ...] [--subsets N]
//!                  [--seed N]
//! qplacer sweep    <topology>            # l_b ablation on one device
//! ```
//!
//! Topologies: `grid`, `falcon`, `eagle`, `aspen11`, `aspenm`, `xtree`.
//! Benchmarks: `bv-4`, `bv-9`, `bv-16`, `qaoa-4`, `qaoa-9`, `ising-4`,
//! `qgan-4`, `qgan-9`.

use std::process::ExitCode;

use qplacer::{
    paper_suite, NetlistConfig, PipelineConfig, PlacedLayout, Qplacer, Strategy, Topology,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "inventory" => cmd_inventory(),
        "place" => cmd_place(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  qplacer inventory
  qplacer place    <topology> [--strategy qplacer|classic|human]
                   [--segment <mm>] [--svg FILE] [--gds FILE]
  qplacer evaluate <topology> <benchmark> [--strategy S] [--subsets N] [--seed N]
  qplacer sweep    <topology>

topologies: grid falcon eagle aspen11 aspenm xtree
benchmarks: bv-4 bv-9 bv-16 qaoa-4 qaoa-9 ising-4 qgan-4 qgan-9";

fn parse_topology(name: &str) -> Result<Topology, String> {
    Ok(match name {
        "grid" => Topology::grid(5, 5),
        "falcon" => Topology::falcon27(),
        "eagle" => Topology::eagle127(),
        "aspen11" => Topology::aspen(1, 5),
        "aspenm" => Topology::aspen(2, 5),
        "xtree" => Topology::xtree(4, 3, 3),
        other => return Err(format!("unknown topology `{other}`")),
    })
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "qplacer" => Strategy::FrequencyAware,
        "classic" => Strategy::Classic,
        "human" => Strategy::Human,
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

/// Pulls `--flag value` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_inventory() -> Result<(), String> {
    println!("topologies:");
    for t in Topology::paper_suite() {
        println!(
            "  {:<10} {:>4} qubits {:>4} couplings  ({})",
            t.name(),
            t.num_qubits(),
            t.num_edges(),
            t.class()
        );
    }
    println!("benchmarks:");
    for b in paper_suite() {
        println!(
            "  {:<8} {:>3} qubits {:>4} gates ({} two-qubit, depth {})",
            b.name,
            b.circuit.num_qubits(),
            b.circuit.len(),
            b.circuit.two_qubit_count(),
            b.circuit.depth()
        );
    }
    Ok(())
}

fn run_pipeline(args: &[String], device: &Topology) -> Result<PlacedLayout, String> {
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("qplacer"))?;
    let mut config = PipelineConfig::paper();
    if let Some(seg) = flag_value(args, "--segment") {
        let lb: f64 = seg.parse().map_err(|_| format!("bad --segment `{seg}`"))?;
        if lb <= 0.0 {
            return Err("--segment must be positive".into());
        }
        config.netlist = NetlistConfig::with_segment_size(lb);
    }
    Ok(Qplacer::new(config).place(device, strategy))
}

fn cmd_place(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("place needs a topology")?;
    let device = parse_topology(name)?;
    let layout = run_pipeline(args, &device)?;

    let area = layout.area();
    let hs = layout.hotspots();
    println!("device:    {device}");
    println!("strategy:  {}", layout.strategy);
    if let Some(p) = &layout.placement {
        println!(
            "placement: {} iterations, overflow {:.3}, HPWL {:.1} mm, {:.2} s",
            p.iterations, p.final_overflow, p.hpwl, p.elapsed_seconds
        );
    }
    if let Some(l) = &layout.legalization {
        println!(
            "legalize:  {}/{} resonators integrated, {} overlaps",
            l.integrated_after, l.resonator_count, l.remaining_overlaps
        );
    }
    println!(
        "area:      {:.1} x {:.1} mm  (A_mer {:.1} mm², utilization {:.1}%)",
        area.mer.width(),
        area.mer.height(),
        area.mer_area,
        area.utilization * 100.0
    );
    println!(
        "hotspots:  P_h {:.2}%, {} violations, {} impacted qubits",
        hs.ph * 100.0,
        hs.violations.len(),
        hs.impacted_qubits.len()
    );

    if let Some(path) = flag_value(args, "--svg") {
        std::fs::write(path, layout.svg()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--gds") {
        std::fs::write(path, layout.gds(&device.name().to_uppercase()))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let tname = args.first().ok_or("evaluate needs a topology")?;
    let bname = args.get(1).ok_or("evaluate needs a benchmark")?;
    let device = parse_topology(tname)?;
    let bench = paper_suite()
        .into_iter()
        .find(|b| &b.name == bname)
        .ok_or_else(|| format!("unknown benchmark `{bname}`"))?;
    let subsets: usize = flag_value(args, "--subsets")
        .map(|v| v.parse().map_err(|_| format!("bad --subsets `{v}`")))
        .transpose()?
        .unwrap_or(50);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|_| format!("bad --seed `{v}`")))
        .transpose()?
        .unwrap_or(0xF1D0);

    let layout = run_pipeline(args, &device)?;
    let eval = layout.evaluate(&device, &bench.circuit, subsets, seed);
    println!(
        "{} on {} ({}, {} mappings):",
        bench.name,
        device.name(),
        layout.strategy,
        eval.fidelities.len()
    );
    println!("  mean fidelity:  {:.4e}", eval.mean_fidelity);
    println!("  worst fidelity: {:.4e}", eval.min_fidelity);
    println!(
        "  mean active crosstalk violations: {:.1}",
        eval.mean_active_violations
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("sweep needs a topology")?;
    let device = parse_topology(name)?;
    println!(
        "{:>6} {:>7} {:>12} {:>8} {:>10}",
        "l_b", "#cells", "utilization", "Ph %", "runtime s"
    );
    for lb in [0.2, 0.3, 0.4] {
        let mut config = PipelineConfig::paper();
        config.netlist = NetlistConfig::with_segment_size(lb);
        let t0 = std::time::Instant::now();
        let layout = Qplacer::new(config).place(&device, Strategy::FrequencyAware);
        println!(
            "{:>6.1} {:>7} {:>12.3} {:>8.2} {:>10.2}",
            lb,
            layout.netlist.num_instances(),
            layout.area().utilization,
            layout.hotspots().ph * 100.0,
            t0.elapsed().as_secs_f64()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_parsing() {
        assert_eq!(parse_topology("falcon").unwrap().num_qubits(), 27);
        assert_eq!(parse_topology("eagle").unwrap().num_qubits(), 127);
        assert_eq!(parse_topology("aspenm").unwrap().num_qubits(), 80);
        assert!(parse_topology("sycamore").is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(parse_strategy("qplacer").unwrap(), Strategy::FrequencyAware);
        assert_eq!(parse_strategy("classic").unwrap(), Strategy::Classic);
        assert_eq!(parse_strategy("human").unwrap(), Strategy::Human);
        assert!(parse_strategy("best").is_err());
    }

    #[test]
    fn flag_extraction() {
        let args: Vec<String> = ["--svg", "out.svg", "--subsets", "10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--svg"), Some("out.svg"));
        assert_eq!(flag_value(&args, "--subsets"), Some("10"));
        assert_eq!(flag_value(&args, "--seed"), None);
        // Flag at the end without a value.
        let dangling: Vec<String> = vec!["--svg".to_string()];
        assert_eq!(flag_value(&dangling, "--svg"), None);
    }

    #[test]
    fn inventory_runs() {
        assert!(cmd_inventory().is_ok());
    }
}
