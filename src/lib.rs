//! # QPlacer — frequency-aware placement for superconducting quantum chips
//!
//! A from-scratch Rust reproduction of *"Qplacer: Frequency-Aware
//! Component Placement for Superconducting Quantum Computers"* (Zhang et
//! al., ISCA 2025). QPlacer lays out transmon qubits and bus-resonator
//! segments on a substrate so that near-resonant components are spatially
//! isolated (a "frequency repulsive force"), total area stays compact,
//! and program fidelity under crosstalk is preserved.
//!
//! The pipeline (paper Fig. 7):
//!
//! ```text
//! Topology ─► FrequencyAssigner ─► QuantumNetlist (padding+partitioning)
//!          ─► GlobalPlacer (WL + density + frequency forces)
//!          ─► Legalizer (spiral/MCMF + Tetris + Algorithm 1)
//!          ─► metrics (fidelity, P_h, area) / artwork (SVG, GDS-lite)
//! ```
//!
//! This facade crate wires the subsystem crates together behind
//! [`Qplacer`] and re-exports the pieces a downstream user needs. The
//! pipeline driver and the batch experiment machinery live in
//! [`qplacer_harness`] (re-exported as [`harness`]): declarative
//! [`ExperimentPlan`]s fan out across a thread pool via [`Runner`] and
//! stream stable records into JSONL/CSV [`harness::Sink`]s. The serving
//! layer lives in [`qplacer_service`] (re-exported as [`service`]): a
//! multi-threaded TCP daemon (`qplacer serve`) with request batching, a
//! content-addressed result cache, and a versioned JSON-lines protocol
//! spoken by [`ServiceClient`] and `qplacer submit` / `stats`.
//!
//! # Quickstart
//!
//! ```
//! use qplacer::{Qplacer, Strategy};
//! use qplacer_topology::Topology;
//!
//! let device = Topology::grid(2, 2);
//! let engine = Qplacer::fast(); // reduced iteration budget for docs/tests
//! let layout = engine.place(&device, Strategy::FrequencyAware);
//! assert_eq!(layout.netlist.overlapping_pairs().len(), 0);
//! let area = layout.area();
//! assert!(area.utilization > 0.2);
//! ```
//!
//! # Batch sweeps
//!
//! ```
//! use qplacer::{DeviceSpec, ExperimentPlan, Profile, Runner, Strategy};
//!
//! let plan = ExperimentPlan::grid(
//!     "quick",
//!     &[DeviceSpec::Grid { width: 2, height: 2 }],
//!     &[Strategy::FrequencyAware],
//!     &["bv-4"],
//!     1,
//!     &[42],
//! )
//! .with_profile(Profile::Fast);
//! let report = Runner::new(0).run(&plan);
//! assert!(report.failures().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qplacer_harness::{
    ExecOptions, PipelineConfig, PipelineWorkspace, PlacedLayout, Qplacer, ReplaceReport,
    StageTimings, Strategy,
};

pub use qplacer_artwork as artwork;
pub use qplacer_baselines as baselines;
pub use qplacer_circuits as circuits;
pub use qplacer_freq as freq;
pub use qplacer_geometry as geometry;
pub use qplacer_harness as harness;
pub use qplacer_legal as legal;
pub use qplacer_metrics as metrics;
pub use qplacer_netlist as netlist;
pub use qplacer_obs as obs;
pub use qplacer_physics as physics;
pub use qplacer_place as place;
pub use qplacer_service as service;
pub use qplacer_topology as topology;

pub use qplacer_circuits::{benchmark_by_name, paper_suite, Benchmark};
pub use qplacer_freq::{FrequencyAssigner, FrequencyAssignment};
pub use qplacer_harness::{
    ArmSummary, CsvSink, DeviceError, DeviceSpec, ExperimentPlan, JobRecord, JobSpec, JobStatus,
    JsonlSink, MemorySink, Profile, RunOptions, RunOutcome, RunReport, Runner, Sink, Summary,
};
pub use qplacer_legal::{LegalReport, Legalizer};
pub use qplacer_metrics::{
    evaluate_benchmark, AreaMetrics, BenchmarkEvaluation, FidelityParams, HotspotConfig,
    HotspotReport,
};
pub use qplacer_netlist::{CouplingKind, NetlistConfig, QuantumNetlist};
pub use qplacer_obs::{
    adopt_trace_id, chrome_trace_json, clear_events, current_trace_id, duration_totals_ns,
    event_mode, event_snapshot, folded_stacks, fresh_trace_id, render_prometheus, render_span_tree,
    set_event_mode, set_flight_capacity, EventKind, EventMode, EventSnapshot, JsonlTraceSink,
    LatencyHistogram, NullTraceSink, Registry, RingTraceSink, TimelineEvent, TraceRecord,
    TraceScope, TraceSink,
};
pub use qplacer_place::{GlobalPlacer, PlacementReport, PlacerConfig};
pub use qplacer_service::{
    ClientBuilder, FleetBatch, MetricsSnapshot, PlaceJob, PlacementResult, Priority, Server,
    ServiceClient, ServiceConfig, ServiceError, ShardedClient, TraceDumpReply, TracePolicy,
    PROTOCOL_MINOR_VERSION, PROTOCOL_VERSION,
};
pub use qplacer_topology::{DefectMap, Topology, TopologyDelta};
