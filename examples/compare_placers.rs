//! Compare QPlacer, Classic, and Human on one device across all Table-I
//! benchmarks — a miniature of the paper's Figs. 11–13 on one topology.
//!
//! ```sh
//! cargo run --release --example compare_placers [grid|falcon|eagle|aspen11|aspenm|xtree]
//! ```

use qplacer::{paper_suite, ExecOptions, Qplacer, Strategy, Topology};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "falcon".into());
    let device = match which.as_str() {
        "grid" => Topology::grid(5, 5),
        "eagle" => Topology::eagle127(),
        "aspen11" => Topology::aspen(1, 5),
        "aspenm" => Topology::aspen(2, 5),
        "xtree" => Topology::xtree(4, 3, 3),
        _ => Topology::falcon27(),
    };
    println!("device: {device}\n");

    let engine = Qplacer::paper();
    let benches = paper_suite();
    let subsets = 20;

    println!(
        "{:<9} {:>9} {:>8} {:>9} {:>9}  per-benchmark mean fidelity",
        "strategy", "Amer mm²", "Ph %", "impacted", "runtime s"
    );
    for strategy in [Strategy::FrequencyAware, Strategy::Classic, Strategy::Human] {
        let t0 = std::time::Instant::now();
        let layout = engine.execute(&device, strategy, ExecOptions::default());
        let secs = t0.elapsed().as_secs_f64();
        let area = layout.area();
        let hs = layout.hotspots();
        print!(
            "{:<9} {:>9.1} {:>8.2} {:>9} {:>9.1} ",
            strategy.to_string(),
            area.mer_area,
            hs.ph * 100.0,
            hs.impacted_qubits.len(),
            secs
        );
        for b in &benches {
            if b.circuit.num_qubits() > device.num_qubits() {
                print!(" {}=n/a", b.name);
                continue;
            }
            let eval = layout.evaluate(&device, &b.circuit, subsets, 0xBEEF);
            print!(" {}={:.1e}", b.name, eval.mean_fidelity);
        }
        println!();
    }
}
