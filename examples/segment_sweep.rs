//! Sweep the resonator segment size l_b (the paper's §VI-D ablation):
//! utilization, hotspot proportion, cell count, and runtime per l_b.
//!
//! ```sh
//! cargo run --release --example segment_sweep [grid|falcon|...]
//! ```

use qplacer::{ExecOptions, NetlistConfig, PipelineConfig, Qplacer, Strategy, Topology};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "falcon".into());
    let device = match which.as_str() {
        "grid" => Topology::grid(5, 5),
        "eagle" => Topology::eagle127(),
        "aspen11" => Topology::aspen(1, 5),
        "aspenm" => Topology::aspen(2, 5),
        "xtree" => Topology::xtree(4, 3, 3),
        _ => Topology::falcon27(),
    };
    println!("device: {device}\n");
    println!(
        "{:>6} {:>7} {:>11} {:>8} {:>9} {:>10}",
        "l_b", "#cells", "utilization", "Ph %", "integ", "runtime s"
    );

    for lb in [0.2, 0.3, 0.4] {
        let mut config = PipelineConfig::paper();
        config.netlist = NetlistConfig::with_segment_size(lb);
        let engine = Qplacer::new(config);
        let t0 = std::time::Instant::now();
        let layout = engine.execute(&device, Strategy::FrequencyAware, ExecOptions::default());
        let secs = t0.elapsed().as_secs_f64();
        let area = layout.area();
        let hs = layout.hotspots();
        let legal = layout.legalization.as_ref().unwrap();
        println!(
            "{:>6.1} {:>7} {:>11.3} {:>8.2} {:>6}/{:<3} {:>9.1}",
            lb,
            layout.netlist.num_instances(),
            area.utilization,
            hs.ph * 100.0,
            legal.integrated_after,
            legal.resonator_count,
            secs
        );
    }
}
