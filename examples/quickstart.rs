//! Quickstart: place a 5×5 grid device with QPlacer and inspect the
//! layout quality.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qplacer::{ExecOptions, Qplacer, Strategy, Topology};

fn main() {
    // 1. Pick a device topology (Table I's QEC-friendly grid).
    let device = Topology::grid(5, 5);
    println!("device: {device}");

    // 2. Run the full pipeline: frequency assignment, padding +
    //    resonator partitioning, electrostatic global placement with the
    //    frequency repulsive force, and integration-aware legalization.
    let engine = Qplacer::paper();
    let layout = engine.execute(&device, Strategy::FrequencyAware, ExecOptions::default());

    // 3. Inspect what came out.
    let placement = layout.placement.as_ref().expect("engine strategy");
    let legal = layout.legalization.as_ref().expect("engine strategy");
    println!(
        "global placement: {} iterations, overflow {:.3}, HPWL {:.1} mm, {:.2} s",
        placement.iterations, placement.final_overflow, placement.hpwl, placement.elapsed_seconds
    );
    println!(
        "legalization: {} overlaps, {}/{} resonators integrated, mean qubit displacement {:.3} mm",
        legal.remaining_overlaps,
        legal.integrated_after,
        legal.resonator_count,
        legal.mean_qubit_displacement
    );

    let area = layout.area();
    println!(
        "area: A_mer = {:.1} mm² ({:.1} × {:.1} mm), utilization {:.1}%",
        area.mer_area,
        area.mer.width(),
        area.mer.height(),
        area.utilization * 100.0
    );

    let hotspots = layout.hotspots();
    println!(
        "hotspots: P_h = {:.2}%, {} violations, {} impacted qubits",
        hotspots.ph * 100.0,
        hotspots.violations.len(),
        hotspots.impacted_qubits.len()
    );

    // 4. Evaluate a benchmark program on the layout (10 random subsets).
    let bv4 = qplacer::circuits::generators::bv(4);
    let eval = layout.evaluate(&device, &bv4, 10, 42);
    println!(
        "bv-4 fidelity: mean {:.4}, worst {:.4} over {} mappings",
        eval.mean_fidelity,
        eval.min_fidelity,
        eval.fidelities.len()
    );

    // 5. Export artwork: the layout and the engine's convergence trace.
    std::fs::write("quickstart_layout.svg", layout.svg()).expect("write svg");
    let trace: Vec<(f64, f64)> = placement
        .overflow_trace
        .iter()
        .map(|&(it, ovf)| (it as f64, ovf))
        .collect();
    let chart = qplacer::artwork::render_line_chart(
        "density overflow vs iteration",
        "iteration",
        "overflow",
        &[("overflow".to_string(), trace)],
    );
    std::fs::write("quickstart_convergence.svg", chart).expect("write chart");
    println!("wrote quickstart_layout.svg and quickstart_convergence.svg");
}
