//! Full Falcon-27 flow: the paper's Fig. 14 scenario.
//!
//! Places IBM's Falcon heavy-hex device, prints the frequency plan,
//! placement/legalization reports, and exports both the SVG layout
//! prototype (Fig. 14-b) and the GDS-lite artwork (Fig. 14-c substitute).
//!
//! ```sh
//! cargo run --release --example falcon_layout
//! ```

use qplacer::{artwork, ExecOptions, Qplacer, Strategy, Topology};

fn main() {
    let device = Topology::falcon27();
    println!("device: {device}");

    let engine = Qplacer::paper();
    let layout = engine.execute(&device, Strategy::FrequencyAware, ExecOptions::default());

    // Frequency plan (Fig. 14-a): slot histogram for qubits and resonators.
    println!("\nqubit frequency plan:");
    let mut slots: std::collections::BTreeMap<String, usize> = Default::default();
    for q in 0..device.num_qubits() {
        *slots
            .entry(format!("{}", layout.assignment.qubit(q)))
            .or_default() += 1;
    }
    for (f, n) in &slots {
        println!("  {f}: {n} qubits");
    }
    let mut rslots: std::collections::BTreeMap<String, usize> = Default::default();
    for r in 0..device.num_edges() {
        *rslots
            .entry(format!("{}", layout.assignment.resonator(r)))
            .or_default() += 1;
    }
    println!("resonator frequency plan: {} distinct slots", rslots.len());

    // Reports.
    let p = layout.placement.as_ref().unwrap();
    let l = layout.legalization.as_ref().unwrap();
    println!(
        "\nplacement: {} iters, overflow {:.3}, HPWL {:.1} mm",
        p.iterations, p.final_overflow, p.hpwl
    );
    println!(
        "legalization: {}/{} resonators integrated ({} moved, {} swapped), {} overlaps",
        l.integrated_after,
        l.resonator_count,
        l.segments_moved,
        l.segments_swapped,
        l.remaining_overlaps
    );

    let area = layout.area();
    let hs = layout.hotspots();
    println!(
        "layout: {:.1} × {:.1} mm ({:.1} mm²), utilization {:.1}%, P_h {:.2}%",
        area.mer.width(),
        area.mer.height(),
        area.mer_area,
        area.utilization * 100.0,
        hs.ph * 100.0
    );

    // Meander sanity: routed path length per resonator vs designed length.
    let paths = artwork::meander_paths(&layout.netlist);
    let mean_path: f64 =
        paths.iter().map(|p| artwork::path_length(p)).sum::<f64>() / paths.len() as f64;
    println!("mean meander route length: {mean_path:.1} mm (designed 9.3–10.8 mm)");

    std::fs::write("falcon_layout.svg", layout.svg()).expect("write svg");
    std::fs::write("falcon_layout.gds.txt", layout.gds("FALCON27")).expect("write gds");
    println!("\nwrote falcon_layout.svg and falcon_layout.gds.txt");
}
