//! Explore the crosstalk physics models behind the placer (paper §II–III,
//! Figs. 4–6): coupling vs detuning, parasitics vs distance, and the Rabi
//! error they induce.
//!
//! ```sh
//! cargo run --release --example crosstalk_physics
//! ```

use qplacer::physics::{capacitance, constants, coupling, error, Duration, Frequency};

fn main() {
    // Fig. 4: effective coupling between two transmons as ω₂ sweeps while
    // ω₁ = 5.0 GHz stays fixed.
    println!("# coupling vs detuning (Fig. 4)");
    let g = constants::DESIGN_COUPLING;
    println!("{:>10} {:>12}", "w2 (GHz)", "g_eff (MHz)");
    let w1 = Frequency::from_ghz(5.0);
    for i in 0..=20 {
        let w2 = Frequency::from_ghz(4.5 + i as f64 * 0.05);
        let geff = coupling::effective_coupling(g, w1.detuning(w2));
        println!("{:>10.2} {:>12.3}", w2.ghz(), geff.mhz());
    }

    // Fig. 5: parasitic capacitance and couplings vs qubit separation.
    println!("\n# parasitics vs distance (Fig. 5-b)");
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "d (mm)", "Cp (fF)", "g (MHz)", "geff (MHz)"
    );
    let detuned = Frequency::from_ghz(0.1);
    for i in 1..=15 {
        let d = i as f64 * 0.1;
        let cp = capacitance::qubit_parasitic(d);
        let gp = capacitance::parasitic_qubit_coupling(d, w1, w1);
        let geff = coupling::effective_coupling(gp, detuned);
        println!(
            "{:>8.1} {:>10.4} {:>10.4} {:>12.5}",
            d,
            cp.ff(),
            gp.mhz(),
            geff.mhz()
        );
    }

    // The error this induces over a two-qubit gate window (Eq. 16).
    println!("\n# Rabi crosstalk error over a 300 ns gate");
    println!(
        "{:>8} {:>14} {:>14}",
        "d (mm)", "resonant", "detuned 0.1GHz"
    );
    let window = Duration::from_ns(constants::TWO_QUBIT_GATE_TIME.ns());
    for d in [0.2, 0.4, 0.8, 1.2] {
        let gp = capacitance::parasitic_qubit_coupling(d, w1, w1);
        let resonant = error::averaged_rabi_error(gp, window);
        let geff = coupling::effective_coupling(gp, detuned);
        let detuned_err = error::averaged_rabi_error(geff, window);
        println!("{:>8.1} {:>14.6} {:>14.8}", d, resonant, detuned_err);
    }

    println!("\nTakeaway: resonant neighbors at sub-padding distances see");
    println!("order-one error per gate; a 0.1 GHz detuning or one padded");
    println!("footprint of separation buys 3–6 orders of magnitude.");
}
