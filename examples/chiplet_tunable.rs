//! The paper's two forward-looking extensions in one flow (§VII and the
//! Conclusion): a multi-die **chiplet** device and a **tunable-coupler**
//! architecture, both placed with the unchanged QPlacer pipeline.
//!
//! ```sh
//! cargo run --release --example chiplet_tunable
//! ```

use qplacer::{ExecOptions, NetlistConfig, PipelineConfig, Qplacer, Strategy, Topology};

fn main() {
    // --- Extension 1: a 2×2 chiplet array of Falcon dies. -------------
    let die = Topology::falcon27();
    let chiplet = Topology::chiplet(&die, 2, 2, 2);
    println!("chiplet device: {chiplet}");

    let engine = Qplacer::paper();
    let layout = engine.execute(&chiplet, Strategy::FrequencyAware, ExecOptions::default());
    let area = layout.area();
    let hs = layout.hotspots();
    let legal = layout.legalization.as_ref().unwrap();
    println!(
        "  placed {} instances: A_mer {:.0} mm², P_h {:.2}%, {}/{} resonators integrated",
        layout.netlist.num_instances(),
        area.mer_area,
        hs.ph * 100.0,
        legal.integrated_after,
        legal.resonator_count
    );
    std::fs::write("chiplet_layout.svg", layout.svg()).expect("write svg");
    println!("  wrote chiplet_layout.svg");

    // --- Extension 2: Falcon with tunable couplers instead of buses. ---
    let mut cfg = PipelineConfig::paper();
    cfg.netlist = NetlistConfig::tunable_coupler(0.3);
    let tunable_engine = Qplacer::new(cfg);
    let bus = engine.execute(&die, Strategy::FrequencyAware, ExecOptions::default());
    let tunable = tunable_engine.execute(&die, Strategy::FrequencyAware, ExecOptions::default());
    println!("\ntunable-coupler Falcon vs bus-resonator Falcon:");
    println!(
        "  instances: {} vs {} (couplers collapse each bus into one element)",
        tunable.netlist.num_instances(),
        bus.netlist.num_instances()
    );
    println!(
        "  A_mer: {:.0} mm² vs {:.0} mm² ({:.1}x smaller)",
        tunable.area().mer_area,
        bus.area().mer_area,
        bus.area().mer_area / tunable.area().mer_area
    );
    println!(
        "  P_h: {:.2}% vs {:.2}%",
        tunable.hotspots().ph * 100.0,
        bus.hotspots().ph * 100.0
    );
    println!("\nBoth extensions run through the identical pipeline — the");
    println!("frequency force and τ-checked legalization are agnostic to");
    println!("how the couplings are physically realized.");
}
