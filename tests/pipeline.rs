//! End-to-end pipeline integration tests across crates.

use qplacer::{ExecOptions, NetlistConfig, PipelineConfig, Qplacer, Strategy, Topology};

fn fast_engine() -> Qplacer {
    Qplacer::new(PipelineConfig::fast())
}

/// The full pipeline yields a legal, in-region, metric-sane layout on
/// every small paper topology.
#[test]
fn pipeline_produces_legal_layouts() {
    for device in [
        Topology::grid(5, 5),
        Topology::falcon27(),
        Topology::xtree(4, 3, 3),
    ] {
        let layout =
            fast_engine().execute(&device, Strategy::FrequencyAware, ExecOptions::default());
        let legal = layout.legalization.as_ref().unwrap();
        assert_eq!(
            legal.remaining_overlaps,
            0,
            "{}: overlaps after legalization",
            device.name()
        );
        // Legalization may use a bounded spill ring beyond the sized
        // region; nothing may land outside that workspace.
        let workspace = layout
            .netlist
            .region()
            .inflated(2.0 * layout.netlist.max_padded_side() + 1e-6);
        for inst in layout.netlist.instances() {
            assert!(
                workspace.contains_rect(&layout.netlist.padded_rect(inst.id())),
                "{}: instance escaped workspace",
                device.name()
            );
        }
        let area = layout.area();
        assert!(
            area.utilization > 0.3 && area.utilization <= 1.0,
            "{}: utilization {}",
            device.name(),
            area.utilization
        );
        // Most resonators must integrate even at test budgets.
        assert!(
            legal.integrated_after * 10 >= legal.resonator_count * 8,
            "{}: only {}/{} integrated",
            device.name(),
            legal.integrated_after,
            legal.resonator_count
        );
    }
}

/// Same seeds, same layout, same numbers.
#[test]
fn pipeline_is_deterministic() {
    let device = Topology::falcon27();
    let a = fast_engine().execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    let b = fast_engine().execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    assert_eq!(a.netlist.positions(), b.netlist.positions());
    assert_eq!(a.hotspots().ph, b.hotspots().ph);
    let ea = a.evaluate(&device, &qplacer::circuits::generators::bv(4), 5, 9);
    let eb = b.evaluate(&device, &qplacer::circuits::generators::bv(4), 5, 9);
    assert_eq!(ea.fidelities, eb.fidelities);
}

/// Segment size sweep: smaller l_b means more cells (Table II's #cells
/// column ordering).
#[test]
fn cell_count_orders_by_segment_size() {
    let device = Topology::falcon27();
    let counts: Vec<usize> = [0.2, 0.3, 0.4]
        .iter()
        .map(|&lb| {
            let mut cfg = PipelineConfig::fast();
            cfg.netlist = NetlistConfig::with_segment_size(lb);
            Qplacer::new(cfg)
                .execute(&device, Strategy::Human, ExecOptions::default())
                .netlist
                .num_instances()
        })
        .collect();
    assert!(
        counts[0] > counts[1],
        "lb=0.2 must have more cells than 0.3"
    );
    assert!(
        counts[1] > counts[2],
        "lb=0.3 must have more cells than 0.4"
    );
}

/// Strategies disagree exactly where they should: Human skips the engine,
/// engine strategies report placement + legalization.
#[test]
fn strategy_reports_are_consistent() {
    let device = Topology::grid(3, 3);
    let engine = fast_engine();
    let aware = engine.execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    let classic = engine.execute(&device, Strategy::Classic, ExecOptions::default());
    let human = engine.execute(&device, Strategy::Human, ExecOptions::default());
    assert!(aware.placement.is_some() && aware.legalization.is_some());
    assert!(classic.placement.is_some());
    assert!(human.placement.is_none() && human.legalization.is_none());
    // All three share the frequency assignment (same assigner).
    assert_eq!(aware.assignment, classic.assignment);
    assert_eq!(aware.assignment, human.assignment);
}

/// The chiplet extension (paper §VII) runs through the unchanged
/// pipeline: multi-die devices place, legalize, and integrate.
#[test]
fn chiplet_devices_place_end_to_end() {
    let die = Topology::grid(2, 2);
    let chiplet = Topology::chiplet(&die, 1, 2, 1);
    assert_eq!(chiplet.num_qubits(), 8);
    let layout = fast_engine().execute(&chiplet, Strategy::FrequencyAware, ExecOptions::default());
    let legal = layout.legalization.as_ref().unwrap();
    assert_eq!(legal.remaining_overlaps, 0);
    assert!(legal.integrated_after * 10 >= legal.resonator_count * 8);
}

/// The tunable-coupler extension (paper Conclusion): one compact element
/// per coupling, dramatically smaller layouts, same pipeline.
#[test]
fn tunable_coupler_mode_shrinks_layouts() {
    let device = Topology::grid(3, 3);
    let bus = fast_engine().execute(&device, Strategy::FrequencyAware, ExecOptions::default());

    let mut cfg = PipelineConfig::fast();
    cfg.netlist = qplacer::NetlistConfig::tunable_coupler(0.3);
    let tunable =
        Qplacer::new(cfg).execute(&device, Strategy::FrequencyAware, ExecOptions::default());

    // One instance per qubit + one per coupling.
    assert_eq!(
        tunable.netlist.num_instances(),
        device.num_qubits() + device.num_edges()
    );
    assert!(
        tunable.area().mer_area < 0.6 * bus.area().mer_area,
        "couplers {} !<< buses {}",
        tunable.area().mer_area,
        bus.area().mer_area
    );
    assert_eq!(tunable.legalization.as_ref().unwrap().remaining_overlaps, 0);
}

/// Artwork exports stay structurally valid on a fully placed layout.
#[test]
fn artwork_roundtrip() {
    let device = Topology::grid(3, 3);
    let layout = fast_engine().execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    let svg = layout.svg();
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    let gds = layout.gds("GRID9");
    assert_eq!(
        gds.matches("BOUNDARY").count(),
        layout.netlist.num_instances()
    );
    let paths = qplacer::artwork::meander_paths(&layout.netlist);
    assert_eq!(paths.len(), device.num_edges());
}
