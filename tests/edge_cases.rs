//! Edge-case and failure-injection tests: degenerate devices, extreme
//! configurations, and over-utilized regions must either work or fail
//! loudly — never corrupt a layout silently.

use qplacer::{
    CouplingKind, ExecOptions, NetlistConfig, PipelineConfig, Qplacer, Strategy, Topology,
};

/// A single isolated qubit: no edges, no resonators, no nets.
#[test]
fn single_qubit_device() {
    let device = Topology::from_edges("lonely", 1, std::iter::empty()).unwrap();
    let layout = Qplacer::fast().execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    assert_eq!(layout.netlist.num_instances(), 1);
    assert_eq!(layout.netlist.nets().len(), 0);
    assert_eq!(layout.hotspots().violations.len(), 0);
    assert_eq!(layout.legalization.as_ref().unwrap().remaining_overlaps, 0);
    let area = layout.area();
    assert!(area.mer_area > 0.0);
}

/// Two disconnected qubit pairs still place and legalize.
#[test]
fn disconnected_device() {
    let device = Topology::from_edges("split", 4, [(0, 1), (2, 3)]).unwrap();
    assert!(!device.is_connected());
    let layout = Qplacer::fast().execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    assert_eq!(layout.legalization.as_ref().unwrap().remaining_overlaps, 0);
}

/// An over-tight region (target utilization 0.92) forces the spill ring
/// and the exhaustive fallbacks — legality must still hold.
#[test]
fn over_utilized_region_spills_but_stays_legal() {
    let mut cfg = PipelineConfig::fast();
    cfg.netlist.target_utilization = 0.92;
    let device = Topology::grid(3, 3);
    let layout =
        Qplacer::new(cfg).execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    let legal = layout.legalization.as_ref().unwrap();
    assert_eq!(legal.remaining_overlaps, 0);
    // The layout may exceed the (deliberately undersized) region, but
    // never the bounded workspace.
    let workspace = layout
        .netlist
        .region()
        .inflated(2.0 * layout.netlist.max_padded_side() + 1e-6);
    for inst in layout.netlist.instances() {
        assert!(workspace.contains_rect(&layout.netlist.padded_rect(inst.id())));
    }
}

/// Tiny segment size explodes the instance count; the pipeline must cope.
#[test]
fn very_fine_partitioning() {
    let mut cfg = PipelineConfig::fast();
    cfg.netlist = NetlistConfig::with_segment_size(0.15);
    let device = Topology::from_edges("pair", 2, [(0, 1)]).unwrap();
    let layout =
        Qplacer::new(cfg).execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    // ⌈10.8·0.1/0.0225⌉ ≈ 45+ segments for one resonator.
    assert!(layout.netlist.num_instances() > 40);
    assert_eq!(layout.legalization.as_ref().unwrap().remaining_overlaps, 0);
}

/// Giant coupler pockets (tunable mode) larger than qubits.
#[test]
fn oversized_tunable_couplers() {
    let mut cfg = PipelineConfig::fast();
    cfg.netlist.coupling = CouplingKind::TunableCoupler { size_mm: 0.9 };
    let device = Topology::grid(2, 2);
    let layout =
        Qplacer::new(cfg).execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    assert_eq!(layout.legalization.as_ref().unwrap().remaining_overlaps, 0);
}

/// Zero-margin legalization (the Classic arm's configuration) still
/// produces overlap-free output.
#[test]
fn classic_strategy_is_legal_without_tau() {
    let device = Topology::falcon27();
    let layout = Qplacer::fast().execute(&device, Strategy::Classic, ExecOptions::default());
    assert_eq!(layout.legalization.as_ref().unwrap().remaining_overlaps, 0);
}

/// Human layout on a device with no canonical coordinates uses the BFS
/// grid fallback: qubits stay disjoint and the layout is finite. (Unlike
/// topology-faithful embeddings, the fallback cannot guarantee
/// hotspot-freedom — channels of a non-planar embedding may cross.)
#[test]
fn human_fallback_embedding() {
    let device = Topology::from_edges("ring8", 8, (0..8).map(|i| (i, (i + 1) % 8))).unwrap();
    assert!(device.coords().is_none());
    let layout = Qplacer::fast().execute(&device, Strategy::Human, ExecOptions::default());
    for a in 0..8 {
        for b in a + 1..8 {
            let ra = layout.netlist.padded_rect(layout.netlist.qubit_instance(a));
            let rb = layout.netlist.padded_rect(layout.netlist.qubit_instance(b));
            assert!(!ra.overlaps(&rb), "fallback qubits {a}/{b} overlap");
        }
    }
    assert!(layout.area().mer_area.is_finite());
}

/// Evaluating a benchmark wider than the device reports an empty (zero)
/// evaluation instead of panicking.
#[test]
fn oversized_benchmark_evaluation_is_graceful() {
    let device = Topology::from_edges("pair", 2, [(0, 1)]).unwrap();
    let layout = Qplacer::fast().execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    let eval = layout.evaluate(&device, &qplacer::circuits::generators::bv(9), 5, 1);
    assert!(eval.fidelities.is_empty());
    assert_eq!(eval.mean_fidelity, 0.0);
}
