//! Comparative invariants between the three placement strategies — the
//! qualitative claims of the paper's evaluation, asserted at reduced
//! budgets on Falcon (the paper's flagship small device).

use qplacer::{ExecOptions, PipelineConfig, PlacedLayout, Qplacer, Strategy, Topology};

fn layouts() -> (Topology, PlacedLayout, PlacedLayout, PlacedLayout) {
    let device = Topology::falcon27();
    // Reduced iteration budget keeps debug-mode runtime reasonable while
    // preserving the comparative ordering.
    let mut cfg = PipelineConfig::paper();
    cfg.placer.max_iterations = 250;
    let engine = Qplacer::new(cfg);
    let aware = engine.execute(&device, Strategy::FrequencyAware, ExecOptions::default());
    let classic = engine.execute(&device, Strategy::Classic, ExecOptions::default());
    let human = engine.execute(&device, Strategy::Human, ExecOptions::default());
    (device, aware, classic, human)
}

#[test]
fn qplacer_matches_or_beats_classic_and_loses_to_nobody() {
    let (device, aware, classic, human) = layouts();

    // (1) Hotspots: QPlacer ≤ Classic (Fig. 12 bottom), Human = 0.
    let ph_aware = aware.hotspots().ph;
    let ph_classic = classic.hotspots().ph;
    assert!(
        ph_aware <= ph_classic + 1e-12,
        "P_h: aware {ph_aware} > classic {ph_classic}"
    );
    assert_eq!(human.hotspots().violations.len(), 0, "human must be clean");

    // (2) Impacted qubits ordering (Fig. 12 middle).
    assert!(
        aware.hotspots().impacted_qubits.len() <= classic.hotspots().impacted_qubits.len(),
        "impacted qubits regressed"
    );

    // (3) Area: engine layouts beat the manual grid (Fig. 13).
    assert!(
        human.area().mer_area > aware.area().mer_area,
        "human {} !> qplacer {}",
        human.area().mer_area,
        aware.area().mer_area
    );
    // Classic and QPlacer share hyper-parameters, so areas are comparable
    // (within 25% — Fig. 13 shows ratios 0.83–1.01).
    let ratio = classic.area().mer_area / aware.area().mer_area;
    assert!(
        (0.75..=1.35).contains(&ratio),
        "classic/aware area ratio {ratio}"
    );

    // (4) Fidelity: QPlacer ≥ Classic on the aggregate (Fig. 11).
    let subsets = 10;
    let mut aware_sum = 0.0;
    let mut classic_sum = 0.0;
    for bench in qplacer::paper_suite() {
        if bench.circuit.num_qubits() > device.num_qubits() {
            continue;
        }
        aware_sum += aware
            .evaluate(&device, &bench.circuit, subsets, 0xCAFE)
            .mean_fidelity;
        classic_sum += classic
            .evaluate(&device, &bench.circuit, subsets, 0xCAFE)
            .mean_fidelity;
    }
    assert!(
        aware_sum >= classic_sum,
        "aggregate fidelity: aware {aware_sum} < classic {classic_sum}"
    );
}

#[test]
fn human_fidelity_is_an_upper_reference() {
    let (device, aware, _classic, human) = layouts();
    let bv4 = qplacer::circuits::generators::bv(4);
    let f_human = human.evaluate(&device, &bv4, 10, 7).mean_fidelity;
    let f_aware = aware.evaluate(&device, &bv4, 10, 7).mean_fidelity;
    // Human is crosstalk-free by construction; QPlacer approaches it from
    // below (ties when QPlacer is also violation-free on the mapped
    // subsets).
    assert!(
        f_aware <= f_human + 1e-9,
        "aware {f_aware} exceeded crosstalk-free reference {f_human}"
    );
    assert!(f_human > 0.5, "bv-4 on a clean layout should be decent");
}
